"""Ablation — aggregation function under a single Byzantine grandmaster.

DESIGN.md calls out the aggregation choice: the paper uses the Kopetz FTA.
This ablation runs the same short attack scenario (one malicious GM
shifting preciseOriginTimestamp by −24 µs, validity pre-filter disabled so
the aggregation function itself is what's tested) under four aggregation
functions. Expected: fta/ftm/median mask the liar almost completely (the
attack window looks like steady state), while the plain mean swallows a
quarter of the −24 µs lie — every clock gets dragged by ~6 µs, a
disturbance an order of magnitude above the robust aggregators' (the
*mutual* precision can stay inside Π because everyone is dragged together,
which is itself an instructive failure mode: the network agrees on the
wrong time).
"""

import pytest

from repro.core.aggregator import AggregatorConfig
from repro.core.validity import ValidityConfig
from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.experiments.testbed import TestbedConfig
from repro.sim.timebase import MINUTES, SECONDS


def run_with_aggregation(name: str):
    config = CyberExperimentConfig(
        kernel_policy="identical",
        duration=5 * MINUTES,
        first_attack=2 * MINUTES,
        second_attack=int(4.9 * MINUTES),  # effectively one-attack scenario
        settle_margin=20 * SECONDS,
        seed=5,
    )
    testbed_config = TestbedConfig(
        seed=5,
        kernel_policy="identical",
        aggregator=AggregatorConfig(
            aggregation=name,
            validity=ValidityConfig(threshold=10 ** 12),  # disable pre-filter
        ),
    )
    return run_cyber_experiment(config, testbed_config=testbed_config)


@pytest.mark.parametrize("aggregation", ["fta", "ftm", "median", "mean"])
def test_aggregation_ablation(benchmark, aggregation):
    result = benchmark.pedantic(
        run_with_aggregation, args=(aggregation,), rounds=1, iterations=1
    )
    disturbance = result.max_between_attacks
    benchmark.extra_info.update(
        {
            "aggregation": aggregation,
            "max_during_attack_ns": round(disturbance),
            "baseline_ns": round(result.max_before_attacks),
            "bound_ns": round(result.bounds.bound_with_error),
        }
    )
    print(
        f"\n{aggregation}: max Π* under 1 Byzantine GM = "
        f"{disturbance:.0f} ns "
        f"(pre-attack {result.max_before_attacks:.0f} ns, "
        f"bound {result.bounds.bound_with_error:.0f} ns)"
    )
    if aggregation == "mean":
        # The no-tolerance baseline: the average swallows the lie and drags
        # every clock by several microseconds.
        assert disturbance > 3_000
    else:
        # Robust aggregators: the attack window looks like steady state.
        assert disturbance < 2_000

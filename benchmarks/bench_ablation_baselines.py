"""Ablation — the architecture against the baselines it improves on.

* Single-domain IEEE 802.1AS (no FTA): the lone GM is a single point of
  failure; killing it sends the network into free-running drift.
* Client-only aggregation (Kyriakakis et al.): GM clocks do not aggregate
  and drift apart — the §I argument for the paper's mutual GM discipline.
* The paper's architecture: GMs stay mutually synchronized and the
  precision stays bounded.
"""

from repro.experiments.baselines import (
    run_client_only_baseline,
    run_full_architecture,
    run_single_domain_baseline,
)
from repro.sim.timebase import MINUTES


def test_single_domain_gm_is_single_point_of_failure(benchmark):
    result = benchmark.pedantic(
        run_single_domain_baseline,
        kwargs=dict(duration=8 * MINUTES, seed=5, gm_fails_at=3 * MINUTES),
        rounds=1,
        iterations=1,
    )
    early = [p for t, p in result.precisions if t < 3 * MINUTES]
    late = [p for t, p in result.precisions if t > 6 * MINUTES]
    benchmark.extra_info.update(
        {
            "max_before_gm_death_ns": round(max(early)),
            "max_after_gm_death_ns": round(max(late)),
        }
    )
    print(f"\nsingle domain: before GM death max={max(early):.0f}ns, "
          f"after max={max(late):.0f}ns (unbounded growth)")
    assert max(late) > 3 * max(early)


def test_client_only_gms_drift_apart(benchmark):
    def run_both():
        client_only = run_client_only_baseline(duration=8 * MINUTES, seed=5)
        full = run_full_architecture(duration=8 * MINUTES, seed=5)
        return client_only, full

    client_only, full = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "client_only_gm_spread_ns": round(client_only.final_gm_spread),
            "full_architecture_gm_spread_ns": round(full.final_gm_spread),
        }
    )
    print(
        f"\nGM clock spread after 8 min: client-only "
        f"{client_only.final_gm_spread:.0f} ns vs full architecture "
        f"{full.final_gm_spread:.0f} ns"
    )
    # The paper's fix: who wins, by a wide factor.
    assert client_only.final_gm_spread > 5 * full.final_gm_spread
    assert full.final_gm_spread < 2_000
    # And the full architecture keeps measured precision inside its bound.
    assert full.max_precision < full.bounds.bound_with_error

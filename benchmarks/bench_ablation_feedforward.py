"""Ablation — feedback vs feed-forward CLOCK_SYNCTIME (§III-C future work).

The paper attributes the frequent precision spikes of Fig. 4a to the
feedback control heritage of Linux software clocks and hypothesizes that a
feed-forward CLOCK_SYNCTIME (à la RADclock) would remove them, leaving the
prototype to future work. This bench builds exactly that prototype and runs
both derivations under the same compressed fault-injection workload.

Compared: number of bound-relative spikes (> 4x median) and the spread of
the distribution. Expected: the feed-forward page smooths publication noise
(no re-anchoring jumps) while remaining within the precision bound.
"""

import pytest

from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    run_fault_injection_experiment,
)
from repro.experiments.testbed import TestbedConfig
from repro.faults.transient import calibrate_transients


def run_mode(mode: str):
    config = FaultInjectionExperimentConfig(seed=23).scaled(0.25)  # 15 min
    testbed_config = TestbedConfig(
        seed=23,
        kernel_policy="diverse",
        transients=calibrate_transients(),
        phc2sys_mode=mode,
    )
    return run_fault_injection_experiment(config, testbed_config=testbed_config)


@pytest.mark.parametrize("mode", ["feedback", "feedforward"])
def test_phc2sys_mode_ablation(benchmark, mode):
    result = benchmark.pedantic(run_mode, args=(mode,), rounds=1, iterations=1)
    precisions = [r.precision for r in result.records]
    median = sorted(precisions)[len(precisions) // 2]
    spikes = sum(1 for p in precisions if p > 4 * median)
    benchmark.extra_info.update(
        {
            "mode": mode,
            "median_ns": round(median),
            "std_ns": round(result.distribution.std),
            "max_ns": round(result.distribution.maximum),
            "spikes_gt_4x_median": spikes,
            "violations": result.violations,
        }
    )
    print(
        f"\n{mode}: median={median:.0f}ns std={result.distribution.std:.0f}ns "
        f"max={result.distribution.maximum:.0f}ns spikes(>4x med)={spikes} "
        f"violations={result.violations}"
    )
    # Both derivations must keep the architecture inside its bound; the
    # comparison of spike counts is the experiment's informative output.
    assert result.bounded

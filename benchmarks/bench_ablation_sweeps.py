"""Ablation — parameter sweeps called out in DESIGN.md.

* Domain count N: the convergence factor u(N, f) = (N−2f)/(N−3f) tightens
  the bound as domains are added; the measured steady-state precision stays
  in the sub-µs regime throughout.
* Synchronization interval S: Γ = 2 · r_max · S scales the bound linearly;
  shorter intervals buy tighter bounds at higher message cost.
* Monitor period: the takeover latency of the dependent clock scales with
  the hypervisor monitor's period.
"""

import pytest

from repro.core.aggregator import AggregatorConfig
from repro.core.convergence import drift_offset, u_factor
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import MILLISECONDS, MINUTES, SECONDS


@pytest.mark.parametrize("n_devices", [4, 5, 6])
def test_domain_count_sweep(benchmark, n_devices):
    def run():
        testbed = Testbed(TestbedConfig(seed=9, n_devices=n_devices))
        testbed.run_until(2 * MINUTES)
        return testbed

    testbed = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = testbed.derive_bounds()
    late = [r.precision for r in testbed.series.records[30:]]
    benchmark.extra_info.update(
        {
            "n_domains": n_devices,
            "u_factor": u_factor(n_devices, 1),
            "bound_ns": round(bounds.precision_bound),
            "avg_precision_ns": round(sum(late) / len(late)) if late else None,
        }
    )
    print(f"\nN={n_devices}: u={u_factor(n_devices, 1):.3f} "
          f"Π={bounds.precision_bound:.0f}ns "
          f"avg Π*={sum(late) / len(late):.0f}ns")
    assert late and max(late) < bounds.precision_bound
    # More domains, tighter convergence factor.
    assert u_factor(n_devices, 1) <= 2.0


@pytest.mark.parametrize("interval_ms", [62.5, 125.0, 250.0])
def test_sync_interval_sweep(benchmark, interval_ms):
    interval = round(interval_ms * MILLISECONDS)

    def run():
        testbed = Testbed(TestbedConfig(seed=9, sync_interval=interval))
        testbed.run_until(2 * MINUTES)
        return testbed

    testbed = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds = testbed.derive_bounds()
    late = [r.precision for r in testbed.series.records[30:]]
    benchmark.extra_info.update(
        {
            "interval_ms": interval_ms,
            "gamma_ns": drift_offset(5.0, interval),
            "bound_ns": round(bounds.precision_bound),
            "avg_precision_ns": round(sum(late) / len(late)) if late else None,
        }
    )
    print(f"\nS={interval_ms}ms: Γ={drift_offset(5.0, interval):.0f}ns "
          f"Π={bounds.precision_bound:.0f}ns avg Π*={sum(late)/len(late):.0f}ns")
    assert bounds.drift_offset == drift_offset(5.0, interval)
    assert late and max(late) < bounds.precision_bound


@pytest.mark.parametrize("monitor_ms", [125, 500])
def test_monitor_period_sweep(benchmark, monitor_ms):
    """Takeover latency scales with the monitor period (§II-A)."""

    def run():
        testbed = Testbed(TestbedConfig(seed=9))
        node = testbed.nodes["dev3"]
        node.monitor.stop()
        node.monitor.period = monitor_ms * MILLISECONDS
        node.monitor._task.period = monitor_ms * MILLISECONDS
        node.monitor._task.start()
        testbed.run_until(90 * SECONDS)
        kill_time = testbed.sim.now
        node.active_vm().fail_silent(reason="sweep")
        testbed.run_until(kill_time + 30 * SECONDS)
        takeover = testbed.trace.query(
            category="hypervisor.takeover", start=kill_time
        )[0]
        return takeover.time - kill_time

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"monitor_period_ms": monitor_ms, "takeover_latency_ms": latency / 1e6}
    )
    print(f"\nmonitor {monitor_ms}ms → takeover latency {latency / 1e6:.0f}ms")
    # Staleness detection needs stale_ticks periods plus slack.
    assert latency <= (3 + 3) * monitor_ms * MILLISECONDS

"""Ablation — validity detector vs the colluding-pair attack.

Compares the paper's pairwise-vouching booleans against the IEEE
1588-2019-style majority vote under the Fig. 3a scenario (identical
kernels, two colluding Byzantine GMs at −24 µs):

* ``vouch`` (the paper): the colluders vouch for each other, the FTA is
  poisoned every interval → growing divergence past the bound (Fig. 3a).
* ``majority``: the 2-vs-2 split flags *everything* invalid → nodes coast
  at their disciplined frequency — much slower degradation (drift-rate
  instead of feedback-coupled divergence).

Neither detector *masks* two colluders at M = 4 (that needs M ≥ 5 or OS
diversity, see the GM-voting unit tests); the bench quantifies the failure-
mode difference.
"""

import pytest

from repro.core.aggregator import AggregatorConfig
from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.experiments.testbed import TestbedConfig
from repro.sim.timebase import MINUTES, SECONDS


def run_mode(validity_mode: str):
    config = CyberExperimentConfig(
        kernel_policy="identical",
        duration=12 * MINUTES,
        first_attack=3 * MINUTES,
        second_attack=5 * MINUTES,
        settle_margin=30 * SECONDS,
        seed=6,
    )
    testbed_config = TestbedConfig(
        seed=6,
        kernel_policy="identical",
        aggregator=AggregatorConfig(validity_mode=validity_mode),
    )
    return run_cyber_experiment(config, testbed_config=testbed_config)


@pytest.mark.parametrize("validity_mode", ["vouch", "majority"])
def test_validity_mode_vs_colluding_pair(benchmark, validity_mode):
    result = benchmark.pedantic(
        run_mode, args=(validity_mode,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "validity_mode": validity_mode,
            "max_after_second_ns": round(result.max_after_second),
            "final_ns": round(result.final_precision),
            "bound_ns": round(result.bounds.bound_with_error),
        }
    )
    print(
        f"\n{validity_mode}: max Π* after 2nd exploit = "
        f"{result.max_after_second:.0f} ns, final = "
        f"{result.final_precision:.0f} ns "
        f"(bound {result.bounds.bound_with_error:.0f} ns)"
    )
    assert result.first_attack_masked
    if validity_mode == "vouch":
        # The paper's Fig. 3a outcome: runaway divergence.
        assert result.second_attack_violates
        assert result.max_after_second > 3 * result.bounds.bound_with_error
    else:
        # Majority voting coasts: degradation bounded by drift over the
        # attack window (minutes at ≤ 2x5 ppm ≈ sub-ms), far below the
        # vouching mode's divergence at the same horizon.
        vouch = run_mode("vouch")
        assert result.max_after_second < vouch.max_after_second
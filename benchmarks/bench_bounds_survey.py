"""In-text §III-B / §III-C — latency survey and precision bounds.

Paper results:

* Experiment 1: d_min = 4120 ns, d_max = 9188 ns → E = 5068 ns,
  Γ = 1.25 µs, Π = 2(E + Γ) = 12.636 µs; γ = 1313 ns.
* Experiment 2: Π = 11.42 µs (E = 4460 ns), γ = 856 ns.

Shape checks: our surveyed testbed lands in the same few-µs regime and the
arithmetic Π = 2(E + Γ) holds exactly; the paper's own numbers are verified
against the convergence function as published.
"""

import pytest

from repro.core.convergence import drift_offset, precision_bound
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import MILLISECONDS, SECONDS


def test_bounds_survey(benchmark):
    def derive():
        testbed = Testbed(TestbedConfig(seed=1))
        testbed.run_until(30 * SECONDS)  # carry some traffic first
        return testbed.derive_bounds()

    bounds = benchmark.pedantic(derive, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "paper_exp1": "dmin=4120 dmax=9188 E=5068 Pi=12636 gamma=1313",
            "paper_exp2": "Pi=11420 gamma=856",
            "measured": bounds.describe(),
        }
    )
    print("\n" + bounds.describe())

    # Same latency regime as the paper's testbed.
    assert 2_000 <= bounds.d_min <= 6_000
    assert 6_000 <= bounds.d_max <= 13_000
    # The exact §III-A3 arithmetic.
    assert bounds.drift_offset == 1250.0
    assert bounds.precision_bound == pytest.approx(
        2 * (bounds.reading_error + 1250.0)
    )
    assert 0 < bounds.measurement_error < bounds.reading_error


def test_paper_numbers_reproduce_exactly(benchmark):
    """The published numbers satisfy the published formula."""

    def check():
        gamma = drift_offset(5.0, 125 * MILLISECONDS)
        return (
            precision_bound(4, 1, 9188 - 4120, gamma),
            precision_bound(4, 1, 4460, gamma),
        )

    exp1, exp2 = benchmark(check)
    assert exp1 == pytest.approx(12_636.0)
    assert exp2 == pytest.approx(11_420.0)

"""In-text §III-C — fault counts over the experiment.

Paper results (24 h): 94 random fail-silent clock synchronization VMs, of
which 48 were grandmaster clock failures; 2992 tx-timestamp timeout faults
and 347 transmission deadline misses across all ptp4l instances.

Counts scale with duration, so this bench normalizes per hour:
paper ≈ 3.9 fail-silent/h (2.0 GM/h), ≈ 125 tx-timeouts/h, ≈ 14 misses/h.
Compressed CI-scale runs use a denser schedule; the transient rates are
per-event probabilities calibrated to the paper totals, so their hourly
rates should land near the paper regardless of duration.
"""

from repro.sim.timebase import HOURS


def test_fault_counts(benchmark, fault_injection_result):
    result = benchmark.pedantic(
        lambda: fault_injection_result, rounds=1, iterations=1
    )
    hours = result.config.duration / HOURS
    inj = result.injections
    per_hour = {
        "fail_silent": inj["fail_silent_total"] / hours,
        "gm": inj["gm_failures"] / hours,
        "tx_timeouts": result.tx_timeouts / hours,
        "deadline_misses": result.deadline_misses / hours,
    }
    benchmark.extra_info.update(
        {
            "paper_24h": "94 fail-silent (48 GM), 2992 tx timeouts, 347 misses",
            "paper_per_hour": "3.9 fail-silent (2.0 GM), 124.7 timeouts, 14.5 misses",
            **{f"measured_{k}_per_hour": round(v, 2) for k, v in per_hour.items()},
        }
    )
    print(
        f"\nper-hour rates over {hours:.2f} h: "
        + ", ".join(f"{k}={v:.1f}" for k, v in per_hour.items())
    )

    # Transients are calibrated to the paper's totals: the hourly rate must
    # land within Poisson noise of the paper's (wide window for short runs).
    assert 40 <= per_hour["tx_timeouts"] <= 260
    assert 0 <= per_hour["deadline_misses"] <= 45
    # Fail-silent injections happened and the GM share is substantial, as
    # in the paper (48 of 94).
    assert inj["fail_silent_total"] > 0
    assert 0.2 <= inj["gm_failures"] / inj["fail_silent_total"] <= 0.8

"""Extension — steered attack variants (ramp / oscillation).

Beyond §III-B's static −24 µs shift: a ramping colluding pair attempts a
slow time-walk; the architecture's GM-side mutual FTA coupling compounds
the pull into accelerating, *detectable* divergence instead of a silent
walk. A single oscillating GM is absorbed by trimming + the PI loop.
"""

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.security.attacks import OscillatingAttack, RampAttack
from repro.sim.timebase import MICROSECONDS, MINUTES


def test_colluding_ramp_is_detectable(benchmark):
    def run():
        tb = Testbed(TestbedConfig(seed=62, kernel_policy="identical"))
        tb.run_until(2 * MINUTES)
        attack = RampAttack(
            tb.sim, [tb.vms["c4_1"], tb.vms["c1_1"]], step_per_update=-100
        )
        attack.launch()
        tb.run_until(tb.sim.now + 8 * MINUTES)
        late = [r.precision for r in tb.series.records
                if r.time > 5 * MINUTES]
        return tb.derive_bounds(), max(late)

    bounds, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "nominal_ramp_ppm": 0.8,
            "max_precision_ns": round(worst),
            "bound_ns": round(bounds.bound_with_error),
            "detectable": worst > bounds.bound_with_error,
        }
    )
    print(f"\ncolluding ramp: max Π* {worst:.0f} ns vs bound "
          f"{bounds.bound_with_error:.0f} ns → attack visible")
    assert worst > bounds.bound_with_error


def test_single_oscillator_absorbed(benchmark):
    def run():
        tb = Testbed(TestbedConfig(seed=65, kernel_policy="identical"))
        tb.run_until(2 * MINUTES)
        attack = OscillatingAttack(
            tb.sim, [tb.vms["c4_1"]], amplitude=10 * MICROSECONDS,
            period_updates=16,
        )
        attack.launch()
        tb.run_until(tb.sim.now + 4 * MINUTES)
        late = [r.precision for r in tb.series.records
                if r.time > 2 * MINUTES]
        return tb.derive_bounds(), max(late)

    bounds, worst = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "amplitude_us": 10,
            "max_precision_ns": round(worst),
            "bound_ns": round(bounds.bound_with_error),
        }
    )
    print(f"\noscillating GM: max Π* {worst:.0f} ns "
          f"(bound {bounds.bound_with_error:.0f} ns) → masked")
    assert worst <= bounds.bound_with_error

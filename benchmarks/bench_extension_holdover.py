"""Extension — holdover under total grandmaster loss.

Outside the paper's fault hypothesis (at most one clock sync VM per node),
but the operator's next question: all four GMs silent at once. Expected
shape: the FTA engines coast on their last disciplined frequency, precision
degrades at oscillator-envelope rate (ns/s, not runaway), and recovery
restores the bound once the GMs return.
"""

from repro.experiments.holdover import HoldoverConfig, run_holdover_experiment


def test_holdover_graceful_degradation(benchmark):
    result = benchmark.pedantic(
        run_holdover_experiment,
        args=(HoldoverConfig(seed=14),),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "precision_before_ns": round(result.precision_before),
            "worst_during_outage_ns": round(result.worst_during_outage),
            "drift_rate_ns_per_s": round(result.drift_rate_ns_per_s, 1),
            "recovered_ns": round(result.recovered_precision),
            "graceful": result.degraded_gracefully,
        }
    )
    print("\n" + result.to_text())
    assert result.degraded_gracefully
    assert result.recovered_precision <= result.bounds.bound_with_error

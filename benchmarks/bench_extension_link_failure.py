"""Extension — trunk failure under static per-domain trees.

Quantifies the redundancy story of Fig. 2: a dead inter-switch trunk
silences exactly the domains whose static spanning trees crossed it (two of
eight VM×domain feeds per affected device pair), the FTA carries on with
the remaining time sources, the measured precision never leaves Π + γ, and
everything resumes after repair.
"""

from repro.experiments.link_failure import (
    LinkFailureConfig,
    run_link_failure_experiment,
)


def test_trunk_failure_masked(benchmark):
    result = benchmark.pedantic(
        run_link_failure_experiment,
        args=(LinkFailureConfig(seed=12),),
        rounds=1,
        iterations=1,
    )
    silenced_feeds = sum(len(d) for d in result.silenced.values())
    benchmark.extra_info.update(
        {
            "trunk": "-".join(result.config.trunk),
            "silenced_feeds": silenced_feeds,
            "max_during_outage_ns": round(result.max_precision_during_outage),
            "max_after_recovery_ns": round(result.max_precision_after_recovery),
            "violations": result.violations,
        }
    )
    print("\n" + result.to_text())
    assert silenced_feeds == 4  # dev1×dom3 ×2 VMs + dev3×dom1 ×2 VMs
    assert result.violations == 0
    assert result.recovered

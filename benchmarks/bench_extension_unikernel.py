"""Extension — unikernel clock synchronization VMs (§IV outlook).

The paper's conclusion proposes Unikraft-style unikernels for the clock
synchronization VMs: a minimal code base outside the feature-rich-OS CVE
surface, plus millisecond boots that aid failure recovery. Two measurements:

* **attack surface** — the Fig. 3a double exploit against a homogeneous
  unikernel fleet lands nowhere (vs. both GMs falling on identical Linux);
* **recovery** — VM downtime per fail-silent fault under the compressed
  §III-C schedule, Linux (30 s boots) vs unikernel (0.25 s boots).
"""

import pytest

from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    run_fault_injection_experiment,
)
from repro.experiments.testbed import TestbedConfig
from repro.sim.timebase import SECONDS


def test_unikernel_attack_surface(benchmark):
    def run():
        return run_cyber_experiment(
            CyberExperimentConfig(kernel_policy="unikernel", seed=41).scaled(0.1),
            testbed_config=TestbedConfig(seed=41, kernel_policy="unikernel"),
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "compromised": result.compromised,
            "max_after_attacks_ns": round(result.max_after_second),
        }
    )
    print(f"\nunikernel fleet: compromised={result.compromised or 'none'}, "
          f"max Π* after attack window {result.max_after_second:.0f} ns")
    assert result.compromised == []
    assert not result.second_attack_violates


@pytest.mark.parametrize("policy", ["diverse", "unikernel"])
def test_recovery_downtime(benchmark, policy):
    def run():
        config = FaultInjectionExperimentConfig(seed=42).scaled(0.25)
        testbed_config = TestbedConfig(seed=42, kernel_policy=policy)
        return run_fault_injection_experiment(config, testbed_config=testbed_config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # Downtime per fault = boot delay; aggregate from the trace would need
    # the testbed, so use the schedule counts and the per-policy boot delay.
    boots = 30.0 if policy == "diverse" else 0.25
    injected = result.injections["fail_silent_total"]
    total_downtime_s = injected * boots
    benchmark.extra_info.update(
        {
            "policy": policy,
            "injected": injected,
            "boot_delay_s": boots,
            "total_downtime_s": total_downtime_s,
            "violations": result.violations,
        }
    )
    print(f"\n{policy}: {injected} faults × {boots}s boot = "
          f"{total_downtime_s:.1f}s cumulative downtime; "
          f"violations={result.violations}")
    assert result.bounded

"""Overhead of the fault-injection seams on the study pipeline.

Runs the same serial study twice — once with no injector attached (the
default everywhere: every seam is a ``self._faults is None`` guard) and
once with an injector attached whose plan never fires — and reports the
wall-clock overhead of each against the other. Collected results must be
byte-identical both ways: an injector that never fires must never
perturb a study.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults_overhead.py [--check]

``--check`` exits non-zero when the *attached* run costs more than
``ATTACHED_TOLERANCE`` (25%) over the detached run — ``decide()`` on a
plan with no matching points is a dict increment plus an empty loop, so
anything beyond that means work crept onto the per-call path. The
detached path's own cost (one attribute load + ``None`` check per seam)
rides inside the tier-1 suite's timings.

Environment knobs:

* ``REPRO_BENCH_FAULTS_JOBS``   — jobs per study (default 400)
* ``REPRO_BENCH_FAULTS_ROUNDS`` — rounds, best-of (default 3)
"""

import os
import shutil
import sys
import tempfile
import time

from repro.parallel import ResultsCache, config_fingerprint
from repro.resilience import FaultInjector, FaultPlan
from repro.studies import Job, Study, run_study

N_JOBS = int(os.environ.get("REPRO_BENCH_FAULTS_JOBS", "400"))
ROUNDS = int(os.environ.get("REPRO_BENCH_FAULTS_ROUNDS", "3"))

#: Maximum tolerated slowdown of the attached-injector run vs detached.
ATTACHED_TOLERANCE = 0.25


def _work(n):
    return sum(i * i for i in range(200)) + n


def _study():
    jobs = tuple(
        Job(
            key=config_fingerprint("bench-faults", n),
            fn=_work,
            args=(n,),
            label=f"n={n}",
            kind="bench",
            seed=n,
        )
        for n in range(N_JOBS)
    )
    return Study(name="bench-faults", jobs=jobs)


def run_once(attached: bool) -> tuple:
    """One fresh-store study run; returns (wall_s, collected-repr)."""
    faults = FaultInjector(FaultPlan(name="idle")) if attached else None
    workdir = tempfile.mkdtemp(prefix="bench-faults-")
    try:
        cache = ResultsCache(os.path.join(workdir, "store"))
        study = _study()
        t0 = time.perf_counter()
        run = run_study(study, cache=cache, faults=faults)
        wall = time.perf_counter() - t0
        if not run.complete:
            raise SystemExit("bench study did not complete")
        return wall, repr(run.collected())
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def best_of(attached: bool) -> tuple:
    best_wall, collected = run_once(attached)
    for _ in range(ROUNDS - 1):
        wall, collected_i = run_once(attached)
        if collected_i != collected:
            raise SystemExit("non-deterministic study results")
        best_wall = min(best_wall, wall)
    return best_wall, collected


def main(argv) -> int:
    check = "--check" in argv[1:]
    print(f"fault-seam overhead bench: {N_JOBS} jobs, best of {ROUNDS}")

    off_wall, off_collected = best_of(attached=False)
    on_wall, on_collected = best_of(attached=True)
    if on_collected != off_collected:
        print("results diverged with an idle injector attached")
        return 1

    overhead = on_wall / off_wall - 1.0
    print(f"  injector detached: {off_wall:6.3f} s "
          f"({N_JOBS / off_wall:8.0f} jobs/s)")
    print(f"  injector attached: {on_wall:6.3f} s "
          f"({N_JOBS / on_wall:8.0f} jobs/s)")
    print(f"  attached overhead: {overhead:+.1%} "
          f"(tolerance {ATTACHED_TOLERANCE:.0%})")

    if check and overhead > ATTACHED_TOLERANCE:
        print("--check: REGRESSION — idle injector exceeds tolerance")
        return 1
    if check:
        print("--check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

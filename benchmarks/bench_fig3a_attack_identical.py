"""Fig. 3a — cyber-resilience, identical Linux kernels.

Paper result: with all four virtual GMs on the exploitable v4.19.1, the
attacker roots c4_1 (00:21:42 h) and c1_1 (00:31:52 h). The FTA masks the
first malicious GM; the second defeats f = 1 and the measured precision
violates Π = 12.636 µs and keeps growing.

Shape checks here: first attack masked, second attack violates the derived
bound. (Magnitude note: our malicious ptp4l applies the paper's static
−24 µs shift, so the violated precision settles near 24 µs ≈ 2Π instead of
cascading to the astronomic values the paper's destabilized stack showed;
the bound-violation criterion is the same.)
"""

def test_fig3a_identical_kernels(benchmark, cyber_identical_result):
    result = benchmark.pedantic(
        lambda: cyber_identical_result, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "paper_bound_us": 12.636,
            "measured_bound_us": result.bounds.precision_bound / 1000,
            "compromised": ",".join(result.compromised),
            "max_between_attacks_ns": result.max_between_attacks,
            "max_after_second_ns": result.max_after_second,
            "first_masked": result.first_attack_masked,
            "second_violates": result.second_attack_violates,
        }
    )
    print("\n" + result.to_text())

    # Both exploits succeed on the shared kernel.
    assert result.compromised == ["c4_1", "c1_1"]
    # Shape: masked after one Byzantine GM, broken after two.
    assert result.first_attack_masked
    assert result.second_attack_violates

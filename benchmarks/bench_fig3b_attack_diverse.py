"""Fig. 3b — cyber-resilience, diversified Linux kernels.

Paper result: same attacker, but only c4_1 runs the exploitable v4.19.1.
The first exploit succeeds and is masked by the FTA; the second fails on
c1_1's patched kernel and the measured precision stays below Π + γ for the
entire hour.
"""


def test_fig3b_diverse_kernels(benchmark, cyber_diverse_result):
    result = benchmark.pedantic(
        lambda: cyber_diverse_result, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "paper_bound_us": 12.636,
            "measured_bound_us": result.bounds.precision_bound / 1000,
            "compromised": ",".join(result.compromised),
            "max_after_second_ns": result.max_after_second,
            "second_violates": result.second_attack_violates,
        }
    )
    print("\n" + result.to_text())

    # Only the VM left on v4.19.1 falls.
    assert result.compromised == ["c4_1"]
    failed = [a.target for a in result.attempts if not a.succeeded]
    assert failed == ["c1_1"]
    # Shape: everything masked, bound never violated.
    assert result.first_attack_masked
    assert not result.second_attack_violates

"""Fig. 4a — fault injection: precision series with 120 s avg/min/max.

Paper result (24 h): the measured precision Π*, under continuous fail-
silent GM and redundant-VM injections, stays within Π = 11.42 µs (+γ =
856 ns) at all times; average precision 322 ± 421 ns; worst spike 10.08 µs
at 06:45:49 h, inside the bound.

Shape checks: zero violations of Π + γ, sub-microsecond average, worst
spike within the derived bound.
"""

from repro.analysis.report import render_series


def test_fig4a_precision_series(benchmark, fault_injection_result):
    result = benchmark.pedantic(
        lambda: fault_injection_result, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "paper_bound_us": 11.42,
            "paper_avg_ns": 322,
            "paper_max_ns": 10_080,
            "measured_bound_us": result.bounds.precision_bound / 1000,
            "measured_avg_ns": round(result.distribution.mean),
            "measured_max_ns": round(result.max_precision),
            "violations": result.violations,
        }
    )
    print("\n" + result.to_text())
    print(
        render_series(
            result.buckets[:30],
            bound=result.bounds.precision_bound,
            bound_with_error=result.bounds.bound_with_error,
            title="Fig. 4a series (first 30 buckets)",
        )
    )

    assert result.bounded, "precision must never exceed Π + γ"
    assert result.distribution.mean < 2_000, "average precision sub-2µs"
    assert result.max_precision <= result.bounds.bound_with_error
    # Faults actually flowed while the bound held.
    assert result.injections["fail_silent_total"] > 0
    assert result.takeovers > 0

"""Fig. 4b — distribution of the measured clock synchronization precision.

Paper result (24 h): avg = 322 ns, std = 421 ns, min = 33 ns,
max = 10 080 ns; the mass of the distribution sits well below 1 µs with a
thin tail of spikes.

Shape checks: same regime — sub-µs mean and std, tens-of-ns minimum, a
max in the single-digit-µs tail, and > 80 % of probes under 1 µs.
"""

from repro.analysis.report import render_histogram


def test_fig4b_precision_distribution(benchmark, fault_injection_result):
    result = benchmark.pedantic(
        lambda: fault_injection_result, rounds=1, iterations=1
    )
    dist = result.distribution
    benchmark.extra_info.update(
        {
            "paper": "avg=322ns std=421ns min=33ns max=10080ns",
            "measured_avg_ns": round(dist.mean),
            "measured_std_ns": round(dist.std),
            "measured_min_ns": round(dist.minimum),
            "measured_max_ns": round(dist.maximum),
            "n_probes": dist.n,
        }
    )
    print("\nFig. 4b distribution:")
    print(render_histogram(dist))

    assert dist.mean < 2_000
    assert dist.std < 3_000
    assert dist.minimum < 500
    assert dist.maximum < 13_000  # tail spike, but inside the bound regime
    below_1us = sum(1 for r in result.records if r.precision < 1_000)
    assert below_1us / len(result.records) > 0.8

"""Fig. 5 — one-hour zoom with the fault/takeover/transient event overlay.

Paper result: the window around the worst spike (06:15–07:15 h) shows GM
clock failures (colored triangles), redundant clock synchronization VM
failures (gray triangles), VMs taking over CLOCK_SYNCTIME (stars), and
transient ptp4l software faults (crosses) — with the precision staying
inside the bound through all of them.

Shape checks: the extracted window contains the worst spike, contains
failures and takeovers, GM events carry their domain color-coding, and the
spike still respects Π + γ.
"""

from repro.analysis.report import render_timeline


def test_fig5_event_timeline(benchmark, fault_injection_result):
    result = benchmark.pedantic(
        lambda: fault_injection_result, rounds=1, iterations=1
    )
    timeline = result.timeline
    counts = timeline.counts()
    benchmark.extra_info.update(
        {
            "window_start_ns": timeline.start,
            "window_end_ns": timeline.end,
            "max_spike_ns": result.max_precision,
            **{f"events_{k}": v for k, v in counts.items()},
        }
    )
    print("\nFig. 5 window:")
    print(render_timeline(timeline))

    assert timeline.start <= result.max_precision_at < timeline.end
    assert counts.get("gm_failure", 0) + counts.get("vm_failure", 0) > 0
    assert counts.get("takeover", 0) >= 0
    for event in timeline.of_kind("gm_failure"):
        assert event.domain is not None  # color-coded like the paper
    assert result.max_precision <= result.bounds.bound_with_error

"""End-to-end kernel hot-path throughput on the 4-domain testbed slice.

Builds the paper's full 4-domain testbed (4 GM VMs + redundant VM + TSN
switch mesh, default :class:`TestbedConfig`), runs it for a fixed span of
simulated time, and reports wall-clock **events/second** through the
simulation kernel — the end-to-end metric the hot-path work (low-allocation
event loop, periodic timers, indexed tracing) is judged by.

The workload is dominated by exactly the paths the PR touched: kernel
dispatch, NIC/switch timestamping, Sync/FollowUp relay and the per-gate
FTA aggregation.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py [out.json]
    PYTHONPATH=src python benchmarks/bench_kernel_hotpath.py --check [out.json]

``--check`` compares the fresh measurement against the committed reference
(``BENCH_kernel.json`` at the repo root) *before* overwriting it and exits
non-zero when events/second regressed by more than ``REGRESSION_TOLERANCE``
(30%). Absolute events/second is machine-dependent; the committed reference
is only meaningful as a same-machine regression baseline, which is why the
tolerance is wide.

``--metrics PATH`` runs one extra, *untimed* round with a
:class:`repro.metrics.MetricsRegistry` attached and writes the metrics
document (manifest + instrument snapshots) to ``PATH`` — the timed rounds
stay uninstrumented so the committed reference is never polluted by
observer overhead.

Environment knobs:

* ``REPRO_BENCH_KERNEL_SECONDS`` — simulated seconds per round (default 40)
* ``REPRO_BENCH_KERNEL_ROUNDS``  — rounds, best-of (default 3)
* ``REPRO_BENCH_KERNEL_SEED``    — testbed seed (default 1)
"""

import json
import os
import sys
import time

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import SECONDS

SIM_SECONDS = int(os.environ.get("REPRO_BENCH_KERNEL_SECONDS", "40"))
ROUNDS = int(os.environ.get("REPRO_BENCH_KERNEL_ROUNDS", "3"))
SEED = int(os.environ.get("REPRO_BENCH_KERNEL_SEED", "1"))

#: Maximum tolerated drop of events/second vs the committed reference
#: before ``--check`` fails (CI satellite: nightly regression gate).
REGRESSION_TOLERANCE = 0.30

#: Pre-PR kernel on this workload (git-archive checkout of the parent
#: commit, same machine, same serial best-of-N protocol): 85 895 events/s.
#: Kept for the speedup column; absolute numbers do not transfer between
#: machines.
PRE_PR_EVENTS_PER_SEC = 85_895.0

DEFAULT_OUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "BENCH_kernel.json")


def run_once(metrics=None) -> tuple:
    """One cold testbed run; returns (wall seconds, events dispatched)."""
    testbed = Testbed(TestbedConfig(seed=SEED), metrics=metrics)
    t0 = time.perf_counter()
    testbed.run_until(SIM_SECONDS * SECONDS)
    wall = time.perf_counter() - t0
    if metrics is not None:
        testbed.publish_metrics()
    return wall, testbed.sim.dispatched_events


def run_metrics_round(path: str, timed_events: int) -> None:
    """One extra instrumented round; writes the metrics document to path."""
    from repro.metrics import MetricsRegistry, RunManifest, write_metrics_json

    registry = MetricsRegistry()
    wall, events = run_once(metrics=registry)
    if events != timed_events:
        raise SystemExit(
            f"metrics round dispatched {events} events, timed rounds "
            f"{timed_events} — attaching a registry must not perturb the run"
        )
    write_metrics_json(path, registry, RunManifest(
        experiment="bench_kernel_hotpath",
        config_fingerprint=f"seed={SEED},sim_seconds={SIM_SECONDS}",
        seeds=[SEED],
        sim_duration_ns=SIM_SECONDS * SECONDS,
        wall_time_s=wall,
        events_dispatched=events,
    ))
    print(f"metrics round: {wall:.3f} s, wrote {path}")


def main(argv) -> int:
    args = []
    check = False
    metrics_path = None
    rest = list(argv[1:])
    while rest:
        arg = rest.pop(0)
        if arg == "--check":
            check = True
        elif arg == "--metrics":
            if not rest:
                print("--metrics needs a PATH argument")
                return 2
            metrics_path = rest.pop(0)
        else:
            args.append(arg)
    out_path = args[0] if args else DEFAULT_OUT

    config = TestbedConfig(seed=SEED)
    n_domains = config.n_domains or config.n_devices
    print(f"kernel hot-path bench: {n_domains}-domain testbed, "
          f"seed {SEED}, {SIM_SECONDS} simulated s, best of {ROUNDS}")

    best_wall, events = run_once()
    print(f"  round 1: {best_wall:6.3f} s  ({events / best_wall:10.0f} ev/s)")
    for i in range(1, ROUNDS):
        wall, events_i = run_once()
        print(f"  round {i + 1}: {wall:6.3f} s  ({events_i / wall:10.0f} ev/s)")
        if events_i != events:
            print(f"non-deterministic event count: {events_i} != {events}")
            return 1
        best_wall = min(best_wall, wall)

    events_per_sec = events / best_wall
    speedup = events_per_sec / PRE_PR_EVENTS_PER_SEC
    print(f"best: {best_wall:.3f} s -> {events_per_sec:.0f} events/s "
          f"({speedup:.2f}x the pre-PR kernel's {PRE_PR_EVENTS_PER_SEC:.0f} ev/s "
          f"reference, measured serially)")

    status = 0
    if check:
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                reference = json.load(fh)
        except (OSError, ValueError):
            print(f"--check: no committed reference at {out_path}; recording only")
            reference = None
        if reference is not None:
            floor = reference["events_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
            verdict = "ok" if events_per_sec >= floor else "REGRESSION"
            print(f"--check: {events_per_sec:.0f} ev/s vs committed "
                  f"{reference['events_per_sec']:.0f} ev/s "
                  f"(floor {floor:.0f}, tolerance {REGRESSION_TOLERANCE:.0%}): {verdict}")
            if events_per_sec < floor:
                status = 1

    payload = {
        "workload": {
            "testbed": "default TestbedConfig",
            "domains": n_domains,
            "seed": SEED,
            "sim_seconds": SIM_SECONDS,
        },
        "rounds": ROUNDS,
        "events": events,
        "best_wall_s": round(best_wall, 4),
        "events_per_sec": round(events_per_sec, 1),
        "pre_pr_events_per_sec": PRE_PR_EVENTS_PER_SEC,
        "speedup_vs_pre_pr": round(speedup, 3),
        "regression_tolerance": REGRESSION_TOLERANCE,
        "note": "serial single-process measurement; events/s is machine-"
                "dependent, compare only against same-machine history",
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")

    if metrics_path is not None:
        run_metrics_round(metrics_path, events)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Observer overhead of the metrics layer on the kernel hot path.

Runs the same 4-domain testbed slice as ``bench_kernel_hotpath.py`` twice —
once with no registry attached (the default everywhere) and once fully
instrumented — and reports the wall-clock overhead of each against the
other. Event counts must match exactly both ways: a registry is a passive
observer and must never perturb the simulation.

Usage::

    PYTHONPATH=src python benchmarks/bench_metrics_overhead.py [--check]

``--check`` exits non-zero when the *enabled* run costs more than
``ENABLED_TOLERANCE`` (25%) over the disabled run — the guarded-emit
design keeps instruments to a bisect/int-increment per event, so anything
beyond that means an allocation or a lock crept onto the hot path. The
disabled path's own cost (one attribute load + ``None`` check per guard)
is covered by ``bench_kernel_hotpath.py --check`` against the committed
reference.

Environment knobs:

* ``REPRO_BENCH_METRICS_SECONDS`` — simulated seconds per round (default 20)
* ``REPRO_BENCH_METRICS_ROUNDS``  — rounds, best-of (default 3)
* ``REPRO_BENCH_METRICS_SEED``    — testbed seed (default 1)
"""

import os
import sys
import time

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.metrics import MetricsRegistry
from repro.sim.timebase import SECONDS

SIM_SECONDS = int(os.environ.get("REPRO_BENCH_METRICS_SECONDS", "20"))
ROUNDS = int(os.environ.get("REPRO_BENCH_METRICS_ROUNDS", "3"))
SEED = int(os.environ.get("REPRO_BENCH_METRICS_SEED", "1"))

#: Maximum tolerated slowdown of the instrumented run vs the plain run.
ENABLED_TOLERANCE = 0.25


def run_once(instrumented: bool) -> tuple:
    registry = MetricsRegistry() if instrumented else None
    testbed = Testbed(TestbedConfig(seed=SEED), metrics=registry)
    t0 = time.perf_counter()
    testbed.run_until(SIM_SECONDS * SECONDS)
    wall = time.perf_counter() - t0
    return wall, testbed.sim.dispatched_events


def best_of(instrumented: bool) -> tuple:
    best_wall, events = run_once(instrumented)
    for _ in range(ROUNDS - 1):
        wall, events_i = run_once(instrumented)
        if events_i != events:
            raise SystemExit(f"non-deterministic event count: "
                             f"{events_i} != {events}")
        best_wall = min(best_wall, wall)
    return best_wall, events


def main(argv) -> int:
    check = "--check" in argv[1:]
    print(f"metrics overhead bench: seed {SEED}, {SIM_SECONDS} simulated s, "
          f"best of {ROUNDS}")

    off_wall, off_events = best_of(instrumented=False)
    on_wall, on_events = best_of(instrumented=True)
    if on_events != off_events:
        print(f"event count diverged with metrics on: "
              f"{on_events} != {off_events}")
        return 1

    overhead = on_wall / off_wall - 1.0
    print(f"  metrics off: {off_wall:6.3f} s "
          f"({off_events / off_wall:10.0f} ev/s)")
    print(f"  metrics on:  {on_wall:6.3f} s "
          f"({on_events / on_wall:10.0f} ev/s)")
    print(f"  enabled overhead: {overhead:+.1%} "
          f"(tolerance {ENABLED_TOLERANCE:.0%})")

    if check and overhead > ENABLED_TOLERANCE:
        print("--check: REGRESSION — instrumented run exceeds tolerance")
        return 1
    if check:
        print("--check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Microbenchmarks of the hot core primitives.

Not a paper figure — these time the building blocks that run hundreds of
times per simulated second (FTA, validity assessment, servo sampling, event
dispatch) so performance regressions in the core show up in CI.
"""

import random

from repro.core.fta import fault_tolerant_average
from repro.core.ftshmem import StoredOffset
from repro.core.validity import ValidityConfig, assess_validity
from repro.gptp.instance import OffsetSample
from repro.gptp.servo import PiServo
from repro.sim.kernel import Simulator


def test_fta_four_values(benchmark):
    values = [120.0, -80.0, 40.0, -24_000.0]
    result = benchmark(fault_tolerant_average, values, 1)
    assert -80.0 <= result.value <= 120.0


def test_fta_many_values(benchmark):
    rng = random.Random(1)
    values = [rng.gauss(0, 1000) for _ in range(64)]
    result = benchmark(fault_tolerant_average, values, 4)
    assert min(values) <= result.value <= max(values)


def test_validity_assessment(benchmark):
    def slot(d, off):
        return StoredOffset(
            OffsetSample(d, f"gm{d}", off, 0, 0), stored_at=0
        )

    fresh = {1: slot(1, 0.0), 2: slot(2, 150.0), 3: slot(3, -90.0),
             4: slot(4, 24_000.0)}
    flags = benchmark(assess_validity, fresh, ValidityConfig())
    assert flags[4] is False


def test_servo_sampling(benchmark):
    servo = PiServo()
    servo.sample(0.0)

    def sample():
        return servo.sample(42.0)

    out = benchmark(sample)
    assert out.frequency_ppb != 0.0


def test_event_dispatch_throughput(benchmark):
    def run_10k():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i, lambda: None)
        sim.run()
        return sim.dispatched_events

    dispatched = benchmark(run_10k)
    assert dispatched == 10_000

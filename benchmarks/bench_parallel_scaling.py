"""Serial vs parallel wall-clock scaling of the Monte-Carlo engine.

Runs the same 32-seed compressed fault-injection study twice — once on the
serial executor, once sharded across worker processes — verifies the two
studies are byte-identical, and records both wall-clocks as JSON for the
nightly scaling artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [out.json]

Environment knobs:

* ``REPRO_BENCH_MC_SEEDS``  — seed count (default 32)
* ``REPRO_BENCH_MC_HOURS``  — compressed hours per seed (default 0.02)
* ``REPRO_BENCH_MC_WORKERS`` — worker processes (default 4)

Exit status is non-zero when the machine has at least as many usable CPUs
as workers but the speedup still lands under 2× — that is a scaling
regression. On smaller machines (including 1-core CI runners) the numbers
are recorded but not judged: parallel speedup cannot exceed the core
count, which is a property of the hardware rather than of the engine.
"""

import json
import os
import pickle
import sys
import time

from repro.experiments.montecarlo import run_monte_carlo
from repro.parallel import default_chunk_size

N_SEEDS = int(os.environ.get("REPRO_BENCH_MC_SEEDS", "32"))
HOURS = float(os.environ.get("REPRO_BENCH_MC_HOURS", "0.02"))
WORKERS = int(os.environ.get("REPRO_BENCH_MC_WORKERS", "4"))
BASE_SEED = 9000
SPEEDUP_TARGET = 2.0


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # macOS/Windows
        return os.cpu_count() or 1


def main(argv) -> int:
    out_path = argv[1] if len(argv) > 1 else os.path.join(
        "results", "parallel_scaling.json"
    )
    seeds = list(range(BASE_SEED, BASE_SEED + N_SEEDS))
    cpus = usable_cpus()
    print(f"scaling study: {N_SEEDS} seeds x {HOURS} h, "
          f"{WORKERS} workers on {cpus} usable cpu(s)")

    t0 = time.perf_counter()
    serial = run_monte_carlo(seeds=seeds, hours=HOURS, executor="serial")
    serial_s = time.perf_counter() - t0
    print(f"serial:   {serial_s:7.2f} s")

    t0 = time.perf_counter()
    parallel = run_monte_carlo(
        seeds=seeds, hours=HOURS, executor="process", max_workers=WORKERS
    )
    parallel_s = time.perf_counter() - t0
    print(f"parallel: {parallel_s:7.2f} s  ({WORKERS} workers)")

    identical = pickle.dumps(serial) == pickle.dumps(parallel)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    judged = cpus >= WORKERS
    passed = identical and (not judged or speedup >= SPEEDUP_TARGET)

    payload = {
        "n_seeds": N_SEEDS,
        "hours_per_seed": HOURS,
        "workers": WORKERS,
        "usable_cpus": cpus,
        "chunk_size": default_chunk_size(N_SEEDS, WORKERS),
        "serial_wall_s": round(serial_s, 3),
        "parallel_wall_s": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "speedup_target": SPEEDUP_TARGET,
        "speedup_judged": judged,
        "byte_identical": identical,
        "bounded_rate": serial.bounded_rate,
        "passed": passed,
    }
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    print(f"speedup:  {speedup:7.2f}x "
          f"(target >= {SPEEDUP_TARGET}x, "
          f"{'judged' if judged else f'not judged: {cpus} < {WORKERS} cpus'})")
    print(f"byte-identical results: {identical}")
    print(f"wrote {out_path}")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Fleet-scale benchmark: wall time and events/s vs N, full vs adaptive.

Runs the generated large-topology scenarios at both fidelity tiers and
reports, per (scenario, fidelity) point, the wall time, dispatched events
and events/second — the scaling table behind EXPERIMENTS.md's "Scaling and
fidelity tiers" section. Two headline numbers gate the adaptive engine:

* the **steady-state speedup** on torus-64 — after a warmup that takes every
  servo to LOCKED, a measurement window is timed under both tiers; the
  adaptive engine must cut wall time by at least ``MIN_STEADY_SPEEDUP``;
* the **N=256 budget** — one completed torus-256 adaptive run must finish
  inside ``RUN256_BUDGET_S`` wall seconds.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py [out.json]
    PYTHONPATH=src python benchmarks/bench_scale.py --check [out.json]

``--check`` compares the fresh measurement against the committed reference
(``BENCH_scale.json`` at the repo root) *before* overwriting it and exits
non-zero when the **full-fidelity** events/second on the torus-64 steady
window regressed by more than ``REGRESSION_TOLERANCE`` (30%), when the
steady-state speedup fell below ``MIN_STEADY_SPEEDUP``, or when the N=256
run blew its wall budget. Absolute events/second is machine-dependent; the
committed reference is a same-machine regression baseline only.

Environment knobs:

* ``REPRO_BENCH_SCALE_SEED``      — testbed seed (default 1)
* ``REPRO_BENCH_SCALE_WARMUP``    — torus-64 warmup sim-seconds (default 60)
* ``REPRO_BENCH_SCALE_WINDOW``    — torus-64 timed sim-seconds (default 60)
* ``REPRO_BENCH_SCALE_SMALL``     — mesh4/mesh8 sim-seconds (default 120)
* ``REPRO_BENCH_SCALE_N256``      — torus-256 sim-seconds (default 120; 0
  skips the N=256 point entirely)
"""

import json
import os
import sys
import time

from repro.experiments.testbed import Testbed
from repro.scenarios import get_scenario
from repro.sim.timebase import SECONDS

SEED = int(os.environ.get("REPRO_BENCH_SCALE_SEED", "1"))
WARMUP_SECONDS = int(os.environ.get("REPRO_BENCH_SCALE_WARMUP", "60"))
WINDOW_SECONDS = int(os.environ.get("REPRO_BENCH_SCALE_WINDOW", "60"))
SMALL_SECONDS = int(os.environ.get("REPRO_BENCH_SCALE_SMALL", "120"))
N256_SECONDS = int(os.environ.get("REPRO_BENCH_SCALE_N256", "120"))

#: Maximum tolerated drop of full-fidelity events/second on the torus-64
#: steady window vs the committed reference before ``--check`` fails.
REGRESSION_TOLERANCE = 0.30
#: Acceptance floor for the adaptive engine: wall-time reduction on the
#: locked steady-state torus-64 window.
MIN_STEADY_SPEEDUP = 5.0
#: Acceptance ceiling for one completed torus-256 adaptive run.
RUN256_BUDGET_S = 600.0

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scale.json",
)


def run_point(name: str, fidelity: str, sim_seconds: int) -> dict:
    """One cold scenario run start-to-finish at the given fidelity."""
    spec = get_scenario(name)
    testbed = Testbed(spec.testbed_config(seed=SEED), fidelity=fidelity)
    t0 = time.perf_counter()
    testbed.run_until(sim_seconds * SECONDS)
    wall = time.perf_counter() - t0
    events = testbed.sim.dispatched_events
    return {
        "scenario": name,
        "n_devices": spec.n_devices,
        "fidelity": fidelity,
        "sim_seconds": sim_seconds,
        "wall_s": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "probes": len(testbed.series.records),
        "fastforward": testbed.fastforward_summary() or None,
    }


def run_steady_window(fidelity: str) -> dict:
    """Torus-64: untimed warmup to LOCKED, then one timed steady window."""
    spec = get_scenario("torus-64")
    testbed = Testbed(spec.testbed_config(seed=SEED), fidelity=fidelity)
    testbed.run_until(WARMUP_SECONDS * SECONDS)
    events_before = testbed.sim.dispatched_events
    t0 = time.perf_counter()
    testbed.run_until((WARMUP_SECONDS + WINDOW_SECONDS) * SECONDS)
    wall = time.perf_counter() - t0
    events = testbed.sim.dispatched_events - events_before
    return {
        "scenario": "torus-64",
        "fidelity": fidelity,
        "warmup_seconds": WARMUP_SECONDS,
        "window_seconds": WINDOW_SECONDS,
        "window_wall_s": round(wall, 3),
        "window_events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "fastforward": testbed.fastforward_summary() or None,
    }


def main(argv) -> int:
    args = []
    check = False
    for arg in argv[1:]:
        if arg == "--check":
            check = True
        else:
            args.append(arg)
    out_path = args[0] if args else DEFAULT_OUT

    print(f"scale bench: seed {SEED}, torus-64 window "
          f"{WARMUP_SECONDS}+{WINDOW_SECONDS} sim-s, small runs "
          f"{SMALL_SECONDS} sim-s, N=256 run {N256_SECONDS} sim-s")

    # Scaling table: full runs at both tiers where tractable.
    points = []
    for name in ("paper-mesh4", "mesh8"):
        for fidelity in ("full", "adaptive"):
            point = run_point(name, fidelity, SMALL_SECONDS)
            points.append(point)
            print(f"  {name:<12} {fidelity:<8} {point['wall_s']:8.2f} s  "
                  f"{point['events_per_sec']:>10.0f} ev/s")

    # Headline 1: locked steady-state torus-64 window, both tiers.
    steady = {}
    for fidelity in ("full", "adaptive"):
        steady[fidelity] = run_steady_window(fidelity)
        print(f"  torus-64 steady window {fidelity:<8} "
              f"{steady[fidelity]['window_wall_s']:8.2f} s  "
              f"{steady[fidelity]['events_per_sec']:>10.0f} ev/s")
    speedup = (steady["full"]["window_wall_s"]
               / steady["adaptive"]["window_wall_s"])
    print(f"  torus-64 steady-state speedup: {speedup:.1f}x "
          f"(floor {MIN_STEADY_SPEEDUP:.0f}x)")

    # Headline 2: one completed N=256 adaptive run inside the wall budget.
    run256 = None
    if N256_SECONDS > 0:
        run256 = run_point("torus-256", "adaptive", N256_SECONDS)
        print(f"  torus-256 adaptive: {run256['wall_s']:.1f} s wall for "
              f"{N256_SECONDS} sim-s (budget {RUN256_BUDGET_S:.0f} s)")
        points.append(run256)

    status = 0
    if speedup < MIN_STEADY_SPEEDUP:
        print(f"FAIL: steady-state speedup {speedup:.1f}x below "
              f"{MIN_STEADY_SPEEDUP:.0f}x floor")
        status = 1
    if run256 is not None and run256["wall_s"] > RUN256_BUDGET_S:
        print(f"FAIL: torus-256 run took {run256['wall_s']:.1f} s "
              f"(> {RUN256_BUDGET_S:.0f} s budget)")
        status = 1

    if check:
        try:
            with open(out_path, "r", encoding="utf-8") as fh:
                reference = json.load(fh)
        except (OSError, ValueError):
            print(f"--check: no committed reference at {out_path}; "
                  "recording only")
            reference = None
        if reference is not None:
            ref_eps = reference["steady_state"]["full"]["events_per_sec"]
            fresh_eps = steady["full"]["events_per_sec"]
            floor = ref_eps * (1.0 - REGRESSION_TOLERANCE)
            verdict = "ok" if fresh_eps >= floor else "REGRESSION"
            print(f"--check: full-fidelity {fresh_eps:.0f} ev/s vs committed "
                  f"{ref_eps:.0f} ev/s (floor {floor:.0f}, tolerance "
                  f"{REGRESSION_TOLERANCE:.0%}): {verdict}")
            if fresh_eps < floor:
                status = 1

    payload = {
        "seed": SEED,
        "points": points,
        "steady_state": {
            "full": steady["full"],
            "adaptive": steady["adaptive"],
            "speedup": round(speedup, 2),
            "min_speedup": MIN_STEADY_SPEEDUP,
        },
        "run256": (
            dict(run256, budget_s=RUN256_BUDGET_S)
            if run256 is not None else None
        ),
        "regression_tolerance": REGRESSION_TOLERANCE,
        "note": "serial single-process measurement; events/s is machine-"
                "dependent, compare only against same-machine history",
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path}")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Shared fixtures for the figure-reproduction benchmarks.

Each heavyweight experiment runs once per session and is shared by every
bench that reads a different figure off the same run — exactly as the paper
derives Fig. 4a, Fig. 4b and Fig. 5 from one 24 h experiment.

Scale control
-------------
``REPRO_BENCH_SCALE`` (default ``0.12``) compresses the cyber-resilience
timeline; ``REPRO_BENCH_HOURS`` (default ``0.5``) sets the fault-injection
duration with a proportionally compressed schedule. Full-fidelity paper
settings: ``REPRO_BENCH_SCALE=1.0 REPRO_BENCH_HOURS=24`` (budget roughly a
minute of wall time per simulated hour).
"""

import os

import pytest

from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    run_fault_injection_experiment,
)

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
BENCH_HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "0.5"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))


@pytest.fixture(scope="session")
def cyber_identical_result():
    """The Fig. 3a run (identical kernels)."""
    return run_cyber_experiment(
        CyberExperimentConfig(kernel_policy="identical", seed=BENCH_SEED).scaled(
            BENCH_SCALE
        )
    )


@pytest.fixture(scope="session")
def cyber_diverse_result():
    """The Fig. 3b run (diverse kernels)."""
    return run_cyber_experiment(
        CyberExperimentConfig(kernel_policy="diverse", seed=BENCH_SEED).scaled(
            BENCH_SCALE
        )
    )


@pytest.fixture(scope="session")
def fault_injection_result():
    """The §III-C run backing Fig. 4a, Fig. 4b and Fig. 5."""
    if BENCH_HOURS >= 24.0:
        config = FaultInjectionExperimentConfig(seed=BENCH_SEED)
    else:
        config = FaultInjectionExperimentConfig(seed=BENCH_SEED).scaled(BENCH_HOURS)
    return run_fault_injection_experiment(config)

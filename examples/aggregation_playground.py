#!/usr/bin/env python3
"""Using the core FTA library directly — no simulation required.

Shows the public aggregation API on hand-made grandmaster offsets: how the
fault-tolerant average masks a Byzantine reading where the plain mean fails,
how the validity booleans isolate a lone liar but not a colluding pair, and
what the Kopetz–Ochsenreiter convergence function predicts for a given
network.

    python examples/aggregation_playground.py
"""

from repro.core.convergence import drift_offset, precision_bound, u_factor
from repro.core.fta import AGGREGATORS
from repro.core.ftshmem import StoredOffset
from repro.core.validity import ValidityConfig, assess_validity
from repro.gptp.instance import OffsetSample
from repro.sim.timebase import MILLISECONDS


def slot(domain: int, offset: float) -> StoredOffset:
    sample = OffsetSample(
        domain=domain, gm_identity=f"gm{domain}", offset=offset,
        origin_timestamp=0, local_rx_timestamp=0,
    )
    return StoredOffset(sample=sample, stored_at=0)


def main() -> None:
    print("== aggregation functions vs a Byzantine grandmaster ==")
    readings = [120.0, -80.0, 40.0, -24_000.0]  # dom4 lies by -24 us
    print(f"GM offsets (ns): {readings}")
    for name, fn in AGGREGATORS.items():
        result = fn(readings, 1)
        flag = "OK " if abs(result.value) < 200 else "BAD"
        print(f"  {name:>6}: {result.value:12.1f} ns  [{flag}]  "
              f"used={result.used}")

    print("\n== validity booleans (threshold 5 us) ==")
    config = ValidityConfig()
    lone_liar = {1: slot(1, 0.0), 2: slot(2, 100.0),
                 3: slot(3, -50.0), 4: slot(4, -24_000.0)}
    print(f"  lone liar:      {assess_validity(lone_liar, config)}")
    colluders = {1: slot(1, 0.0), 2: slot(2, 100.0),
                 3: slot(3, -24_000.0), 4: slot(4, -24_100.0)}
    print(f"  colluding pair: {assess_validity(colluders, config)}")
    print("  → a pair of identical-kernel compromises vouches for itself;")
    print("    that is why the paper diversifies OS stacks (Fig. 3).")

    print("\n== convergence function Π(N, f, E, Γ) = u(N,f)(E + Γ) ==")
    gamma = drift_offset(max_drift_ppm=5.0, sync_interval=125 * MILLISECONDS)
    for e_ns, label in ((5068.0, "paper experiment 1"),
                        (4460.0, "paper experiment 2")):
        pi = precision_bound(4, 1, e_ns, gamma)
        print(f"  {label}: E={e_ns:.0f}ns Γ={gamma:.0f}ns "
              f"u={u_factor(4, 1):.0f} → Π={pi / 1000:.3f} µs")
    print("\n  scaling with domain count (f=1):")
    for n in (4, 5, 7, 10):
        pi = precision_bound(n, 1, 5068.0, gamma)
        print(f"    N={n:>2}: u={u_factor(n, 1):.3f} → Π={pi / 1000:.3f} µs")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The §III-B cyber-resilience experiment: Fig. 3a vs Fig. 3b.

Runs the same two-exploit attack (CVE-2018-18955, then a malicious ptp4l
shifting preciseOriginTimestamp by −24 µs) against both kernel policies:

* identical kernels — both grandmasters fall; the f = 1 FTA is defeated and
  the precision blows through the bound (Fig. 3a);
* diverse kernels — the second exploit bounces off a patched kernel and the
  fault stays masked (Fig. 3b).

    python examples/cyber_attack.py [--scale 0.2] [--seed 3]

``--scale 1.0`` reproduces the full 1 h timeline with attacks at 00:21:42
and 00:31:52; the default compresses it 5x.
"""

import argparse

from repro.analysis.report import render_series
from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.security.diversity import shared_vulnerabilities


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="timeline compression factor (1.0 = paper's hour)")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    for policy, figure in (("identical", "Fig. 3a"), ("diverse", "Fig. 3b")):
        config = CyberExperimentConfig(
            kernel_policy=policy, seed=args.seed
        ).scaled(args.scale)
        print(f"=== {figure}: {policy} kernels "
              f"(duration {config.duration / 60e9:.1f} min) ===")
        result = run_cyber_experiment(config)
        print(result.to_text())
        print()
        print(render_series(
            result.buckets,
            bound=result.bounds.precision_bound,
            bound_with_error=result.bounds.bound_with_error,
            title="precision series",
        ))
        print()

    overlap = shared_vulnerabilities("linux-4.19.1", "linux-4.19.1")
    cross = shared_vulnerabilities("linux-4.19.1", "linux-5.10.0")
    print("why diversification works (cf. Garcia et al.):")
    print(f"  identical stacks share {len(overlap)} exploitable CVEs: {overlap}")
    print(f"  diversified stacks share {len(cross)}: {cross or 'none'}")


if __name__ == "__main__":
    main()

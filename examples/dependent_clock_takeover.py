#!/usr/bin/env python3
"""The fail-silent dependent clock in isolation (§II-A).

Zooms into one edge device: the active clock synchronization VM maintains
``CLOCK_SYNCTIME`` through the STSHMEM page; we kill it and watch the
hypervisor monitor (125 ms period) detect the stale page and interrupt the
redundant VM, which takes over without the node ever losing its clock.

    python examples/dependent_clock_takeover.py
"""

from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import MINUTES, SECONDS, format_hms


def main() -> None:
    testbed = Testbed(TestbedConfig(seed=13))
    sim, trace = testbed.sim, testbed.trace
    node = testbed.nodes["dev3"]

    print("letting the system synchronize...")
    testbed.run_until(2 * MINUTES)
    active = node.active_vm()
    print(f"dev3 active clock maintainer: {active.name}")
    print(f"CLOCK_SYNCTIME generation: {node.stshmem.last_generation}")

    print(f"\n[{format_hms(sim.now)}] killing {active.name} (fail-silent)...")
    kill_time = sim.now
    active.fail_silent(reason="demo")
    testbed.run_until(sim.now + 5 * SECONDS)

    takeover = trace.query(category="hypervisor.takeover", start=kill_time)[0]
    latency_ms = (takeover.time - kill_time) / 1e6
    print(f"[{format_hms(takeover.time)}] monitor detected the stale STSHMEM "
          f"page and interrupted {takeover.source} "
          f"(takeover latency {latency_ms:.0f} ms)")
    print(f"dev3 active clock maintainer now: {node.active_vm().name}")

    # CLOCK_SYNCTIME survived: co-located VMs kept reading a live clock.
    testbed.run_until(sim.now + 30 * SECONDS)
    other_node = testbed.nodes["dev1"]
    disagreement = abs(node.synctime() - other_node.synctime())
    print(f"\nCLOCK_SYNCTIME still synchronized across nodes: "
          f"dev3 vs dev1 differ by {disagreement:.0f} ns")

    print(f"\n[{format_hms(sim.now)}] rebooted VM rejoins as standby:")
    for vm in node.clock_sync_vms:
        state = "active" if vm.is_active_writer else "standby"
        print(f"  {vm.name}: {vm.state.value} ({state}), "
              f"boots={vm.boots}, takeovers={vm.takeovers}")


if __name__ == "__main__":
    main()

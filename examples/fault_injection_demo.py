#!/usr/bin/env python3
"""The §III-C fault injection experiment (Fig. 4a, Fig. 4b, Fig. 5).

Runs the continuous experiment under the paper's fault schedule — rotating
fail-silent grandmaster shutdowns, random redundant-VM shutdowns (never both
VMs of one node at once), calibrated transient ptp4l faults — and prints the
120 s avg/min/max series, the precision distribution, and the Fig. 5-style
event timeline around the worst spike.

    python examples/fault_injection_demo.py [--hours 0.5] [--seed 11]

``--hours 24`` reproduces the paper's full run (takes a while: roughly a
minute of wall time per simulated hour).
"""

import argparse

from repro.analysis.report import render_histogram, render_series, render_timeline
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    run_fault_injection_experiment,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=0.5,
                        help="simulated hours (24 = the paper's run)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--compress", action="store_true",
                        help="compress the 24h fault schedule into the "
                             "shorter run instead of running it 1:1")
    args = parser.parse_args()

    base = FaultInjectionExperimentConfig(seed=args.seed)
    config = base.scaled(args.hours) if args.compress else (
        FaultInjectionExperimentConfig(
            duration=round(args.hours * 3_600_000_000_000),
            seed=args.seed,
            injector=base.injector,
            aggregate_bucket=base.aggregate_bucket,
            timeline_window=base.timeline_window,
        )
    )
    print(f"running fault injection for {args.hours} simulated hours...")
    result = run_fault_injection_experiment(config)

    print()
    print(result.to_text())
    print()
    print(render_series(
        result.buckets,
        bound=result.bounds.precision_bound,
        bound_with_error=result.bounds.bound_with_error,
        title="Fig. 4a — precision (avg/min/max buckets)",
    ))
    print()
    print("Fig. 4b — distribution of measured precision:")
    print(render_histogram(result.distribution))
    print()
    print("Fig. 5 — events around the worst spike:")
    print(render_timeline(result.timeline))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build the paper's testbed and watch it synchronize.

Builds the full virtualized distributed real-time system of Fig. 2 — four
edge devices, eight clock synchronization VMs, four gPTP domains with
spatially separated grandmasters, multi-domain FTA aggregation — runs it for
a few simulated minutes, and prints the measured clock synchronization
precision against the Kopetz–Ochsenreiter bound Π = 2(E + Γ).

    python examples/quickstart.py [--minutes 3] [--seed 7]
"""

import argparse

from repro.analysis.aggregate import aggregate_series
from repro.analysis.report import render_series
from repro.core.aggregator import AggregatorMode
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import MINUTES, SECONDS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=3.0,
                        help="simulated duration (default 3)")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("building the Fig. 2 testbed (4 ECDs x 2 clock sync VMs, 4 domains)...")
    testbed = Testbed(TestbedConfig(seed=args.seed))
    duration = round(args.minutes * MINUTES)
    testbed.run_until(duration)

    bounds = testbed.derive_bounds()
    print(f"\nderived bounds: {bounds.describe()}\n")

    print("clock synchronization VM status:")
    for name, vm in sorted(testbed.vms.items()):
        role = f"GM dom{vm.config.gm_domain}" if vm.is_gm else "redundant"
        active = "active" if vm.is_active_writer else "standby"
        print(f"  {name}: {role:12} {active:8} mode={vm.aggregator.mode.name} "
              f"kernel={vm.config.kernel_version}")

    assert all(
        vm.aggregator.mode is AggregatorMode.FAULT_TOLERANT
        for vm in testbed.vms.values()
    ), "startup synchronization did not complete — try a longer run"

    buckets = aggregate_series(testbed.series.series(), bucket=30 * SECONDS)
    print()
    print(render_series(
        buckets,
        bound=bounds.precision_bound,
        bound_with_error=bounds.bound_with_error,
        title="measured clock synchronization precision Π* (30 s buckets)",
    ))
    print(f"\ngrandmaster clock spread: {testbed.gm_clock_spread():.0f} ns "
          f"(the mutual GM synchronization Kyriakakis-style designs lack)")


if __name__ == "__main__":
    main()

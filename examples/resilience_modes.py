#!/usr/bin/env python3
"""Beyond the paper's testbed: the extensions §II-A/§III-C/§IV sketch.

Three short scenarios on the same simulated hardware:

1. **Fail-consistent mode (2f+1 = 3 VMs per node)** — the paper's testbed
   only had NICs for two clock synchronization VMs per node, restricting it
   to fail-silent faults. With a third VM the hypervisor monitor's voting
   also catches a VM publishing *wrong* clock parameters.
2. **Feed-forward CLOCK_SYNCTIME** — the §III-C future-work prototype:
   continuity-constrained parameter publication instead of per-period
   re-anchoring.
3. **Unikernel clock sync VMs** — the §IV outlook: outside the Linux CVE
   surface, booting in milliseconds.

    python examples/resilience_modes.py
"""

from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import MICROSECONDS, MINUTES, SECONDS, format_hms


def fail_consistent_demo() -> None:
    print("== 1. fail-consistent voting (3 clock sync VMs per node) ==")
    tb = Testbed(TestbedConfig(seed=18, vms_per_node=3))
    tb.run_until(90 * SECONDS)
    node = tb.nodes["dev3"]
    active = node.active_vm()
    print(f"dev3 active clock maintainer: {active.name}")
    print(f"[{format_hms(tb.sim.now)}] corrupting {active.name}'s published "
          f"parameters by +100 µs (NOT silent — staleness can't see this)")
    active.corrupt_clock(100 * MICROSECONDS)
    tb.run_until(tb.sim.now + 5 * SECONDS)
    detections = tb.trace.query(category="hypervisor.vote_detected")
    print(f"[{format_hms(detections[0].time)}] monitor vote flagged "
          f"{detections[0].fields.get('vm', detections[0].source)}; "
          f"active is now {node.active_vm().name}")
    tb.run_until(tb.sim.now + 10 * SECONDS)
    disagreement = abs(node.synctime() - tb.nodes["dev1"].synctime())
    print(f"node clock recovered: dev3 vs dev1 differ by {disagreement:.0f} ns\n")


def feedforward_demo() -> None:
    print("== 2. feed-forward CLOCK_SYNCTIME (§III-C future work) ==")
    for mode in ("feedback", "feedforward"):
        tb = Testbed(TestbedConfig(seed=23, phc2sys_mode=mode))
        tb.run_until(3 * MINUTES)
        late = [r.precision for r in tb.series.records[30:]]
        avg = sum(late) / len(late)
        print(f"  {mode:>12}: avg Π* = {avg:6.0f} ns, max = {max(late):6.0f} ns")
    print()


def unikernel_demo() -> None:
    print("== 3. unikernel clock sync VMs (§IV outlook) ==")
    result = run_cyber_experiment(
        CyberExperimentConfig(kernel_policy="unikernel", seed=33).scaled(0.1),
        testbed_config=TestbedConfig(seed=33, kernel_policy="unikernel"),
    )
    outcome = result.compromised or "none — the Linux LPE has nothing to land on"
    print(f"double CVE-2018-18955 exploit against unikraft fleet: "
          f"compromised = {outcome}")
    print(f"precision stayed bounded: max Π* = {result.max_after_second:.0f} ns "
          f"(bound {result.bounds.bound_with_error:.0f} ns)")
    tb = Testbed(TestbedConfig(seed=34, kernel_policy="unikernel"))
    tb.run_until(90 * SECONDS)
    vm = tb.vms["c1_2"]
    down = tb.sim.now
    vm.fail_silent()
    tb.run_until(down + 2 * SECONDS)
    print(f"fail-silent unikernel VM back up after "
          f"{(tb.sim.now - down) / 1e9:.2f} s window: running={vm.running}")


def main() -> None:
    fail_consistent_demo()
    feedforward_demo()
    unikernel_demo()


if __name__ == "__main__":
    main()

"""Legacy setup shim.

All metadata lives in pyproject.toml; this file only exists so that
``pip install -e .`` works in offline environments where PEP 517 build
isolation cannot download its build requirements.
"""

from setuptools import setup

setup()

"""repro — reproduction of "IEEE 802.1AS Multi-Domain Aggregation for
Virtualized Distributed Real-Time Systems" (Ruh, Steiner, Fohler; DSN-S 2023).

Public entry points:

* :mod:`repro.core` — the paper's contribution: the fault-tolerant average,
  the FTSHMEM aggregation engine, validity booleans, and the
  Kopetz–Ochsenreiter precision bound.
* :mod:`repro.experiments` — the full Fig. 2 testbed and both paper
  experiments (cyber-resilience, 24 h fault injection) plus baselines.
* The substrates (:mod:`repro.sim`, :mod:`repro.clocks`,
  :mod:`repro.network`, :mod:`repro.gptp`, :mod:`repro.hypervisor`,
  :mod:`repro.security`, :mod:`repro.faults`, :mod:`repro.measurement`,
  :mod:`repro.analysis`) are importable individually and documented in
  DESIGN.md.

Quick taste::

    from repro.core import fault_tolerant_average
    fault_tolerant_average([120.0, -80.0, 40.0, -24_000.0], f=1).value
    # -20.0  — the Byzantine reading is dropped

    from repro.experiments import Testbed, TestbedConfig
    tb = Testbed(TestbedConfig(seed=7))
    tb.run_until(60_000_000_000)  # one simulated minute
    tb.series.max_record()
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

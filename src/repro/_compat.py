"""Version-compatibility helpers.

The project supports Python 3.9+, but several hot-path dataclasses want
``slots=True`` (lower per-instance memory, faster attribute access), which
the ``dataclass`` decorator only grew in 3.10. ``SLOTTED`` expands to
``{"slots": True}`` where available and to nothing on 3.9, so call sites
write ``@dataclass(frozen=True, **SLOTTED)`` once and get the optimization
wherever the interpreter can provide it.
"""

from __future__ import annotations

import sys
from typing import Any, Dict

SLOTTED: Dict[str, Any] = {"slots": True} if sys.version_info >= (3, 10) else {}

"""Post-run analysis: aggregation, histograms, event timelines, reports.

These utilities turn a finished experiment (a
:class:`~repro.measurement.precision.PrecisionSeries` plus the
:class:`~repro.sim.trace.TraceLog`) into exactly the data products the
paper's figures show:

* :mod:`repro.analysis.aggregate` — 120 s avg/min/max buckets (Fig. 4a's
  black line and gray band, Fig. 3's series);
* :mod:`repro.analysis.histogram` — the value distribution with
  avg/std/min/max annotations (Fig. 4b);
* :mod:`repro.analysis.timeline` — fault/takeover/transient event series
  for a window (Fig. 5's arrows, stars and crosses);
* :mod:`repro.analysis.report` — plain-text renderings of all of the above
  so benches can print paper-comparable rows;
* :mod:`repro.analysis.bounds_theory` — the closed-form §III-A3 bound
  predictor (worst-case sync-error envelopes from topology shape, drift,
  fault hypothesis and active impairments).
"""

from repro.analysis.aggregate import AggregateBucket, aggregate_series
from repro.analysis.bounds_theory import (
    TheoreticalBounds,
    attack_allowance,
    predict_bounds,
    predict_testbed_bounds,
    predict_topology_bounds,
)
from repro.analysis.histogram import HistogramResult, histogram
from repro.analysis.report import (
    render_envelope,
    render_histogram,
    render_series,
    render_timeline,
)
from repro.analysis.timeline import EventTimeline, extract_timeline

__all__ = [
    "aggregate_series",
    "AggregateBucket",
    "histogram",
    "HistogramResult",
    "extract_timeline",
    "EventTimeline",
    "render_series",
    "render_histogram",
    "render_envelope",
    "render_timeline",
    "TheoreticalBounds",
    "attack_allowance",
    "predict_bounds",
    "predict_testbed_bounds",
    "predict_topology_bounds",
]

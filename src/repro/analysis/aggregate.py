"""Time-bucketed aggregation of the precision series.

Fig. 4a: "we have aggregated intervals of 120 sec and plotted the average,
the minimum, and the maximum of our data points."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.sim.timebase import SECONDS


@dataclass(frozen=True)
class AggregateBucket:
    """One 120 s (by default) bucket of the series."""

    start: int
    end: int
    count: int
    mean: float
    minimum: float
    maximum: float


def aggregate_series(
    series: Sequence[Tuple[int, float]],
    bucket: int = 120 * SECONDS,
) -> List[AggregateBucket]:
    """Bucket (time, value) pairs into fixed windows.

    Empty windows produce no bucket (measurement gaps stay gaps).

    >>> s = [(0, 1.0), (1, 3.0), (120 * SECONDS, 10.0)]
    >>> buckets = aggregate_series(s)
    >>> (buckets[0].mean, buckets[0].minimum, buckets[0].maximum)
    (2.0, 1.0, 3.0)
    >>> buckets[1].count
    1
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    out: List[AggregateBucket] = []
    acc: dict = {}
    for time, value in series:
        index = time // bucket
        slot = acc.setdefault(index, [0, 0.0, float("inf"), float("-inf")])
        slot[0] += 1
        slot[1] += value
        slot[2] = min(slot[2], value)
        slot[3] = max(slot[3], value)
    for index in sorted(acc):
        count, total, lo, hi = acc[index]
        out.append(
            AggregateBucket(
                start=index * bucket,
                end=(index + 1) * bucket,
                count=count,
                mean=total / count,
                minimum=lo,
                maximum=hi,
            )
        )
    return out

"""Closed-form resilience bounds predicted from topology and drift alone.

The paper derives Π + γ *empirically* per testbed (§III-A3): survey the
built network, read off d_min/d_max, instantiate the Kopetz–Ochsenreiter
bound. The Resilience-Bounds line of work (Jiang, Tan, Easwaran) shows the
same worst-case sync error is *predictable* before anything runs — it is a
closed-form function of the topology's hop structure, the configured link
parameter ranges, the oscillator drift budget, the sync interval, and the
fault hypothesis f. This module computes that prediction.

The predicted envelope is constructed to dominate every measured quantity
for the same scenario:

* every drawn link delay lies inside the model ranges, so the per-hop
  closed form ``2·acc + h·trunk + (h+1)·res`` evaluated at the range
  extremes brackets any surveyed path;
* the hop extremes come from the memoized BFS machinery in
  :mod:`repro.network.topology` (``spanning_tree`` / ``max_switch_path``),
  so the prediction uses exactly the paths the testbed routes over;
* adversarial *delay* — constant per-direction link asymmetry from an
  :class:`~repro.network.impairments.ImpairmentSpec` or the extra one-way
  latency of a ``DelayAttack``/wormhole stage — shifts time transfer and
  therefore widens the envelope.  Pure loss, duplication, and reordering
  only suppress or repeat frames; they never move a timestamp, so they do
  not widen it.  Byzantine collusion is part of the fault hypothesis: up to
  f colluders are already paid for by u(M, f), and more than f is outside
  the hypothesis — exactly the case the predicted bound is meant to flag.

Grading runs against the *prediction* (``bound_source="predicted"`` on the
invariant monitor) turns the monitor into genuine correctness tooling: the
threshold exists before the run, and no measured-then-hardcoded constant
needs retuning per topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.convergence import drift_offset, precision_bound, u_factor
from repro.network.topology import Topology, _switch_key
from repro.sim.timebase import MILLISECONDS

#: Bump when the serialized TheoreticalBounds shape changes.
BOUNDS_THEORY_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TheoreticalBounds:
    """Worst-case sync-error envelope predicted without running anything.

    All latency figures are ns. ``d_min``/``d_max`` bracket every possible
    one-way path latency the surveyed network can exhibit (closed form over
    the model ranges at the topology's hop extremes), ``gamma`` brackets
    the probe-path measurement error, and ``attack_allowance`` is the
    additional reading shift a scheduled delay-type adversary can inject.
    """

    topology: str
    n_devices: int
    n_domains: int
    f: int
    min_hops: int
    max_hops: int
    d_min: int
    d_max: int
    drift_offset: float  # Γ
    gamma: float  # worst-case probe-path asymmetry
    attack_allowance: float
    max_drift_ppm: float = 5.0
    sync_interval: int = 125 * MILLISECONDS
    schema_version: int = BOUNDS_THEORY_SCHEMA_VERSION

    @property
    def reading_error(self) -> float:
        """E* = d_max − d_min, the predicted worst-case reading error."""
        return float(self.d_max - self.d_min)

    @property
    def u(self) -> float:
        """u(M, f) = (M − 2f) / (M − 3f)."""
        return u_factor(self.n_domains, self.f)

    @property
    def precision_bound(self) -> float:
        """Π* = u(M, f)·(E* + Γ) — the clean-network predicted precision."""
        return precision_bound(
            self.n_domains, self.f, self.reading_error, self.drift_offset
        )

    @property
    def envelope(self) -> float:
        """The grading threshold: u·(E* + A + Γ) + γ*.

        ``A`` (``attack_allowance``) folds scheduled delay-type adversarial
        shift into the reading error — a delayed Sync is indistinguishable
        from a long cable — and γ* pays for the probe star's asymmetry just
        as the measured Π + γ threshold does.
        """
        widened = u_factor(self.n_domains, self.f) * (
            self.reading_error + self.attack_allowance + self.drift_offset
        )
        return widened + self.gamma

    def describe(self) -> str:
        """One-line summary in the paper's notation, starred for 'predicted'."""
        return (
            f"hops∈[{self.min_hops},{self.max_hops}] "
            f"d*∈[{self.d_min},{self.d_max}]ns E*={self.reading_error:.0f}ns "
            f"Γ={self.drift_offset:.0f}ns Π*={self.precision_bound / 1000:.3f}µs "
            f"γ*={self.gamma:.0f}ns A={self.attack_allowance:.0f}ns "
            f"envelope={self.envelope / 1000:.3f}µs"
        )

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "topology": self.topology,
            "n_devices": self.n_devices,
            "n_domains": self.n_domains,
            "f": self.f,
            "min_hops": self.min_hops,
            "max_hops": self.max_hops,
            "d_min_ns": self.d_min,
            "d_max_ns": self.d_max,
            "reading_error_ns": self.reading_error,
            "drift_offset_ns": self.drift_offset,
            "gamma_ns": self.gamma,
            "attack_allowance_ns": self.attack_allowance,
            "max_drift_ppm": self.max_drift_ppm,
            "sync_interval_ns": self.sync_interval,
            "precision_bound_ns": self.precision_bound,
            "envelope_ns": self.envelope,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "TheoreticalBounds":
        version = doc.get("schema_version")
        if version != BOUNDS_THEORY_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported TheoreticalBounds schema_version {version!r} "
                f"(expected {BOUNDS_THEORY_SCHEMA_VERSION})"
            )
        return cls(
            topology=str(doc["topology"]),
            n_devices=int(doc["n_devices"]),  # type: ignore[arg-type]
            n_domains=int(doc["n_domains"]),  # type: ignore[arg-type]
            f=int(doc["f"]),  # type: ignore[arg-type]
            min_hops=int(doc["min_hops"]),  # type: ignore[arg-type]
            max_hops=int(doc["max_hops"]),  # type: ignore[arg-type]
            d_min=int(doc["d_min_ns"]),  # type: ignore[arg-type]
            d_max=int(doc["d_max_ns"]),  # type: ignore[arg-type]
            drift_offset=float(doc["drift_offset_ns"]),  # type: ignore[arg-type]
            gamma=float(doc["gamma_ns"]),  # type: ignore[arg-type]
            attack_allowance=float(doc["attack_allowance_ns"]),  # type: ignore[arg-type]
            max_drift_ppm=float(doc["max_drift_ppm"]),  # type: ignore[arg-type]
            sync_interval=int(doc["sync_interval_ns"]),  # type: ignore[arg-type]
        )


# ----------------------------------------------------------------------
# Adversarial widening
# ----------------------------------------------------------------------
def attack_allowance(chaos_plan: Optional[object], max_links_per_path: int) -> float:
    """Total delay-type adversarial shift a chaos plan can inject, ns.

    Per stage:

    * ``impair`` with per-direction delay asymmetry δ = max(a→b, b→a):
      a worst-case sync path crosses every impaired link, so the stage
      contributes δ per link on the longest path (``max_links_per_path``);
    * ``attack delay`` shifts the victim's readings by ``extra_delay``;
    * ``attack wormhole`` replays sync late by ``tunnel_delay``.

    Loss (Bernoulli or Gilbert–Elliott), duplication, reordering, and
    congestion jitter move no timestamps and contribute nothing; collusion
    is covered by the fault hypothesis (see module docstring). Stage
    contributions sum — conservative for non-overlapping windows, exact
    for stacked ones.
    """
    if chaos_plan is None:
        return 0.0
    total = 0.0
    for stage in getattr(chaos_plan, "stages", ()):
        if stage.action == "impair" and stage.impairment is not None:
            asym = max(stage.impairment.delay_a_to_b, stage.impairment.delay_b_to_a)
            if asym > 0:
                total += float(asym) * max_links_per_path
        elif stage.action == "attack" and stage.attack == "delay":
            total += float(stage.extra_delay)
        elif stage.action == "attack" and stage.attack == "wormhole":
            total += float(stage.tunnel_delay)
    return total


# ----------------------------------------------------------------------
# Core closed-form computation
# ----------------------------------------------------------------------
def _range_extremes(model) -> Tuple[int, int, int, int, int, int]:
    """(acc_lo, acc_hi, trunk_lo, trunk_hi, res_lo, res_hi) from a MeshModel."""
    acc_lo = model.access_base_range[0]
    acc_hi = model.access_base_range[1] + model.access_jitter_range[1]
    trunk_lo = model.trunk_base_range[0]
    trunk_hi = model.trunk_base_range[1] + model.trunk_jitter_range[1]
    res_lo = model.switch.residence_base
    res_hi = model.switch.residence_base + model.switch.residence_jitter
    return acc_lo, acc_hi, trunk_lo, trunk_hi, res_lo, res_hi


def _min_pair_depth(topology: Topology, nic_counts: Dict[str, int]) -> int:
    """Shortest tree depth between two NIC-hosting switches (0 if co-hosted)."""
    hosts = [sw for sw, count in nic_counts.items() if count > 0]
    if any(nic_counts[sw] >= 2 for sw in hosts):
        return 0
    if len(hosts) < 2:
        raise ValueError("prediction needs at least two attached NICs")
    best: Optional[int] = None
    for root in sorted(hosts, key=_switch_key):
        depth = topology.spanning_tree(root).depth
        for other in hosts:
            if other != root:
                d = depth[other]
                if best is None or d < best:
                    best = d
        if best == 1:
            break
    assert best is not None
    return best


def predict_topology_bounds(
    topology: Topology,
    nic_counts: Dict[str, int],
    n_domains: int,
    f: int,
    measurement_switch: str,
    sync_interval: int = 125 * MILLISECONDS,
    max_drift_ppm: float = 5.0,
    chaos_plan: Optional[object] = None,
    colocated_receiver: bool = False,
) -> TheoreticalBounds:
    """Closed-form envelope over a built (or shape-only) switch graph.

    ``nic_counts`` maps switch name → number of attached NICs; the graph
    itself only contributes hop counts, so a shape-only build (no NICs, no
    VMs) predicts identically to a full testbed. ``colocated_receiver``
    marks whether a probe receiver shares the measurement switch (true when
    more than the excluded VM pair lives there).
    """
    acc_lo, acc_hi, trunk_lo, trunk_hi, res_lo, res_hi = _range_extremes(
        topology.model
    )
    depth_max = topology.max_switch_path() - 1
    depth_min = _min_pair_depth(topology, nic_counts)
    d_min = 2 * acc_lo + depth_min * trunk_lo + (depth_min + 1) * res_lo
    d_max = 2 * acc_hi + depth_max * trunk_hi + (depth_max + 1) * res_hi

    # Probe star: worst receiver sits at the measurement switch's
    # eccentricity; the best sits either on the same switch (extra
    # co-located VM) or one trunk away.
    ecc = max(topology.spanning_tree(measurement_switch).depth.values())
    near = 0 if colocated_receiver else min(1, ecc)
    star_hi = 2 * acc_hi + ecc * trunk_hi + (ecc + 1) * res_hi
    star_lo = 2 * acc_lo + near * trunk_lo + (near + 1) * res_lo
    gamma = float(star_hi - star_lo)

    allowance = attack_allowance(chaos_plan, depth_max + 2)
    return TheoreticalBounds(
        topology=topology.kind,
        n_devices=len(topology.switches),
        n_domains=n_domains,
        f=f,
        min_hops=depth_min + 2,
        max_hops=depth_max + 2,
        d_min=d_min,
        d_max=d_max,
        drift_offset=drift_offset(max_drift_ppm, sync_interval),
        gamma=gamma,
        attack_allowance=allowance,
        max_drift_ppm=max_drift_ppm,
        sync_interval=sync_interval,
    )


def predict_testbed_bounds(testbed) -> TheoreticalBounds:
    """Predict from a built :class:`~repro.experiments.testbed.Testbed`."""
    cfg = testbed.config
    nic_counts: Dict[str, int] = {}
    for sw in testbed.topology.nic_switch.values():
        nic_counts[sw] = nic_counts.get(sw, 0) + 1
    sw_m = f"sw{cfg.measurement_device}"
    return predict_topology_bounds(
        testbed.topology,
        nic_counts,
        n_domains=len(testbed.domains),
        f=cfg.aggregator.f,
        measurement_switch=sw_m,
        sync_interval=cfg.sync_interval,
        chaos_plan=cfg.chaos,
        colocated_receiver=nic_counts.get(sw_m, 0) > 2,
    )


def predict_bounds(spec, seed: int = 1, max_drift_ppm: float = 5.0) -> TheoreticalBounds:
    """Predict a scenario's envelope without building a testbed.

    ``spec`` is a :class:`~repro.scenarios.ScenarioSpec`, a registered
    scenario name, or a spec-file path. Only the switch graph is built
    (no VMs, no NICs, no clocks); ``seed`` matters solely for generated
    shapes whose edge set is seed-dependent (``random_geometric``) and
    mirrors the stream a testbed built from the same seed would draw.
    """
    from repro.network.topology import build_topology
    from repro.scenarios.registry import resolve_scenario
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    spec = resolve_scenario(spec)
    cfg = spec.testbed_config(seed=seed)
    from dataclasses import replace as _replace

    mesh = _replace(cfg.mesh, n_devices=cfg.n_devices)
    kwargs = {"hub_device": cfg.hub_device} if cfg.topology == "star" else {}
    kwargs.update(dict(cfg.topology_params))
    topo = build_topology(
        cfg.topology,
        Simulator(),
        RngRegistry(seed).stream("topology"),
        mesh,
        **kwargs,
    )
    nic_counts = {sw: cfg.vms_per_node for sw in topo.switches}
    sw_m = f"sw{cfg.measurement_device}"
    return predict_topology_bounds(
        topo,
        nic_counts,
        n_domains=spec.effective_domains,
        f=spec.f,
        measurement_switch=sw_m,
        sync_interval=spec.sync_interval,
        max_drift_ppm=max_drift_ppm,
        chaos_plan=cfg.chaos,
        colocated_receiver=cfg.vms_per_node > 2,
    )

"""Convergence-time analysis.

How long does the system take to reach fault-tolerant operation from cold
start, and how long does a rebooted VM take to re-integrate? The paper
doesn't quantify either (its experiments start measured after startup);
operators of such a system need both numbers.

Sources: the trace log's ``fta.ft_mode_entered`` events relative to the VM
boot events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class ConvergenceReport:
    """Cold-start and re-integration timings extracted from one run."""

    cold_start_ns: Dict[str, int]  # VM -> time of first FT entry
    reintegration_ns: List[int]  # per reboot: FT entry − reboot completion

    @property
    def slowest_cold_start(self) -> Optional[int]:
        """Worst VM's time-to-FT from simulation start."""
        return max(self.cold_start_ns.values()) if self.cold_start_ns else None

    @property
    def mean_reintegration(self) -> Optional[float]:
        """Average rejoin latency after reboots."""
        if not self.reintegration_ns:
            return None
        return sum(self.reintegration_ns) / len(self.reintegration_ns)

    @property
    def worst_reintegration(self) -> Optional[int]:
        """Longest rejoin latency."""
        return max(self.reintegration_ns) if self.reintegration_ns else None


def analyze_convergence(trace: TraceLog) -> ConvergenceReport:
    """Extract convergence timings from a run's trace.

    FT-entry events are attributed as *cold start* for a VM's first entry
    and as *re-integration* when preceded by a ``vm.rebooted`` event for the
    same VM (measured from the reboot completion).
    """
    ft_entries: Dict[str, List[int]] = {}
    for record in trace.query(category="fta.ft_mode_entered"):
        vm = record.source.replace(".fta", "")
        ft_entries.setdefault(vm, []).append(record.time)

    reboots: Dict[str, List[int]] = {}
    for record in trace.query(category="vm.rebooted"):
        reboots.setdefault(record.source, []).append(record.time)

    cold_start: Dict[str, int] = {}
    reintegration: List[int] = []
    for vm, entries in ft_entries.items():
        vm_reboots = sorted(reboots.get(vm, []))
        for i, entry in enumerate(sorted(entries)):
            preceding = [t for t in vm_reboots if t <= entry]
            if i == 0 and not preceding:
                cold_start[vm] = entry
            elif preceding:
                reintegration.append(entry - preceding[-1])
            else:
                # Multiple FT entries without reboots (manual resets):
                # count conservatively as cold start refinement.
                cold_start.setdefault(vm, entry)
    return ConvergenceReport(
        cold_start_ns=cold_start, reintegration_ns=reintegration
    )

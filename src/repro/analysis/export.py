"""Result exporters.

The benches print text; real plotting pipelines want files. These writers
emit the figure data in plain formats:

* precision series → CSV (``time_ns,precision_ns``),
* aggregate buckets → CSV (Fig. 4a's avg/min/max),
* histogram → CSV (bin edges + counts),
* event timeline → CSV (Fig. 5's markers),
* trace log → JSON Lines (one structured record per line).

Everything goes through :func:`write_experiment_bundle` for a one-call dump
of a finished fault-injection experiment.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence, Tuple, Union

from repro.analysis.aggregate import AggregateBucket
from repro.analysis.histogram import HistogramResult
from repro.analysis.timeline import EventTimeline
from repro.sim.trace import TraceLog

PathLike = Union[str, Path]


def write_series_csv(path: PathLike, series: Sequence[Tuple[int, float]]) -> int:
    """Write (time, Π*) rows; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_ns", "precision_ns"])
        for time, value in series:
            writer.writerow([time, f"{value:.3f}"])
    return len(series)


def write_buckets_csv(path: PathLike, buckets: Sequence[AggregateBucket]) -> int:
    """Write Fig. 4a's aggregated rows."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["start_ns", "end_ns", "count", "mean_ns", "min_ns", "max_ns"])
        for b in buckets:
            writer.writerow(
                [b.start, b.end, b.count, f"{b.mean:.3f}",
                 f"{b.minimum:.3f}", f"{b.maximum:.3f}"]
            )
    return len(buckets)


def write_histogram_csv(path: PathLike, histogram: HistogramResult) -> int:
    """Write Fig. 4b's bins."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["bin_low_ns", "bin_high_ns", "count"])
        for i, count in enumerate(histogram.counts):
            writer.writerow(
                [f"{histogram.bin_edges[i]:.3f}",
                 f"{histogram.bin_edges[i + 1]:.3f}", count]
            )
    return len(histogram.counts)


def write_timeline_csv(path: PathLike, timeline: EventTimeline) -> int:
    """Write Fig. 5's event markers."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_ns", "kind", "source", "domain"])
        for event in timeline.events:
            writer.writerow(
                [event.time, event.kind, event.source,
                 event.domain if event.domain is not None else ""]
            )
    return len(timeline.events)


def write_trace_jsonl(
    path: PathLike, trace: TraceLog, prefix: str = ""
) -> int:
    """Write trace records as JSON Lines (optionally category-filtered)."""
    path = Path(path)
    records = trace.query(prefix=prefix) if prefix else list(trace)
    with path.open("w") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "time": record.time,
                        "category": record.category,
                        "source": record.source,
                        **record.fields,
                    },
                    default=str,
                )
                + "\n"
            )
    return len(records)


def write_experiment_bundle(directory: PathLike, result) -> dict:
    """Dump a FaultInjectionResult's figure data into a directory.

    Returns {filename: row count}. ``result`` is duck-typed so the cyber
    experiment's result works for the series/buckets subset too.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = {}
    if hasattr(result, "records"):
        written["series.csv"] = write_series_csv(
            directory / "series.csv",
            [(r.time, r.precision) for r in result.records],
        )
    if hasattr(result, "buckets"):
        written["buckets.csv"] = write_buckets_csv(
            directory / "buckets.csv", result.buckets
        )
    if hasattr(result, "distribution"):
        written["histogram.csv"] = write_histogram_csv(
            directory / "histogram.csv", result.distribution
        )
    if hasattr(result, "timeline"):
        written["timeline.csv"] = write_timeline_csv(
            directory / "timeline.csv", result.timeline
        )
    summary_path = directory / "summary.txt"
    summary_path.write_text(result.to_text() + "\n")
    written["summary.txt"] = 1
    return written

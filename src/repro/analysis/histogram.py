"""Distribution of measured precision values (Fig. 4b)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class HistogramResult:
    """Histogram plus the annotations the paper prints on Fig. 4b."""

    bin_edges: Tuple[float, ...]
    counts: Tuple[int, ...]
    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def describe(self) -> str:
        """The paper's annotation line."""
        return (
            f"avg = {self.mean:.0f}ns, std = {self.std:.0f}ns, "
            f"min = {self.minimum:.0f}ns, max = {self.maximum:.0f}ns"
        )


def histogram(
    values: Sequence[float],
    bins: int = 50,
    range_max: float = 1000.0,
) -> HistogramResult:
    """Histogram values into ``bins`` equal bins over [0, range_max].

    Values beyond ``range_max`` land in the last bin (Fig. 4b plots the
    0–1000 ns range while the max annotation still reports the true 10 µs
    outlier); statistics always cover *all* values.
    """
    if not values:
        raise ValueError("cannot histogram zero values")
    if bins <= 0 or range_max <= 0:
        raise ValueError("bins and range_max must be positive")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    counts = [0] * bins
    width = range_max / bins
    for value in values:
        index = min(bins - 1, max(0, int(value / width)))
        counts[index] += 1
    edges = tuple(i * width for i in range(bins + 1))
    return HistogramResult(
        bin_edges=edges,
        counts=tuple(counts),
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
        n=n,
    )

"""Plain-text renderings of the figure data (what the benches print).

Absolute numbers will differ from the paper (simulated substrate); these
renderings put series, bounds and annotations side by side so "who wins, by
how much, where it breaks" is readable straight off a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.aggregate import AggregateBucket
from repro.analysis.histogram import HistogramResult
from repro.analysis.timeline import EventTimeline
from repro.sim.timebase import format_hms


def render_series(
    buckets: Sequence[AggregateBucket],
    bound: Optional[float] = None,
    bound_with_error: Optional[float] = None,
    title: str = "precision series",
) -> str:
    """Aggregate buckets as a table, flagging bound violations."""
    lines: List[str] = [title]
    header = f"{'window':>10} {'n':>5} {'avg[ns]':>12} {'min[ns]':>12} {'max[ns]':>14}"
    if bound is not None:
        header += "  vs Π"
    lines.append(header)
    for b in buckets:
        row = (
            f"{format_hms(b.start):>10} {b.count:>5} "
            f"{b.mean:>12.1f} {b.minimum:>12.1f} {b.maximum:>14.1f}"
        )
        if bound is not None:
            threshold = bound_with_error if bound_with_error is not None else bound
            row += "  VIOLATION" if b.maximum > threshold else "  ok"
        lines.append(row)
    if bound is not None:
        lines.append(f"bound Π = {bound:.1f} ns"
                     + (f", Π+γ = {bound_with_error:.1f} ns"
                        if bound_with_error is not None else ""))
    return "\n".join(lines)


def render_histogram(result: HistogramResult, width: int = 50) -> str:
    """ASCII histogram with the Fig. 4b annotation line."""
    lines = [result.describe()]
    peak = max(result.counts) or 1
    for i, count in enumerate(result.counts):
        if count == 0:
            continue
        lo = result.bin_edges[i]
        hi = result.bin_edges[i + 1]
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"{lo:>7.0f}-{hi:<7.0f} {count:>7} {bar}")
    return "\n".join(lines)


def render_metrics(document: dict, width: int = 30) -> str:
    """Text rendering of a metrics export document.

    Accepts the dict produced by :func:`repro.metrics.metrics_document`
    (or loaded back from its JSON file): manifest header, then one line per
    counter/gauge, then a summary row plus an ASCII bar chart per
    histogram (empty buckets skipped).
    """
    lines: List[str] = []
    manifest = document.get("manifest")
    if manifest:
        lines.append(
            f"run: {manifest.get('experiment')} "
            f"fingerprint={str(manifest.get('config_fingerprint'))[:12]} "
            f"seeds={manifest.get('seeds')}"
        )
        if manifest.get("wall_time_s") is not None:
            eps = manifest.get("events_per_sec")
            lines.append(
                f"wall: {manifest['wall_time_s']:.2f} s"
                + (f", {eps:,.0f} events/s" if eps else "")
            )
    metrics = document.get("metrics", {})
    scalars = {
        name: snap for name, snap in metrics.items()
        if snap["type"] in ("counter", "gauge")
    }
    if scalars:
        lines.append("")
        pad = max(len(name) for name in scalars)
        for name in sorted(scalars):
            value = scalars[name]["value"]
            shown = "-" if value is None else (
                f"{value:,.1f}" if isinstance(value, float) else f"{value:,}"
            )
            lines.append(f"{name:<{pad}}  {shown:>14} ({scalars[name]['type']})")
    for name in sorted(metrics):
        snap = metrics[name]
        if snap["type"] != "histogram":
            continue
        lines.append("")
        if not snap["n"]:
            lines.append(f"{name}: (no observations)")
            continue
        lines.append(
            f"{name}: n={snap['n']} mean={snap['mean']:.1f} "
            f"p50={snap['p50']:.0f} p99={snap['p99']:.0f} "
            f"min={snap['min']:.0f} max={snap['max']:.0f}"
        )
        peak = max(snap["counts"]) or 1
        edges = snap["edges"]
        for i, count in enumerate(snap["counts"]):
            if count == 0:
                continue
            label = (
                f"<= {edges[i]:g}" if i < len(edges) else f"> {edges[-1]:g}"
            )
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"  {label:>14} {count:>9} {bar}")
    return "\n".join(lines) if lines else "(no metrics)"


def render_envelope(rows: Iterable[object]) -> str:
    """Measured-vs-theoretical margin table for an envelope sweep.

    Accepts :class:`repro.experiments.sweeps.EnvelopeRow` instances or
    their ``as_dict()`` forms (e.g. loaded back from a committed
    ``results/envelope_*.json``) — this module stays import-free of the
    experiments layer, which itself imports the analysis bound predictor.
    """
    dicts = [
        row if isinstance(row, dict) else row.as_dict()  # type: ignore[attr-defined]
        for row in rows
    ]
    if not dicts:
        return "(empty envelope sweep)"
    header = (
        f"{'scenario':>14} {'N':>5} {'f':>2} {'attack':>11} "
        f"{'envelope*[ns]':>14} {'Π+γ[ns]':>10} {'max Π*[ns]':>12} "
        f"{'margin[ns]':>12} {'within':>7} {'verdict':>9}"
    )
    lines = [header]
    for d in dicts:
        lines.append(
            f"{d['scenario']:>14} {d['n_devices']:>5} {d['f']:>2} "
            f"{(d['attack'] or '-'):>11} {d['envelope_ns']:>14.0f} "
            f"{d['measured_bound_ns']:>10.0f} {d['max_precision_ns']:>12.1f} "
            f"{d['margin_ns']:>12.1f} {str(bool(d['within'])):>7} "
            f"{d['verdict']:>9}"
        )
    return "\n".join(lines)


def render_timeline(timeline: EventTimeline) -> str:
    """Fig. 5's marker list as text."""
    symbols = {
        "gm_failure": "▼",
        "vm_failure": "▽",
        "takeover": "★",
        "transient": "✗",
    }
    lines = [
        f"events in [{format_hms(timeline.start)}, {format_hms(timeline.end)})"
    ]
    for event in timeline.events:
        symbol = symbols.get(event.kind, "?")
        domain = f" dom{event.domain}" if event.domain is not None else ""
        lines.append(
            f"{format_hms(event.time)} {symbol} {event.kind:<11} "
            f"{event.source}{domain}"
        )
    counts = ", ".join(f"{k}={v}" for k, v in sorted(timeline.counts().items()))
    lines.append(f"totals: {counts or 'none'}")
    return "\n".join(lines)

"""Clock-stability statistics.

Standard metrology tools for analysing the precision series and clock
error records beyond Fig. 4's mean/std:

* **Allan deviation** — the canonical oscillator-stability measure; useful
  for checking that the disciplined ensemble behaves white-ish at short tau
  (timestamp noise) and flattens where the servo takes over.
* **Percentile summaries** — the tail behaviour Fig. 4b's annotation hides
  (p50/p90/p99/p99.9 of the measured precision).
* **Longest run under/over a bound** — how long the system stays clean
  between spikes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def allan_deviation(
    samples: Sequence[float], sample_interval: float, m: int = 1
) -> float:
    """Overlapping Allan deviation at averaging factor ``m``.

    ``samples`` are phase (time-error) values x_i taken every
    ``sample_interval`` seconds; tau = m * sample_interval.

    >>> # A perfectly linear phase ramp has zero Allan deviation.
    >>> allan_deviation([float(i) for i in range(32)], 1.0, m=4)
    0.0
    """
    n = len(samples)
    if m < 1:
        raise ValueError(f"averaging factor must be >= 1, got {m}")
    if n < 2 * m + 1:
        raise ValueError(
            f"need at least {2 * m + 1} samples for m={m}, got {n}"
        )
    tau = m * sample_interval
    acc = 0.0
    count = n - 2 * m
    for i in range(count):
        second_difference = samples[i + 2 * m] - 2 * samples[i + m] + samples[i]
        acc += second_difference ** 2
    avar = acc / (2.0 * count * tau * tau)
    return math.sqrt(avar)


def allan_deviation_curve(
    samples: Sequence[float],
    sample_interval: float,
    max_points: int = 12,
) -> List[Tuple[float, float]]:
    """(tau, ADEV) pairs over octave-spaced averaging factors."""
    out: List[Tuple[float, float]] = []
    m = 1
    while len(samples) >= 2 * m + 1 and len(out) < max_points:
        out.append((m * sample_interval, allan_deviation(samples, sample_interval, m)))
        m *= 2
    if not out:
        raise ValueError("series too short for any Allan point")
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100].

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # Anchored form: exact when neighbours are equal (no 1-ULP drift).
    return ordered[low] + frac * (ordered[high] - ordered[low])


@dataclass(frozen=True)
class TailSummary:
    """Percentile summary of a precision series."""

    p50: float
    p90: float
    p99: float
    p999: float
    maximum: float

    def describe(self) -> str:
        """One-line rendering."""
        return (
            f"p50={self.p50:.0f}ns p90={self.p90:.0f}ns p99={self.p99:.0f}ns "
            f"p99.9={self.p999:.0f}ns max={self.maximum:.0f}ns"
        )


def tail_summary(values: Sequence[float]) -> TailSummary:
    """Compute the Fig. 4b tail percentiles."""
    return TailSummary(
        p50=percentile(values, 50),
        p90=percentile(values, 90),
        p99=percentile(values, 99),
        p999=percentile(values, 99.9),
        maximum=max(values),
    )


def longest_run_below(
    series: Sequence[Tuple[int, float]], bound: float
) -> int:
    """Longest contiguous stretch (ns of sim time) with values <= bound.

    The series is (time, value) pairs in time order; the run length is
    measured between the first and last timestamp of the stretch.
    """
    best = 0
    start = None
    prev = None
    for time, value in series:
        if value <= bound:
            if start is None:
                start = time
            prev = time
        else:
            if start is not None and prev is not None:
                best = max(best, prev - start)
            start = None
            prev = None
    if start is not None and prev is not None:
        best = max(best, prev - start)
    return best

"""Event timeline extraction (Fig. 5).

Fig. 5 overlays one hour of the precision series with: clock synchronization
VM failures (triangles), redundant VMs taking over CLOCK_SYNCTIME (stars),
and transient ptp4l faults (crosses), color-coded by gPTP domain for GM
events. This module pulls exactly those series out of the trace log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.trace import TraceLog, TraceRecord


@dataclass(frozen=True)
class TimelineEvent:
    """One plotted marker."""

    time: int
    kind: str  # "gm_failure" | "vm_failure" | "takeover" | "transient"
    source: str
    domain: Optional[int]  # for color-coding GM events


@dataclass
class EventTimeline:
    """All Fig. 5 marker series for one window."""

    start: int
    end: int
    events: List[TimelineEvent] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[TimelineEvent]:
        """Markers of one kind."""
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Marker counts per kind."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out


#: Trace categories that count as transient ptp4l software faults.
TRANSIENT_CATEGORIES = ("ptp4l.tx_timeout", "ptp4l.deadline_miss")


def extract_timeline(
    trace: TraceLog,
    start: int,
    end: int,
    gm_domain_of: Dict[str, int],
) -> EventTimeline:
    """Build the Fig. 5 overlay for ``[start, end)``.

    ``gm_domain_of`` maps GM VM names to their domain number so GM events
    can be color-coded; failures of other VMs come out domain-less.
    """
    timeline = EventTimeline(start=start, end=end)
    for record in trace.query(category="fault.fail_silent", start=start, end=end):
        domain = gm_domain_of.get(record.source)
        timeline.events.append(
            TimelineEvent(
                time=record.time,
                kind="gm_failure" if domain is not None else "vm_failure",
                source=record.source,
                domain=domain,
            )
        )
    for record in trace.query(category="hypervisor.takeover", start=start, end=end):
        timeline.events.append(
            TimelineEvent(
                time=record.time, kind="takeover", source=record.source, domain=None
            )
        )
    for category in TRANSIENT_CATEGORIES:
        for record in trace.query(category=category, start=start, end=end):
            domain = gm_domain_of.get(record.source)
            timeline.events.append(
                TimelineEvent(
                    time=record.time, kind="transient",
                    source=record.source, domain=domain,
                )
            )
    timeline.events.sort(key=lambda e: e.time)
    return timeline

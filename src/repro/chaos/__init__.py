"""Declarative chaos plans and their runtime orchestrator."""

from repro.chaos.orchestrator import ChaosOrchestrator
from repro.chaos.plan import (
    CHAOS_ACTIONS,
    ChaosPlan,
    ChaosStage,
    dump_plan,
    load_plan,
    single_loss_plan,
)

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosOrchestrator",
    "ChaosPlan",
    "ChaosStage",
    "dump_plan",
    "load_plan",
    "single_loss_plan",
]

"""Declarative chaos plans and their runtime orchestrator."""

from repro.chaos.orchestrator import ChaosOrchestrator
from repro.chaos.plan import (
    ATTACK_KINDS,
    CHAOS_ACTIONS,
    GM_ATTACK_KINDS,
    LINK_ATTACK_KINDS,
    ChaosPlan,
    ChaosStage,
    dump_plan,
    load_plan,
    merge_plans,
    single_loss_plan,
)

__all__ = [
    "ATTACK_KINDS",
    "CHAOS_ACTIONS",
    "GM_ATTACK_KINDS",
    "LINK_ATTACK_KINDS",
    "ChaosOrchestrator",
    "ChaosPlan",
    "ChaosStage",
    "dump_plan",
    "load_plan",
    "merge_plans",
    "single_loss_plan",
]

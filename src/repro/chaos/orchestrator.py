"""Runtime execution of chaos plans.

The orchestrator is the chaos-side sibling of
:class:`~repro.faults.injector.FaultInjector`: built by the testbed when a
:class:`~repro.chaos.plan.ChaosPlan` is configured, it schedules every
stage at its absolute simulation time and applies the action — attaching
:class:`~repro.network.impairments.LinkImpairment` runtimes (each with its
own named RNG stream, so chaos never perturbs link jitter or any other
component's draws), flapping links, or launching steered attacks from
:mod:`repro.security.attacks`.

Every executed stage emits a ``chaos.stage`` trace record, giving the
invariant monitor and post-hoc analysis an exact timeline of what was done
to the network and when.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.chaos.plan import GM_ATTACK_KINDS, ChaosPlan, ChaosStage
from repro.network.impairments import LinkImpairment
from repro.security.attacks import (
    AdaptiveAttack,
    CollusionAttack,
    DelayAttack,
    OscillatingAttack,
    RampAttack,
    SyncSuppressionAttack,
    WormholeAttack,
    _SteeredAttack,
)

if TYPE_CHECKING:
    from repro.hypervisor.clock_sync_vm import ClockSyncVm
    from repro.network.link import Link
    from repro.network.topology import Topology
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import TraceLog


class ChaosOrchestrator:
    """Schedules and applies the stages of one chaos plan."""

    def __init__(
        self,
        sim: "Simulator",
        topology: "Topology",
        plan: ChaosPlan,
        rng: "RngRegistry",
        vms: Dict[str, "ClockSyncVm"],
        trace: Optional["TraceLog"] = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.plan = plan
        self.rng = rng
        self.vms = vms
        self.trace = trace
        self.metrics = metrics
        self.stages_executed = 0
        self.impairments: Dict[str, LinkImpairment] = {}
        self.attacks: List[_SteeredAttack] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every stage at its absolute simulation time."""
        if self._started:
            raise RuntimeError("chaos orchestrator already started")
        self._started = True
        self._check_attack_targets()
        for stage in self.plan.stages:
            self.sim.schedule_at(stage.at, self._run_stage, stage)

    def _check_attack_targets(self) -> None:
        """Reject attack stages naming VMs absent from this testbed.

        The plan schema already rejects names that cannot be clock-sync
        VMs; this catches the well-formed-but-missing case (e.g. ``c9_9``
        on a four-device topology) when the testbed is built, instead of a
        bare ``KeyError`` when the stage eventually fires.
        """
        for stage in self.plan.stages:
            if stage.action != "attack" or stage.attack not in GM_ATTACK_KINDS:
                continue
            wanted = set(stage.victims)
            if stage.observer is not None:
                wanted.add(stage.observer)
            missing = sorted(wanted - set(self.vms))
            if missing:
                raise ValueError(
                    f"chaos plan {self.plan.name!r}, attack stage at "
                    f"t={stage.at}: {', '.join(missing)} not in this "
                    f"testbed; known VMs: {', '.join(sorted(self.vms))}"
                )

    # ------------------------------------------------------------------
    def resolve_links(self, selectors) -> List["Link"]:
        """Expand link selectors against the topology (see plan docstring)."""
        topo = self.topology
        seen: Dict[int, "Link"] = {}

        def add(link: "Link") -> None:
            seen.setdefault(id(link), link)

        for sel in selectors:
            if sel == "*":
                for key in sorted(topo.trunks):
                    add(topo.trunks[key])
            elif sel.startswith("nic:"):
                add(topo.access_links[sel[4:]])
            elif sel.startswith("device:"):
                sw = f"sw{sel[7:]}" if not sel[7:].startswith("sw") else sel[7:]
                found = False
                for (a, b) in sorted(topo.trunks):
                    if sw in (a, b):
                        add(topo.trunks[(a, b)])
                        found = True
                for nic_name in sorted(topo.nic_switch):
                    if topo.nic_switch[nic_name] == sw:
                        add(topo.access_links[nic_name])
                        found = True
                if not found:
                    raise KeyError(f"selector {sel!r}: no links touch {sw}")
            elif "-" in sel:
                a, b = sel.split("-", 1)
                add(topo.trunk(a, b))
            else:
                raise KeyError(f"unrecognized link selector {sel!r}")
        return list(seen.values())

    # ------------------------------------------------------------------
    def _run_stage(self, stage: ChaosStage) -> None:
        self.stages_executed += 1
        if stage.action == "impair":
            for link in self.resolve_links(stage.links):
                imp = self.impairments.get(link.name)
                if imp is None or imp.spec != stage.impairment:
                    imp = LinkImpairment(
                        stage.impairment,
                        self.rng.stream(f"impairment.{link.name}"),
                        link_name=link.name,
                        trace=self.trace,
                        metrics=self.metrics,
                    )
                    self.impairments[link.name] = imp
                link.attach_impairment(imp)
        elif stage.action == "clear":
            for link in self.resolve_links(stage.links):
                link.detach_impairment()
        elif stage.action == "link_down":
            for link in self.resolve_links(stage.links):
                link.set_up(False)
        elif stage.action == "link_up":
            for link in self.resolve_links(stage.links):
                link.set_up(True)
        elif stage.action == "attack":
            attack = self._build_attack(stage)
            attack.launch()
            self.attacks.append(attack)
        elif stage.action == "attack_stop":
            for attack in self.attacks:
                if stage.label is None or attack.label == stage.label:
                    attack.stop()
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "chaos.stage", self.plan.name,
                action=stage.action,
                links=",".join(stage.links),
                attack=stage.attack or "",
            )

    def _build_attack(self, stage: ChaosStage):
        """Instantiate the attack an ``attack`` stage describes."""
        kind = stage.attack
        if kind in GM_ATTACK_KINDS:
            victims = [self.vms[name] for name in stage.victims]
            if kind == "ramp":
                return RampAttack(
                    self.sim, victims, trace=self.trace, label=stage.label,
                    step_per_update=stage.step_per_update,
                )
            if kind == "oscillate":
                return OscillatingAttack(
                    self.sim, victims, trace=self.trace, label=stage.label,
                    amplitude=stage.amplitude,
                    period_updates=stage.period_updates,
                )
            if kind == "collude":
                return CollusionAttack(
                    self.sim, victims, trace=self.trace, label=stage.label,
                    shift=stage.shift,
                )
            observer = self.vms[stage.observer or stage.victims[0]]
            return AdaptiveAttack(
                self.sim, victims, trace=self.trace, label=stage.label,
                observer=observer, shift=stage.shift,
            )
        links = self.resolve_links(stage.links)
        label = stage.label or f"{kind}@{stage.at}"
        if kind == "suppress":
            return SyncSuppressionAttack(
                self.sim, links, self.rng.stream(f"attack.{label}"),
                drop_prob=stage.drop_prob, domains=stage.domains,
                trace=self.trace, label=stage.label,
            )
        if kind == "delay":
            return DelayAttack(
                self.sim, links, extra_delay=stage.extra_delay,
                domains=stage.domains, trace=self.trace, label=stage.label,
            )
        (dest,) = self.resolve_links((stage.dest,))
        return WormholeAttack(
            self.sim, links, dest=dest, tunnel_delay=stage.tunnel_delay,
            domains=stage.domains, trace=self.trace, label=stage.label,
        )

    # ------------------------------------------------------------------
    def link_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-link impairment counter snapshot (for result reporting)."""
        return {
            name: imp.stats() for name, imp in sorted(self.impairments.items())
        }

    def summary(self) -> Dict[str, object]:
        """Aggregate counters for manifests and text reports."""
        totals = {"seen": 0, "dropped": 0, "duplicated": 0, "reordered": 0,
                  "congestion_delayed": 0}
        for imp in self.impairments.values():
            for key, value in imp.stats().items():
                totals[key] += value
        return {
            "plan": self.plan.name,
            "stages_executed": self.stages_executed,
            "links_impaired": len(self.impairments),
            "attacks_launched": len(self.attacks),
            **totals,
            "packets_suppressed": sum(
                getattr(a, "packets_suppressed", 0) for a in self.attacks
            ),
            "packets_delayed": sum(
                getattr(a, "packets_delayed", 0) for a in self.attacks
            ),
            "packets_tunneled": sum(
                getattr(a, "packets_tunneled", 0) for a in self.attacks
            ),
        }

"""Runtime execution of chaos plans.

The orchestrator is the chaos-side sibling of
:class:`~repro.faults.injector.FaultInjector`: built by the testbed when a
:class:`~repro.chaos.plan.ChaosPlan` is configured, it schedules every
stage at its absolute simulation time and applies the action — attaching
:class:`~repro.network.impairments.LinkImpairment` runtimes (each with its
own named RNG stream, so chaos never perturbs link jitter or any other
component's draws), flapping links, or launching steered attacks from
:mod:`repro.security.attacks`.

Every executed stage emits a ``chaos.stage`` trace record, giving the
invariant monitor and post-hoc analysis an exact timeline of what was done
to the network and when.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.chaos.plan import ChaosPlan, ChaosStage
from repro.network.impairments import LinkImpairment
from repro.security.attacks import OscillatingAttack, RampAttack, _SteeredAttack

if TYPE_CHECKING:
    from repro.hypervisor.clock_sync_vm import ClockSyncVm
    from repro.network.link import Link
    from repro.network.topology import Topology
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry
    from repro.sim.trace import TraceLog


class ChaosOrchestrator:
    """Schedules and applies the stages of one chaos plan."""

    def __init__(
        self,
        sim: "Simulator",
        topology: "Topology",
        plan: ChaosPlan,
        rng: "RngRegistry",
        vms: Dict[str, "ClockSyncVm"],
        trace: Optional["TraceLog"] = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.plan = plan
        self.rng = rng
        self.vms = vms
        self.trace = trace
        self.metrics = metrics
        self.stages_executed = 0
        self.impairments: Dict[str, LinkImpairment] = {}
        self.attacks: List[_SteeredAttack] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every stage at its absolute simulation time."""
        if self._started:
            raise RuntimeError("chaos orchestrator already started")
        self._started = True
        for stage in self.plan.stages:
            self.sim.schedule_at(stage.at, self._run_stage, stage)

    # ------------------------------------------------------------------
    def resolve_links(self, selectors) -> List["Link"]:
        """Expand link selectors against the topology (see plan docstring)."""
        topo = self.topology
        seen: Dict[int, "Link"] = {}

        def add(link: "Link") -> None:
            seen.setdefault(id(link), link)

        for sel in selectors:
            if sel == "*":
                for key in sorted(topo.trunks):
                    add(topo.trunks[key])
            elif sel.startswith("nic:"):
                add(topo.access_links[sel[4:]])
            elif sel.startswith("device:"):
                sw = f"sw{sel[7:]}" if not sel[7:].startswith("sw") else sel[7:]
                found = False
                for (a, b) in sorted(topo.trunks):
                    if sw in (a, b):
                        add(topo.trunks[(a, b)])
                        found = True
                for nic_name in sorted(topo.nic_switch):
                    if topo.nic_switch[nic_name] == sw:
                        add(topo.access_links[nic_name])
                        found = True
                if not found:
                    raise KeyError(f"selector {sel!r}: no links touch {sw}")
            elif "-" in sel:
                a, b = sel.split("-", 1)
                add(topo.trunk(a, b))
            else:
                raise KeyError(f"unrecognized link selector {sel!r}")
        return list(seen.values())

    # ------------------------------------------------------------------
    def _run_stage(self, stage: ChaosStage) -> None:
        self.stages_executed += 1
        if stage.action == "impair":
            for link in self.resolve_links(stage.links):
                imp = self.impairments.get(link.name)
                if imp is None or imp.spec != stage.impairment:
                    imp = LinkImpairment(
                        stage.impairment,
                        self.rng.stream(f"impairment.{link.name}"),
                        link_name=link.name,
                        trace=self.trace,
                        metrics=self.metrics,
                    )
                    self.impairments[link.name] = imp
                link.attach_impairment(imp)
        elif stage.action == "clear":
            for link in self.resolve_links(stage.links):
                link.detach_impairment()
        elif stage.action == "link_down":
            for link in self.resolve_links(stage.links):
                link.set_up(False)
        elif stage.action == "link_up":
            for link in self.resolve_links(stage.links):
                link.set_up(True)
        elif stage.action == "attack":
            victims = [self.vms[name] for name in stage.victims]
            if stage.attack == "ramp":
                attack: _SteeredAttack = RampAttack(
                    self.sim, victims, trace=self.trace,
                    step_per_update=stage.step_per_update,
                )
            else:
                attack = OscillatingAttack(
                    self.sim, victims, trace=self.trace,
                    amplitude=stage.amplitude,
                    period_updates=stage.period_updates,
                )
            attack.launch()
            self.attacks.append(attack)
        elif stage.action == "attack_stop":
            for attack in self.attacks:
                attack.stop()
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "chaos.stage", self.plan.name,
                action=stage.action,
                links=",".join(stage.links),
                attack=stage.attack or "",
            )

    # ------------------------------------------------------------------
    def link_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-link impairment counter snapshot (for result reporting)."""
        return {
            name: imp.stats() for name, imp in sorted(self.impairments.items())
        }

    def summary(self) -> Dict[str, object]:
        """Aggregate counters for manifests and text reports."""
        totals = {"seen": 0, "dropped": 0, "duplicated": 0, "reordered": 0,
                  "congestion_delayed": 0}
        for imp in self.impairments.values():
            for key, value in imp.stats().items():
                totals[key] += value
        return {
            "plan": self.plan.name,
            "stages_executed": self.stages_executed,
            "links_impaired": len(self.impairments),
            "attacks_launched": len(self.attacks),
            **totals,
        }

"""Declarative chaos plans.

A :class:`ChaosPlan` is a serializable schedule of timed stages that
degrade a running testbed: attach/detach link impairments, flap links, or
launch the steered attacks from :mod:`repro.security.attacks`. Plans ride
on :class:`~repro.scenarios.spec.ScenarioSpec` next to the fault plan, are
part of the scenario fingerprint (and hence every results-cache key), and
are executed by :class:`~repro.chaos.orchestrator.ChaosOrchestrator`.

Link selectors
--------------
Each stage names its target links declaratively; the orchestrator resolves
the selectors against the built topology at run time:

``"*"``
    every inter-switch trunk
``"sw1-sw3"``
    one trunk, either endpoint order
``"nic:c2_1"``
    the access link of that NIC
``"device:3"``
    every link incident to switch ``sw3`` — its trunks plus the access
    links of all NICs attached to it
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.network.impairments import ImpairmentSpec
from repro.sim.timebase import SECONDS

#: Stage actions understood by the orchestrator.
CHAOS_ACTIONS = (
    "impair", "clear", "link_down", "link_up", "attack", "attack_stop",
)

#: Steered attack kinds (see :mod:`repro.security.attacks`).
ATTACK_KINDS = ("ramp", "oscillate")

CHAOS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ChaosStage:
    """One timed action of a chaos plan.

    Attributes
    ----------
    at:
        Simulation time (ns) the action fires.
    action:
        One of :data:`CHAOS_ACTIONS`.
    links:
        Link selectors (see module docstring); required for the link
        actions, ignored for attack actions.
    impairment:
        The spec to attach (``impair`` only).
    attack:
        ``"ramp"`` or ``"oscillate"`` (``attack`` only).
    victims:
        VM names to compromise (``attack`` only).
    step_per_update / amplitude / period_updates:
        Attack steering parameters, passed through to the attack class.
    """

    at: int
    action: str
    links: Tuple[str, ...] = ()
    impairment: Optional[ImpairmentSpec] = None
    attack: Optional[str] = None
    victims: Tuple[str, ...] = ()
    step_per_update: int = -100
    amplitude: int = 10_000
    period_updates: int = 16

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"stage time must be nonnegative, got {self.at}")
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {CHAOS_ACTIONS}"
            )
        if not isinstance(self.links, tuple):
            object.__setattr__(self, "links", tuple(self.links))
        if not isinstance(self.victims, tuple):
            object.__setattr__(self, "victims", tuple(self.victims))
        if self.action in ("impair", "clear", "link_down", "link_up"):
            if not self.links:
                raise ValueError(f"{self.action} stage needs link selectors")
        if self.action == "impair":
            if self.impairment is None:
                raise ValueError("impair stage needs an impairment spec")
        if self.action == "attack":
            if self.attack not in ATTACK_KINDS:
                raise ValueError(
                    f"attack stage needs kind in {ATTACK_KINDS}, "
                    f"got {self.attack!r}"
                )
            if not self.victims:
                raise ValueError("attack stage needs victim VM names")

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"at": self.at, "action": self.action}
        if self.links:
            doc["links"] = list(self.links)
        if self.impairment is not None:
            doc["impairment"] = self.impairment.to_dict()
        if self.attack is not None:
            doc["attack"] = self.attack
            doc["victims"] = list(self.victims)
            doc["step_per_update"] = self.step_per_update
            doc["amplitude"] = self.amplitude
            doc["period_updates"] = self.period_updates
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ChaosStage":
        doc = dict(doc)
        unknown = set(doc) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown chaos stage keys: {sorted(unknown)}")
        imp = doc.get("impairment")
        if isinstance(imp, dict):
            doc["impairment"] = ImpairmentSpec.from_dict(imp)
        if "links" in doc:
            doc["links"] = tuple(doc["links"])
        if "victims" in doc:
            doc["victims"] = tuple(doc["victims"])
        return cls(**doc)


@dataclass(frozen=True)
class ChaosPlan:
    """A named, ordered schedule of chaos stages."""

    name: str
    stages: Tuple[ChaosStage, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chaos plan needs a name")
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": CHAOS_SCHEMA_VERSION,
            "name": self.name,
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ChaosPlan":
        doc = dict(doc)
        version = doc.pop("schema_version", CHAOS_SCHEMA_VERSION)
        if version != CHAOS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported chaos plan schema_version {version} "
                f"(this build reads {CHAOS_SCHEMA_VERSION})"
            )
        unknown = set(doc) - {"name", "stages"}
        if unknown:
            raise ValueError(f"unknown chaos plan keys: {sorted(unknown)}")
        stages = tuple(
            ChaosStage.from_dict(s) if isinstance(s, dict) else s
            for s in doc.get("stages", ())
        )
        return cls(name=doc["name"], stages=stages)


def load_plan(path: Union[str, Path]) -> ChaosPlan:
    """Read a chaos plan from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return ChaosPlan.from_dict(json.load(fh))


def dump_plan(plan: ChaosPlan, path: Union[str, Path]) -> None:
    """Write a chaos plan to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(plan.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def single_loss_plan(
    loss: float,
    start: int = 60 * SECONDS,
    end: Optional[int] = None,
    links: Tuple[str, ...] = ("*",),
    name: Optional[str] = None,
) -> ChaosPlan:
    """Canned plan: Bernoulli loss on ``links`` from ``start`` (to ``end``).

    The ``sweep lossrate`` arm and the CLI ``--loss`` shortcut both build
    this shape; keeping it a library function makes the sweep's cache key
    depend only on (loss, window, links).
    """
    stages = [
        ChaosStage(at=start, action="impair", links=links,
                   impairment=ImpairmentSpec(loss=loss)),
    ]
    if end is not None:
        stages.append(ChaosStage(at=end, action="clear", links=links))
    return ChaosPlan(
        name=name or f"loss-{loss:g}",
        stages=tuple(stages),
    )

"""Declarative chaos plans.

A :class:`ChaosPlan` is a serializable schedule of timed stages that
degrade a running testbed: attach/detach link impairments, flap links, or
launch the steered attacks from :mod:`repro.security.attacks`. Plans ride
on :class:`~repro.scenarios.spec.ScenarioSpec` next to the fault plan, are
part of the scenario fingerprint (and hence every results-cache key), and
are executed by :class:`~repro.chaos.orchestrator.ChaosOrchestrator`.

Link selectors
--------------
Each stage names its target links declaratively; the orchestrator resolves
the selectors against the built topology at run time:

``"*"``
    every inter-switch trunk
``"sw1-sw3"``
    one trunk, either endpoint order
``"nic:c2_1"``
    the access link of that NIC
``"device:3"``
    every link incident to switch ``sw3`` — its trunks plus the access
    links of all NICs attached to it
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.network.impairments import ImpairmentSpec
from repro.sim.timebase import SECONDS

#: Stage actions understood by the orchestrator.
CHAOS_ACTIONS = (
    "impair", "clear", "link_down", "link_up", "attack", "attack_stop",
)

#: GM-side steered attack kinds (see :mod:`repro.security.attacks`); these
#: compromise victim VMs and steer ``malicious_origin_shift``.
GM_ATTACK_KINDS = ("ramp", "oscillate", "collude", "adaptive")

#: On-path link-tap attack kinds; these occupy link impairment slots.
LINK_ATTACK_KINDS = ("suppress", "delay", "wormhole")

#: Every attack kind an ``attack`` stage accepts.
ATTACK_KINDS = GM_ATTACK_KINDS + LINK_ATTACK_KINDS

CHAOS_SCHEMA_VERSION = 1

#: Names that can denote a clock-sync VM (``c<device>_<index>``); attack
#: victims and observers are checked against this at plan-load time so a
#: typo fails when the plan is built, not minutes into a run.
_VM_NAME_RE = re.compile(r"^c\d+_\d+$")


def _check_vm_names(stage_desc: str, role: str, names) -> None:
    for name in names:
        if not _VM_NAME_RE.match(name):
            raise ValueError(
                f"{stage_desc}: {role} {name!r} is not a clock-sync VM name "
                f"(expected the c<device>_<index> form, e.g. 'c4_1')"
            )


@dataclass(frozen=True)
class ChaosStage:
    """One timed action of a chaos plan.

    Attributes
    ----------
    at:
        Simulation time (ns) the action fires.
    action:
        One of :data:`CHAOS_ACTIONS`.
    links:
        Link selectors (see module docstring); required for the link
        actions, ignored for attack actions.
    impairment:
        The spec to attach (``impair`` only).
    attack:
        One of :data:`ATTACK_KINDS` (``attack`` only).
    victims:
        VM names to compromise (GM attack kinds only).
    step_per_update / amplitude / period_updates:
        Steering parameters of the ramp/oscillate attacks.
    label:
        Optional handle; a labelled ``attack_stop`` stops only the attack
        launched with the same label (an unlabelled stop stops everything).
    shift:
        Constant origin shift of the collude/adaptive attacks, ns.
    observer:
        Foothold VM of the adaptive attack (defaults to the first victim).
    domains:
        gPTP domains a link-tap attack targets (empty = every domain).
    drop_prob:
        Per-frame suppression probability of the ``suppress`` kind.
    extra_delay:
        Added one-way Sync/Follow_Up latency of the ``delay`` kind, ns.
    tunnel_delay / dest:
        Replay latency and destination link selector of the ``wormhole``.
    """

    at: int
    action: str
    links: Tuple[str, ...] = ()
    impairment: Optional[ImpairmentSpec] = None
    attack: Optional[str] = None
    victims: Tuple[str, ...] = ()
    step_per_update: int = -100
    amplitude: int = 10_000
    period_updates: int = 16
    label: Optional[str] = None
    shift: int = -4_000
    observer: Optional[str] = None
    domains: Tuple[int, ...] = ()
    drop_prob: float = 1.0
    extra_delay: int = 0
    tunnel_delay: int = 0
    dest: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"stage time must be nonnegative, got {self.at}")
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"expected one of {CHAOS_ACTIONS}"
            )
        if not isinstance(self.links, tuple):
            object.__setattr__(self, "links", tuple(self.links))
        if not isinstance(self.victims, tuple):
            object.__setattr__(self, "victims", tuple(self.victims))
        if not isinstance(self.domains, tuple):
            object.__setattr__(self, "domains", tuple(self.domains))
        if self.action in ("impair", "clear", "link_down", "link_up"):
            if not self.links:
                raise ValueError(f"{self.action} stage needs link selectors")
        if self.action == "impair":
            if self.impairment is None:
                raise ValueError("impair stage needs an impairment spec")
        if self.action == "attack":
            self._validate_attack()

    def _validate_attack(self) -> None:
        desc = f"attack stage at={self.at}"
        if self.attack not in ATTACK_KINDS:
            raise ValueError(
                f"attack stage needs kind in {ATTACK_KINDS}, "
                f"got {self.attack!r}"
            )
        if self.attack in GM_ATTACK_KINDS:
            if not self.victims:
                raise ValueError("attack stage needs victim VM names")
            _check_vm_names(desc, "victim", self.victims)
            if self.observer is not None:
                _check_vm_names(desc, "observer", (self.observer,))
        else:
            if not self.links:
                raise ValueError(
                    f"{self.attack} attack stage needs link selectors"
                )
        if self.attack == "suppress" and not 0.0 < self.drop_prob <= 1.0:
            raise ValueError(
                f"{desc}: drop_prob must be in (0, 1], got {self.drop_prob}"
            )
        if self.attack == "delay" and self.extra_delay <= 0:
            raise ValueError(
                f"{desc}: delay attack needs a positive extra_delay"
            )
        if self.attack == "wormhole":
            if self.dest is None:
                raise ValueError(
                    f"{desc}: wormhole attack needs a dest link selector"
                )
            if self.tunnel_delay < 0:
                raise ValueError(
                    f"{desc}: tunnel_delay must be >= 0, got {self.tunnel_delay}"
                )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"at": self.at, "action": self.action}
        if self.links:
            doc["links"] = list(self.links)
        if self.impairment is not None:
            doc["impairment"] = self.impairment.to_dict()
        if self.attack is not None:
            doc["attack"] = self.attack
            doc["victims"] = list(self.victims)
            doc["step_per_update"] = self.step_per_update
            doc["amplitude"] = self.amplitude
            doc["period_updates"] = self.period_updates
        # Campaign-era fields ride along only when they differ from the
        # defaults: pre-campaign plans keep their byte-identical serialized
        # form (and hence their scenario fingerprints).
        if self.label is not None:
            doc["label"] = self.label
        if self.shift != -4_000:
            doc["shift"] = self.shift
        if self.observer is not None:
            doc["observer"] = self.observer
        if self.domains:
            doc["domains"] = list(self.domains)
        if self.drop_prob != 1.0:
            doc["drop_prob"] = self.drop_prob
        if self.extra_delay:
            doc["extra_delay"] = self.extra_delay
        if self.tunnel_delay:
            doc["tunnel_delay"] = self.tunnel_delay
        if self.dest is not None:
            doc["dest"] = self.dest
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ChaosStage":
        doc = dict(doc)
        unknown = set(doc) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown chaos stage keys: {sorted(unknown)}")
        imp = doc.get("impairment")
        if isinstance(imp, dict):
            doc["impairment"] = ImpairmentSpec.from_dict(imp)
        if "links" in doc:
            doc["links"] = tuple(doc["links"])
        if "victims" in doc:
            doc["victims"] = tuple(doc["victims"])
        if "domains" in doc:
            doc["domains"] = tuple(doc["domains"])
        return cls(**doc)


@dataclass(frozen=True)
class ChaosPlan:
    """A named, ordered schedule of chaos stages."""

    name: str
    stages: Tuple[ChaosStage, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("chaos plan needs a name")
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": CHAOS_SCHEMA_VERSION,
            "name": self.name,
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ChaosPlan":
        doc = dict(doc)
        version = doc.pop("schema_version", CHAOS_SCHEMA_VERSION)
        if version != CHAOS_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported chaos plan schema_version {version} "
                f"(this build reads {CHAOS_SCHEMA_VERSION})"
            )
        unknown = set(doc) - {"name", "stages"}
        if unknown:
            raise ValueError(f"unknown chaos plan keys: {sorted(unknown)}")
        stages = tuple(
            ChaosStage.from_dict(s) if isinstance(s, dict) else s
            for s in doc.get("stages", ())
        )
        return cls(name=doc["name"], stages=stages)


def load_plan(path: Union[str, Path]) -> ChaosPlan:
    """Read a chaos plan from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return ChaosPlan.from_dict(json.load(fh))


def dump_plan(plan: ChaosPlan, path: Union[str, Path]) -> None:
    """Write a chaos plan to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(plan.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def merge_plans(a: ChaosPlan, b: ChaosPlan) -> ChaosPlan:
    """Combine two plans into one time-ordered schedule.

    The sort is stable, so stages sharing a fire time keep their original
    relative order (``a``'s before ``b``'s) — merging is deterministic.
    """
    stages = sorted(a.stages + b.stages, key=lambda s: s.at)
    return ChaosPlan(name=f"{a.name}+{b.name}", stages=tuple(stages))


def single_loss_plan(
    loss: float,
    start: int = 60 * SECONDS,
    end: Optional[int] = None,
    links: Tuple[str, ...] = ("*",),
    name: Optional[str] = None,
) -> ChaosPlan:
    """Canned plan: Bernoulli loss on ``links`` from ``start`` (to ``end``).

    The ``sweep lossrate`` arm and the CLI ``--loss`` shortcut both build
    this shape; keeping it a library function makes the sweep's cache key
    depend only on (loss, window, links).
    """
    stages = [
        ChaosStage(at=start, action="impair", links=links,
                   impairment=ImpairmentSpec(loss=loss)),
    ]
    if end is not None:
        stages.append(ChaosStage(at=end, action="clear", links=links))
    return ChaosPlan(
        name=name or f"loss-{loss:g}",
        stages=tuple(stages),
    )

"""Command-line interface.

Installed as ``repro-sim`` (see pyproject). Subcommands mirror the paper's
evaluation workflow:

* ``repro-sim survey`` — build the testbed, survey latencies, print the
  §III-A3 bound derivation.
* ``repro-sim cyber`` — run the §III-B attack experiment (Fig. 3a/3b).
* ``repro-sim faults`` — run the §III-C fault injection (Fig. 4/5).
* ``repro-sim baselines`` — run the baseline comparison.
* ``repro-sim chaos`` — run a declarative chaos plan (packet loss, link
  flaps, attacks) under the online invariant monitor.
* ``repro-sim campaign`` — run an adversary campaign (a coordinated,
  staged attack schedule) under the monitor; ``--colluders K`` is the
  worst-case in-window colluding-GM shortcut.
* ``repro-sim vulnerabilities`` — query the kernel/CVE database.
* ``repro-sim scenarios`` — list/show the named scenario registry.

Every experiment subcommand accepts ``--scenario NAME|path.json`` to run on
a registered or file-based :class:`repro.scenarios.ScenarioSpec` instead of
the paper's default mesh4 testbed.

All numeric output is plain text; ``--json`` emits machine-readable results
for downstream plotting.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.analysis.report import render_histogram, render_series, render_timeline
from repro.experiments.baselines import (
    run_client_only_baseline,
    run_full_architecture,
    run_single_domain_baseline,
)
from repro.experiments.cyber import CyberExperimentConfig, run_cyber_experiment
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    run_fault_injection_experiment,
)
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.security.diversity import shared_vulnerabilities, vulnerabilities_of
from repro.security.kernels import VULNERABILITY_DB
from repro.sim.timebase import HOURS, MINUTES, SECONDS


def _emit(args: argparse.Namespace, text: str, payload: Dict[str, Any]) -> None:
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(text)


def _scenario_of(args: argparse.Namespace):
    """The resolved :class:`ScenarioSpec` of ``--scenario``, or ``None``."""
    ref = getattr(args, "scenario", None)
    if not ref:
        return None
    from repro.scenarios import resolve_scenario

    return resolve_scenario(ref)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_survey(args: argparse.Namespace) -> int:
    spec = _scenario_of(args)
    testbed = Testbed(
        spec.testbed_config(seed=args.seed)
        if spec is not None else TestbedConfig(seed=args.seed)
    )
    testbed.run_until(round(args.warmup * SECONDS))
    bounds = testbed.derive_bounds()
    payload = {
        "d_min_ns": bounds.d_min,
        "d_max_ns": bounds.d_max,
        "reading_error_ns": bounds.reading_error,
        "drift_offset_ns": bounds.drift_offset,
        "precision_bound_ns": bounds.precision_bound,
        "measurement_error_ns": bounds.measurement_error,
    }
    _emit(args, bounds.describe(), payload)
    return 0


def cmd_cyber(args: argparse.Namespace) -> int:
    config = CyberExperimentConfig(
        kernel_policy=args.policy, seed=args.seed
    ).scaled(args.scale)
    result = run_cyber_experiment(config, scenario=_scenario_of(args))
    payload = {
        "policy": args.policy,
        "compromised": result.compromised,
        "bound_ns": result.bounds.precision_bound,
        "max_between_attacks_ns": result.max_between_attacks,
        "max_after_second_ns": result.max_after_second,
        "first_attack_masked": result.first_attack_masked,
        "second_attack_violates": result.second_attack_violates,
    }
    text = result.to_text()
    if args.series:
        text += "\n" + render_series(
            result.buckets,
            bound=result.bounds.precision_bound,
            bound_with_error=result.bounds.bound_with_error,
        )
    _emit(args, text, payload)
    return 0 if (args.policy == "identical") == result.second_attack_violates else 1


def cmd_faults(args: argparse.Namespace) -> int:
    spec = _scenario_of(args)
    base = FaultInjectionExperimentConfig(seed=args.seed, scenario=spec)
    if args.hours >= 24 and not args.compress:
        config = base
    elif args.compress:
        config = base.scaled(args.hours)
    else:
        config = FaultInjectionExperimentConfig(
            duration=round(args.hours * HOURS),
            seed=args.seed,
            injector=base.injector,
            scenario=spec,
        )
    registry = _metrics_registry(args)
    result = run_fault_injection_experiment(config, metrics=registry)
    if registry is not None:
        from repro.metrics import RunManifest
        from repro.parallel import config_fingerprint

        wall = registry.histograms.get("experiment.run_wall_s")
        events = registry.counters.get("experiment.events_dispatched")
        _write_metrics(args, registry, RunManifest(
            experiment="fault_injection",
            config_fingerprint=config_fingerprint("faults", config),
            seeds=[args.seed],
            sim_duration_ns=config.duration,
            wall_time_s=wall.sum if wall is not None else None,
            events_dispatched=events.value if events is not None else None,
            scenario=spec.name if spec else None,
            scenario_fingerprint=spec.fingerprint() if spec else None,
            verdict=result.verdict.status,
            verdict_detail=result.verdict.to_dict(),
            extra={"hours": args.hours, "compress": bool(args.compress)},
            **_bounds_manifest_fields(result.bounds),
        ))
    payload = {
        "hours": args.hours,
        "verdict": result.verdict.to_dict(),
        "bounded": result.bounded,
        "violations": result.violations,
        "avg_ns": result.distribution.mean,
        "std_ns": result.distribution.std,
        "min_ns": result.distribution.minimum,
        "max_ns": result.distribution.maximum,
        "injections": result.injections,
        "takeovers": result.takeovers,
        "tx_timeouts": result.tx_timeouts,
        "deadline_misses": result.deadline_misses,
    }
    text = result.to_text()
    if args.series:
        text += "\n" + render_series(
            result.buckets,
            bound=result.bounds.precision_bound,
            bound_with_error=result.bounds.bound_with_error,
        )
    if args.histogram:
        text += "\n" + render_histogram(result.distribution)
    if args.timeline:
        text += "\n" + render_timeline(result.timeline)
    _emit(args, text, payload)
    return 0 if result.bounded else 1


def cmd_baselines(args: argparse.Namespace) -> int:
    duration = round(args.minutes * MINUTES)
    spec = _scenario_of(args)
    results = [
        run_full_architecture(duration=duration, seed=args.seed, scenario=spec),
        run_client_only_baseline(duration=duration, seed=args.seed,
                                 scenario=spec),
        run_single_domain_baseline(
            duration=duration, seed=args.seed, gm_fails_at=duration // 2,
            scenario=spec,
        ),
    ]
    text = "\n\n".join(r.to_text() for r in results)
    payload = {
        r.label: {
            "max_precision_ns": r.max_precision,
            "final_gm_spread_ns": r.final_gm_spread,
        }
        for r in results
    }
    _emit(args, text, payload)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import write_experiment_bundle
    from repro.experiments.fault_injection import (
        FaultInjectionExperimentConfig,
        run_fault_injection_experiment,
    )

    config = FaultInjectionExperimentConfig(
        seed=args.seed, scenario=_scenario_of(args)
    )
    if args.hours < 24:
        config = config.scaled(args.hours)
    result = run_fault_injection_experiment(config)
    written = write_experiment_bundle(args.output, result)
    payload = {"output": args.output, "files": written,
               "bounded": result.bounded,
               "verdict": result.verdict.status}
    _emit(args, "wrote " + ", ".join(f"{k} ({v} rows)" for k, v in written.items()),
          payload)
    return 0 if result.bounded else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import load_plan, single_loss_plan
    from repro.experiments.chaos import (
        ChaosExperimentConfig,
        run_chaos_experiment,
    )
    from repro.monitoring import FAIL, PASS

    if args.plan and args.loss is not None:
        print("use --plan or --loss, not both", file=sys.stderr)
        return 2
    spec = _scenario_of(args)
    plan = None
    if args.plan:
        plan = load_plan(args.plan)
    elif args.loss is not None:
        plan = single_loss_plan(
            args.loss,
            start=round(args.loss_start * SECONDS),
            end=(round(args.loss_end * SECONDS)
                 if args.loss_end is not None else None),
        )
    config = ChaosExperimentConfig(
        duration=round(args.duration * SECONDS),
        seed=args.seed,
        scenario=spec,
        plan=plan,
        fidelity=args.fidelity,
    )
    registry = _metrics_registry(args)
    wall_start = time.perf_counter()
    result = run_chaos_experiment(config, metrics=registry)
    if registry is not None:
        from repro.metrics import RunManifest
        from repro.parallel import config_fingerprint

        events = registry.counters.get("experiment.events_dispatched")
        _write_metrics(args, registry, RunManifest(
            experiment="chaos",
            config_fingerprint=config_fingerprint("chaos", config),
            seeds=[args.seed],
            sim_duration_ns=config.duration,
            wall_time_s=time.perf_counter() - wall_start,
            events_dispatched=events.value if events is not None else None,
            scenario=spec.name if spec else None,
            scenario_fingerprint=spec.fingerprint() if spec else None,
            verdict=result.verdict.status,
            verdict_detail=result.verdict.to_dict(),
            extra={
                "plan": result.chaos_summary.get("plan"),
                "violations": [v.to_dict() for v in result.violations],
                **({"fidelity": args.fidelity,
                    "fastforward": result.fastforward}
                   if result.fastforward else {}),
            },
            **_bounds_manifest_fields(result.bounds),
        ))
    _emit(args, result.to_text(), result.to_dict())
    if result.verdict.status == FAIL:
        return 2
    return 0 if result.verdict.status == PASS else 1


def _design_spec(spec):
    """The spec whose fault budget the run is judged against.

    Runs without ``--scenario`` use the paper's mesh4 testbed, whose
    design point is the registered ``paper-mesh4`` spec.
    """
    if spec is not None:
        return spec
    from repro.scenarios import get_scenario

    return get_scenario("paper-mesh4")


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.chaos import (
        ChaosExperimentConfig,
        run_chaos_experiment,
    )
    from repro.monitoring import FAIL, PASS
    from repro.security.campaigns import (
        colluder_campaign,
        default_gm_names,
        load_campaign,
    )

    if (args.file is None) == (args.colluders is None):
        print("use exactly one of --file or --colluders", file=sys.stderr)
        return 2
    if args.colluders is not None and args.colluders < 1:
        print("--colluders must be >= 1", file=sys.stderr)
        return 2
    spec = _scenario_of(args)
    if args.file is not None:
        campaign = load_campaign(args.file)
    else:
        base = (spec.testbed_config(seed=args.seed)
                if spec is not None else TestbedConfig(seed=args.seed))
        gm_names = default_gm_names(
            base.n_devices,
            n_domains=spec.effective_domains if spec is not None else None,
            gm_placement=base.gm_placement,
        )
        campaign = colluder_campaign(
            args.colluders,
            gm_names,
            margin=args.margin,
            start=round(args.start * SECONDS),
            stop=(round(args.stop * SECONDS)
                  if args.stop is not None else None),
        )
    config = ChaosExperimentConfig(
        duration=round(args.duration * SECONDS),
        seed=args.seed,
        scenario=spec,
        campaign=campaign,
        fidelity=args.fidelity,
    )
    registry = _metrics_registry(args)
    wall_start = time.perf_counter()
    result = run_chaos_experiment(config, metrics=registry)
    design = _design_spec(spec)
    campaign_info = {
        "campaign": campaign.name,
        "stages": len(campaign.stages),
        "colluders": args.colluders,
        "design_f": design.f,
        "domains": design.effective_domains,
        "floor_m": 3 * design.f + 1,
    }
    if registry is not None:
        from repro.metrics import RunManifest
        from repro.parallel import config_fingerprint

        events = registry.counters.get("experiment.events_dispatched")
        _write_metrics(args, registry, RunManifest(
            experiment="campaign",
            config_fingerprint=config_fingerprint("campaign", config),
            seeds=[args.seed],
            sim_duration_ns=config.duration,
            wall_time_s=time.perf_counter() - wall_start,
            events_dispatched=events.value if events is not None else None,
            scenario=spec.name if spec else None,
            scenario_fingerprint=spec.fingerprint() if spec else None,
            verdict=result.verdict.status,
            verdict_detail=result.verdict.to_dict(),
            extra=dict(
                campaign_info,
                violations=[v.to_dict() for v in result.violations],
                **({"fidelity": args.fidelity,
                    "fastforward": result.fastforward}
                   if result.fastforward else {}),
            ),
            **_bounds_manifest_fields(result.bounds),
        ))
    payload = dict(result.to_dict())
    payload["campaign"] = campaign_info
    text = (
        f"adversary campaign {campaign.name!r}: {len(campaign.stages)} "
        f"stage(s) against design f={design.f} "
        f"(M={design.effective_domains} >= 3f+1={3 * design.f + 1})\n"
        + result.to_text()
    )
    _emit(args, text, payload)
    if result.verdict.status == FAIL:
        return 2
    return 0 if result.verdict.status == PASS else 1


def cmd_linkfail(args: argparse.Namespace) -> int:
    from repro.experiments.link_failure import (
        LinkFailureConfig,
        run_link_failure_experiment,
    )

    result = run_link_failure_experiment(
        LinkFailureConfig(
            seed=args.seed,
            trunk=tuple(args.trunk) if args.trunk else None,
        ),
        scenario=_scenario_of(args),
    )
    payload = {
        "trunk": list(result.config.trunk),
        "silenced": {vm: sorted(d) for vm, d in result.silenced.items() if d},
        "max_during_outage_ns": result.max_precision_during_outage,
        "violations": result.violations,
        "recovered": result.recovered,
        "verdict": result.verdict.to_dict(),
    }
    _emit(args, result.to_text(), payload)
    return 0 if result.violations == 0 and result.recovered else 1


def _bounds_manifest_fields(bounds) -> Dict[str, Any]:
    """``bounds``/``predicted_bounds`` manifest blocks from run bounds.

    The measured §III-A3 figures and the closed-form prediction travel as
    separate schema-v3 manifest fields, so the prediction is split out of
    :meth:`repro.measurement.bounds.ExperimentBounds.to_dict`'s nested form.
    """
    doc = bounds.to_dict()
    predicted = doc.pop("predicted", None)
    return {"bounds": doc, "predicted_bounds": predicted}


def _metrics_registry(args: argparse.Namespace):
    """A fresh registry when ``--metrics PATH`` was given, else ``None``."""
    if not getattr(args, "metrics", None):
        return None
    from repro.metrics import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(args: argparse.Namespace, registry, manifest=None) -> None:
    if registry is None:
        return
    from repro.metrics import write_metrics_csv, write_metrics_json

    if args.metrics.endswith(".csv"):
        write_metrics_csv(args.metrics, registry, manifest)
    else:
        write_metrics_json(args.metrics, registry, manifest)
    print(f"metrics written to {args.metrics}", file=sys.stderr)


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _executor_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """Map the shared ``--workers``/``--no-cache`` flags to study kwargs."""
    from repro.parallel import ResultsCache

    workers = getattr(args, "workers", 0)
    kwargs: Dict[str, Any] = {
        "executor": "process" if workers and workers > 1 else "serial",
        "max_workers": workers if workers and workers > 1 else None,
    }
    if not getattr(args, "no_cache", False):
        kwargs["cache"] = ResultsCache(args.cache_dir)
    return kwargs


def _cmd_sweep_envelope(args: argparse.Namespace) -> int:
    """The ``sweep envelope`` study: margin vs. the closed-form prediction.

    Unlike the other studies this one varies the *scenario* itself (one
    clean arm per registry shape, graded against its predicted envelope)
    plus an adversarial arm replaying the PR-6 colluder campaign, so it
    bypasses the generic single-axis runner table.
    """
    from repro.analysis.report import render_envelope
    from repro.experiments.sweeps import envelope_verdict, sweep_envelope
    from repro.sim.timebase import SECONDS

    registry = _metrics_registry(args)
    if args.sim_seconds is not None and args.duration is not None:
        print("use --sim-seconds or --duration, not both", file=sys.stderr)
        return 2
    duration_s = (args.sim_seconds if args.sim_seconds is not None
                  else args.duration)
    duration = round((duration_s if duration_s is not None else 120.0)
                     * SECONDS)
    kwargs: Dict[str, Any] = {}
    exec_kwargs = _executor_kwargs(args)
    if "cache" in exec_kwargs:
        kwargs["cache"] = exec_kwargs["cache"]
    # --fidelity full (the flag's global default) keeps the study's auto
    # tiering (adaptive at >= 64 devices, full below); --fidelity adaptive
    # forces adaptive everywhere.
    if args.fidelity == "adaptive":
        kwargs["fidelity"] = "adaptive"
    if getattr(args, "scenario", None):
        # A single named arm (the CI smoke path): no adversarial arm.
        kwargs["scenarios"] = (args.scenario,)
        kwargs["attack_check"] = False
    wall_start = time.perf_counter()
    rows = sweep_envelope(
        seed=args.seed, duration=duration, metrics=registry, **kwargs
    )
    verdict = envelope_verdict(rows)
    if registry is not None:
        from repro.metrics import RunManifest
        from repro.parallel import config_fingerprint

        events = registry.counters.get("experiment.events_dispatched")
        _write_metrics(args, registry, RunManifest(
            experiment="sweep:envelope",
            config_fingerprint=config_fingerprint(
                "sweep-cli", "envelope", args.seed, duration,
                getattr(args, "scenario", None),
            ),
            seeds=[args.seed],
            sim_duration_ns=duration,
            wall_time_s=time.perf_counter() - wall_start,
            events_dispatched=events.value if events is not None else None,
            verdict=verdict,
            verdict_detail={
                "rows": {
                    (f"{r.scenario}+{r.attack}" if r.attack else r.scenario):
                        r.verdict
                    for r in rows
                },
            },
            extra={
                "points": len(rows),
                "min_margin_ns": min(
                    (r.margin_ns for r in rows if not r.attack),
                    default=None,
                ),
                "cache_disabled": bool(
                    kwargs.get("cache") is not None
                    and kwargs["cache"].disabled
                ),
            },
        ))
    payload = {
        "study": "envelope",
        "verdict": verdict,
        "rows": [r.as_dict() for r in rows],
    }
    clean = [r for r in rows if not r.attack]
    text = render_envelope(rows)
    text += (
        f"\nenvelope verdict: {verdict} "
        f"({sum(r.within for r in clean)}/{len(clean)} clean arms within "
        "the predicted envelope"
        + (
            f"; adversarial arm {'flagged' if not rows[-1].within else 'MISSED'}"
            if any(r.attack for r in rows) else ""
        )
        + ")"
    )
    _emit(args, text, payload)
    return 0 if verdict != "FAIL" else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.study == "envelope":
        return _cmd_sweep_envelope(args)
    from repro.experiments.sweeps import (
        breaking_point,
        render_rows,
        sweep_aggregation,
        sweep_attack_budget,
        sweep_domain_count,
        sweep_fault_budget,
        sweep_hop_count,
        sweep_loss_rate,
        sweep_sync_interval,
        sweep_topology,
        sweep_validity_threshold,
    )
    from repro.monitoring import worst_status
    from repro.sim.timebase import SECONDS

    runners = {
        "domains": sweep_domain_count,
        "interval": sweep_sync_interval,
        "aggregation": sweep_aggregation,
        "threshold": sweep_validity_threshold,
        "topology": sweep_topology,
        "hopcount": sweep_hop_count,
        "faultbudget": sweep_fault_budget,
        "lossrate": sweep_loss_rate,
        "attackbudget": sweep_attack_budget,
    }
    spec = _scenario_of(args)
    registry = _metrics_registry(args)
    if args.sim_seconds is not None and args.duration is not None:
        print("use --sim-seconds or --duration, not both", file=sys.stderr)
        return 2
    duration_s = (args.sim_seconds if args.sim_seconds is not None
                  else args.duration)
    if duration_s is None:
        # The attackbudget FAIL needs minutes of differential-bias
        # integration (k=2 on the paper mesh breaks the bound at
        # t ≈ 800 s); the other canned studies measure steady state.
        duration_s = 900.0 if args.study == "attackbudget" else 120.0
    duration = round(duration_s * SECONDS)
    wall_start = time.perf_counter()
    exec_kwargs = _executor_kwargs(args)
    rows = runners[args.study](
        seed=args.seed, duration=duration, scenario=spec,
        metrics=registry, fidelity=args.fidelity, **exec_kwargs,
    )
    budget = None
    if args.study == "attackbudget":
        design = _design_spec(spec)
        budget = dict(
            breaking_point(rows),
            design_f=design.f,
            domains=design.effective_domains,
            floor_m=3 * design.f + 1,
        )
    if registry is not None:
        from repro.metrics import RunManifest
        from repro.parallel import config_fingerprint

        events = registry.counters.get("experiment.events_dispatched")
        _write_metrics(args, registry, RunManifest(
            experiment=f"sweep:{args.study}",
            config_fingerprint=config_fingerprint(
                "sweep-cli", args.study, args.seed, duration,
                spec.fingerprint() if spec else None,
            ),
            seeds=[args.seed],
            sim_duration_ns=duration,
            wall_time_s=time.perf_counter() - wall_start,
            events_dispatched=events.value if events is not None else None,
            scenario=spec.name if spec else None,
            scenario_fingerprint=spec.fingerprint() if spec else None,
            verdict=worst_status(r.verdict for r in rows),
            verdict_detail={
                "rows": {f"{r.parameter}={r.value}": r.verdict for r in rows},
            },
            extra=dict(
                (
                    {"points": len(rows)} if budget is None
                    else dict(
                        points=len(rows),
                        f_actual=budget["f_actual"],
                        first_fail_colluders=budget["first_fail"],
                        design_f=budget["design_f"],
                        domains=budget["domains"],
                        floor_m=budget["floor_m"],
                    )
                ),
                cache_disabled=bool(
                    exec_kwargs.get("cache") is not None
                    and exec_kwargs["cache"].disabled
                ),
                **({"fidelity": args.fidelity}
                   if args.fidelity != "full" else {}),
            ),
        ))
    payload = {
        "study": args.study,
        "verdict": worst_status(r.verdict for r in rows),
        "rows": [r.as_dict() for r in rows],
    }
    text = render_rows(rows)
    if budget is not None:
        payload["breaking_point"] = budget
        held = (budget["f_actual"] is not None
                and budget["f_actual"] >= budget["design_f"])
        text += (
            f"\nbreaking point: f_actual={budget['f_actual']} vs design "
            f"f={budget['design_f']} (M={budget['domains']} >= "
            f"3f+1={budget['floor_m']}), first FAIL at "
            f"k={budget['first_fail']} colluders -> "
            f"{'floor holds' if held else 'FLOOR VIOLATED'}"
        )
    _emit(args, text, payload)
    return 0


def _progress_printer():
    """Streaming per-job progress lines on stderr for study runs."""

    def emit(event: Dict[str, Any]) -> None:
        info = event.get("info") or {}
        verdict = f" verdict={info['verdict']}" if "verdict" in info else ""
        wall = (f" {event['wall_s']:.1f}s"
                if event.get("wall_s") is not None else "")
        error = f" error={event['error']}" if event.get("error") else ""
        print(
            f"[{event['index']}/{event['total']}] "
            f"{event['status']:>6} {event['label']} "
            f"({event['source']}){verdict}{wall}{error}",
            file=sys.stderr, flush=True,
        )

    return emit


def _fault_injector(args):
    """Build a FaultInjector from ``--fault-plan`` (None when absent)."""
    plan_path = getattr(args, "fault_plan", None)
    if not plan_path:
        return None
    from repro.resilience import FaultInjector, load_fault_plan

    return FaultInjector(load_fault_plan(plan_path),
                         salt=getattr(args, "fault_salt", 0))


def _retry_policy(args):
    """Build a RetryPolicy from ``--retries``/``--retry-backoff``."""
    retries = getattr(args, "retries", None)
    backoff = getattr(args, "retry_backoff", None)
    if retries is None and backoff is None:
        return None
    from repro.resilience import RetryPolicy

    return RetryPolicy(
        max_attempts=(retries if retries is not None else 1) + 1,
        backoff_s=backoff or 0.0,
        jitter=0.1 if backoff else 0.0,
    )


def cmd_study(args: argparse.Namespace) -> int:
    from repro.resilience import InjectedCrash
    from repro.studies import (
        LedgerCorruptError,
        StudyInterrupted,
        StudyLedger,
        run_study,
    )
    from repro.studies.specs import (
        load_spec,
        plan_from_spec,
        render_run,
        run_payload,
        spec_name,
        validate_spec,
    )

    if args.action == "status":
        try:
            ledger = StudyLedger.load(args.ledger)
        except LedgerCorruptError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        _emit(args, ledger.describe(), ledger.to_dict())
        return 0 if ledger.complete else 1

    faults = _fault_injector(args)
    salvaged = False
    if args.action == "run":
        spec = load_spec(args.spec)
        base = (args.spec[:-len(".json")]
                if args.spec.endswith(".json") else args.spec)
        ledger_path = args.ledger or base + ".ledger.json"
        ledger = None
    else:  # resume
        ledger_path = args.ledger
        ledger = None
        try:
            loaded = StudyLedger.load(args.ledger, faults=faults)
        except LedgerCorruptError as exc:
            if not getattr(args, "salvage", False):
                print(str(exc), file=sys.stderr)
                return 2
            from repro.resilience.salvage import (
                LedgerSalvageError,
                rebuild_ledger,
                salvage_study,
            )

            try:
                recovered = salvage_study(args.ledger)
                spec = validate_spec(recovered["spec"])
                plan = plan_from_spec(spec)
                ledger = rebuild_ledger(
                    args.ledger,
                    plan.study,
                    spec=spec,
                    cache_dir=recovered.get("cache_dir"),
                    recovered_fingerprint=recovered.get("fingerprint"),
                )
            except (LedgerSalvageError, ValueError) as salvage_exc:
                print(f"salvage failed: {salvage_exc}", file=sys.stderr)
                return 2
            loaded = ledger
            salvaged = True
            print(
                f"salvaged corrupt ledger (backup at {args.ledger}.corrupt); "
                "finished jobs will be restored from the result store",
                file=sys.stderr,
            )
        if loaded.spec is None:
            print(f"ledger {args.ledger!r} carries no study spec; "
                  "re-run 'study run' against the original spec file",
                  file=sys.stderr)
            return 2
        spec = validate_spec(loaded.spec)
        if loaded.cache_dir and args.cache_dir == ".repro_cache":
            args.cache_dir = loaded.cache_dir
    plan = plan_from_spec(spec)
    if ledger is None:
        try:
            ledger = StudyLedger.for_study(
                plan.study, path=ledger_path, spec=spec,
                cache_dir=args.cache_dir
            )
        except LedgerCorruptError as exc:
            # 'study run' pointed at a ledger a previous faulted run tore
            # mid-flush: the error already names the salvage command.
            print(str(exc), file=sys.stderr)
            return 2
    exec_kwargs = _executor_kwargs(args)
    cache = exec_kwargs.get("cache")
    registry = _metrics_registry(args)
    if args.fail_fast:
        on_error = "raise"
    elif getattr(args, "quarantine", False):
        on_error = "quarantine"
    else:
        on_error = "continue"
    wall_start = time.perf_counter()
    try:
        run = run_study(
            plan.study,
            metrics=registry,
            ledger=ledger,
            progress=_progress_printer(),
            max_jobs=args.max_jobs,
            on_error=on_error,
            faults=faults,
            retry_policy=_retry_policy(args),
            **exec_kwargs,
        )
    except StudyInterrupted as exc:
        run = exc.run
    except InjectedCrash as exc:
        # A --fault-plan simulated the process dying. The ledger on disk
        # is the resumable state a real kill would leave behind.
        print(f"study killed by injected fault: {exc}", file=sys.stderr)
        print(f"resume with: study resume {ledger_path}", file=sys.stderr)
        return 4
    if registry is not None:
        from repro.metrics import RunManifest

        events = registry.counters.get("experiment.events_dispatched")
        _write_metrics(args, registry, RunManifest(
            experiment=f"study:{spec_name(spec)}",
            config_fingerprint=plan.study.fingerprint(),
            seeds=sorted({j.seed for j in plan.study.jobs
                          if j.seed is not None}),
            wall_time_s=time.perf_counter() - wall_start,
            events_dispatched=events.value if events is not None else None,
            extra={
                "ledger": ledger_path,
                "executed": len(run.executed),
                "cached": len(run.cached),
                "failed": len(run.failed),
                "quarantined": len(run.quarantined),
                "retries": run.retries,
                "backoff_s": run.backoff_s,
                "pool_degraded": run.pool_degraded,
                "interrupted": run.interrupted,
                "cache_disabled": bool(cache is not None and cache.disabled),
                "cache_quarantined": int(getattr(cache, "quarantined", 0)
                                         if cache is not None else 0),
                "fault_plan": (faults.plan.name
                               if faults is not None else None),
                "fault_fires": (faults.fire_count
                                if faults is not None else 0),
                "salvaged": salvaged,
            },
        ))
    payload = run_payload(spec, plan, run)
    payload["ledger"] = ledger_path
    payload["cache_quarantined"] = int(getattr(cache, "quarantined", 0)
                                       if cache is not None else 0)
    if faults is not None:
        payload["faults"] = faults.summary()
    if salvaged:
        payload["salvaged"] = True
    _emit(args, render_run(spec, plan, run), payload)
    if run.failed or run.quarantined:
        return 1
    return 3 if not run.complete else 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.parallel import cache_stats, prune_cache, verify_store

    if args.action == "verify":
        summary = verify_store(args.cache_dir)
        _emit(
            args,
            f"verified {summary['scanned']} entries at {args.cache_dir!r}: "
            f"{summary['ok']} ok, {summary['legacy']} legacy (no checksum), "
            f"{summary['quarantined']} quarantined",
            dict(summary, root=args.cache_dir),
        )
        return 1 if summary["quarantined"] else 0

    if args.action == "stats":
        stats = cache_stats(args.cache_dir)
        lines = [
            f"job-result store at {stats['root']!r}: "
            f"{stats['entries']} entries, {stats['bytes']} bytes"
            + (f", {stats['quarantined']} quarantined"
               if stats.get("quarantined") else ""),
        ]
        last = stats.get("last_run")
        if last:
            lines.append(
                f"last run: {last.get('hits', 0)} hits / "
                f"{last.get('misses', 0)} misses "
                f"(hit rate {last.get('hit_rate', 0.0):.0%}"
                + (", DISABLED mid-run" if last.get("disabled") else "")
                + ")"
            )
        else:
            lines.append("last run: no stats recorded yet")
        _emit(args, "\n".join(lines), stats)
        return 0
    # action == "prune"
    if args.older_than is None and args.max_bytes is None:
        print("prune needs --older-than DAYS and/or --max-bytes N",
              file=sys.stderr)
        return 2
    summary = prune_cache(
        args.cache_dir,
        older_than_s=(args.older_than * 86400.0
                      if args.older_than is not None else None),
        max_bytes=args.max_bytes,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    _emit(
        args,
        f"{verb} {summary['removed']}/{summary['scanned']} entries "
        f"({summary['bytes_removed']} bytes), "
        f"{summary['bytes_kept']} bytes kept",
        dict(summary, dry_run=args.dry_run),
    )
    return 0


def cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.experiments.fault_injection import (
        FaultInjectionExperimentConfig as _FIConfig,
    )
    from repro.experiments.montecarlo import run_monte_carlo

    spec = _scenario_of(args)
    seeds = list(range(args.base_seed, args.base_seed + args.runs))
    registry = _metrics_registry(args)
    study = run_monte_carlo(seeds=seeds, hours=args.hours,
                            base_config=(
                                _FIConfig(scenario=spec) if spec else None
                            ),
                            metrics=registry, **_executor_kwargs(args))
    _write_metrics(args, registry, study.manifest)
    payload = {
        "seeds": seeds,
        "bounded_rate": study.bounded_rate,
        "verdict": study.verdict,
        "mean_of_means_ns": study.mean_of_means(),
        "worst_max_ns": study.worst_max(),
        "outcomes": [
            {
                "seed": o.seed,
                "violations": o.violations,
                "mean_ns": o.mean_ns,
                "max_ns": o.max_ns,
                "verdict": o.verdict,
            }
            for o in study.outcomes
        ],
    }
    _emit(args, study.to_text(), payload)
    return 0 if study.bounded_rate == 1.0 else 1


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios, resolve_scenario

    if args.action == "list":
        specs = list_scenarios()
        lines = [
            f"{spec.name:<12} {spec.topology:<5} N={spec.n_devices} "
            f"M={spec.effective_domains} f={spec.f} "
            f"fp={spec.fingerprint()[:12]}  {spec.description}"
            for spec in specs
        ]
        payload = {
            spec.name: {
                "topology": spec.topology,
                "n_devices": spec.n_devices,
                "n_domains": spec.effective_domains,
                "f": spec.f,
                "fingerprint": spec.fingerprint(),
                "description": spec.description,
            }
            for spec in specs
        }
        _emit(args, "\n".join(lines), payload)
        return 0
    # action == "show"
    spec = resolve_scenario(args.name)
    doc = spec.to_dict()
    doc["fingerprint"] = spec.fingerprint()
    try:
        doc["trunks"] = [list(pair) for pair in spec.trunk_pairs()]
    except ValueError:
        pass  # seed-dependent trunks (random_geometric) need a built topology
    _emit(args, json.dumps(doc, indent=2, sort_keys=True), doc)
    return 0


def cmd_vulnerabilities(args: argparse.Namespace) -> int:
    if args.compare:
        a, b = args.compare
        shared = shared_vulnerabilities(a, b)
        text = (
            f"{a}: {vulnerabilities_of(a)}\n"
            f"{b}: {vulnerabilities_of(b)}\n"
            f"shared: {shared or 'none'}"
        )
        payload = {
            a: vulnerabilities_of(a),
            b: vulnerabilities_of(b),
            "shared": shared,
        }
    elif args.kernel:
        cves = vulnerabilities_of(args.kernel)
        text = f"{args.kernel}: {cves or 'no known CVEs in database'}"
        payload = {args.kernel: cves}
    else:
        text = "\n".join(
            f"{cve}: {v.description}" for cve, v in sorted(VULNERABILITY_DB.items())
        )
        payload = {
            cve: v.description for cve, v in VULNERABILITY_DB.items()
        }
    _emit(args, text, payload)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Reproduction toolkit for 'IEEE 802.1AS Multi-Domain "
        "Aggregation for Virtualized Distributed Real-Time Systems' "
        "(DSN-S 2023).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scenario_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scenario", metavar="NAME|PATH",
                       help="run on a registered scenario or a JSON spec "
                            "file instead of the paper's mesh4 testbed "
                            "(see 'repro-sim scenarios list')")

    def add_fidelity_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fidelity", choices=["full", "adaptive"],
                       default="full",
                       help="simulation tier: 'full' replays every event "
                            "(byte-identical, the default); 'adaptive' "
                            "fast-forwards provably quiescent stretches "
                            "under a documented tolerance (see "
                            "EXPERIMENTS.md, 'Scaling and fidelity tiers')")

    p = sub.add_parser("survey", help="latency survey + §III-A3 bound derivation")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--warmup", type=float, default=30.0, help="seconds")
    add_scenario_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_survey)

    p = sub.add_parser("cyber", help="§III-B cyber-resilience experiment")
    p.add_argument("--policy", choices=["identical", "diverse"],
                   default="identical")
    p.add_argument("--scale", type=float, default=0.2,
                   help="timeline compression (1.0 = the paper's hour)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--series", action="store_true")
    add_scenario_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_cyber)

    p = sub.add_parser("faults", help="§III-C fault injection experiment")
    p.add_argument("--hours", type=float, default=0.5)
    p.add_argument("--compress", action="store_true",
                   help="compress the 24h schedule into --hours")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--series", action="store_true")
    p.add_argument("--histogram", action="store_true")
    p.add_argument("--timeline", action="store_true")
    p.add_argument("--metrics", metavar="PATH",
                   help="record run metrics and write them to PATH "
                        "(.csv → CSV, anything else → JSON)")
    add_scenario_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("baselines", help="architecture vs baselines")
    p.add_argument("--minutes", type=float, default=8.0)
    p.add_argument("--seed", type=int, default=1)
    add_scenario_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_baselines)

    p = sub.add_parser("export", help="run fault injection and dump CSV bundle")
    p.add_argument("output", help="output directory")
    p.add_argument("--hours", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=1)
    add_scenario_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("chaos", help="chaos plan under the invariant monitor")
    p.add_argument("--plan", metavar="PATH",
                   help="declarative chaos plan JSON "
                        "(see repro.chaos.dump_plan)")
    p.add_argument("--loss", type=float, default=None, metavar="P",
                   help="shortcut: impair every trunk with Bernoulli "
                        "loss rate P instead of loading a plan")
    p.add_argument("--loss-start", type=float, default=60.0,
                   help="seconds before the --loss impairment attaches "
                        "(default: %(default)s)")
    p.add_argument("--loss-end", type=float, default=None,
                   help="seconds at which the --loss impairment clears "
                        "(default: never)")
    p.add_argument("--duration", type=float, default=480.0,
                   help="seconds of simulated time (default: %(default)s)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--metrics", metavar="PATH",
                   help="record run metrics and write them to PATH "
                        "(.csv → CSV, anything else → JSON)")
    add_scenario_flag(p)
    add_fidelity_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("campaign",
                       help="adversary campaign under the invariant monitor")
    p.add_argument("--file", metavar="PATH", default=None,
                   help="campaign JSON (see repro.security.dump_campaign)")
    p.add_argument("--colluders", type=_nonnegative_int, default=None,
                   metavar="K",
                   help="shortcut: K colluding in-window grandmasters "
                        "instead of loading a campaign file")
    p.add_argument("--margin", type=float, default=0.8,
                   help="colluder shift as a fraction of the validity "
                        "window (default: %(default)s)")
    p.add_argument("--start", type=float, default=60.0,
                   help="seconds before the colluders turn (default: "
                        "%(default)s)")
    p.add_argument("--stop", type=float, default=None,
                   help="seconds at which the colluders stop (default: "
                        "never)")
    p.add_argument("--duration", type=float, default=480.0,
                   help="seconds of simulated time (default: %(default)s)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--metrics", metavar="PATH",
                   help="record run metrics and write them to PATH "
                        "(.csv → CSV, anything else → JSON)")
    add_scenario_flag(p)
    add_fidelity_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("linkfail", help="trunk-failure experiment")
    p.add_argument("--trunk", nargs=2, default=None,
                   metavar=("A", "B"),
                   help="victim trunk (default: first trunk not touching "
                        "the measurement switch — sw1 sw3 on the mesh)")
    p.add_argument("--seed", type=int, default=1)
    add_scenario_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_linkfail)

    def add_executor_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--workers", type=_nonnegative_int, default=0,
                       metavar="N",
                       help="shard arms across N worker processes "
                            "(0/1 = serial, the default)")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute every arm instead of reusing "
                            "cached per-arm results")
        p.add_argument("--cache-dir", default=".repro_cache",
                       help="results cache location "
                            "(default: %(default)s)")
        p.add_argument("--metrics", metavar="PATH",
                       help="record run metrics and write them to PATH "
                            "(.csv → CSV, anything else → JSON)")

    def add_resilience_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="inject deterministic harness faults from a "
                            "fault-plan JSON (see repro.resilience; "
                            "examples/faultplans/)")
        p.add_argument("--fault-salt", type=_nonnegative_int, default=0,
                       metavar="N",
                       help="salt mixed into the fault plan's RNG streams "
                            "(vary per resume round for fresh but "
                            "deterministic draws)")
        p.add_argument("--retries", type=_nonnegative_int, default=None,
                       metavar="N",
                       help="extra attempts per job after a crash, timeout, "
                            "or (serial) task exception")
        p.add_argument("--retry-backoff", type=float, default=None,
                       metavar="S",
                       help="base seconds of exponential backoff between "
                            "attempts (deterministic seeded jitter)")
        p.add_argument("--quarantine", action="store_true",
                       help="park jobs that fail every attempt as "
                            "'quarantined' in the ledger and finish the "
                            "study with a partial verdict")

    p = sub.add_parser("sweep", help="design-space parameter sweeps")
    p.add_argument("study", choices=["domains", "interval", "aggregation",
                                     "threshold", "topology", "hopcount",
                                     "faultbudget", "lossrate",
                                     "attackbudget", "envelope"])
    p.add_argument("--seed", type=int, default=9)
    p.add_argument("--duration", type=float, default=None,
                   help="seconds of simulated time per point (default: "
                        "900 for attackbudget — the differential bias "
                        "that breaks the bound integrates for minutes — "
                        "120 otherwise; for 'envelope' this sets the clean "
                        "arms only, the adversarial arm keeps its 900 s)")
    p.add_argument("--sim-seconds", type=float, default=None, metavar="S",
                   help="override the per-arm simulated duration (same as "
                        "--duration; the 900 s attackbudget default is "
                        "intractable on large topologies — e.g. "
                        "'sweep attackbudget --sim-seconds 60')")
    add_scenario_flag(p)
    add_fidelity_flag(p)
    add_executor_flags(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("montecarlo", help="multi-seed fault-injection study")
    p.add_argument("--runs", type=int, default=5)
    p.add_argument("--base-seed", type=int, default=100)
    p.add_argument("--hours", type=float, default=0.1,
                   help="compressed simulated hours per run")
    add_scenario_flag(p)
    add_executor_flags(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_montecarlo)

    p = sub.add_parser("study",
                       help="resumable spec-driven studies "
                            "(submit → schedule → collect pipeline)")
    study_sub = p.add_subparsers(dest="action", required=True)
    pr = study_sub.add_parser(
        "run", help="run a study spec JSON through the pipeline")
    pr.add_argument("spec", help="study spec JSON "
                                 "(see repro.studies.specs)")
    pr.add_argument("--ledger", metavar="PATH", default=None,
                    help="ledger journal location (default: SPEC with "
                         ".ledger.json suffix)")
    pr.add_argument("--max-jobs", type=_nonnegative_int, default=None,
                    metavar="N",
                    help="stop after N fresh jobs (cache hits are free); "
                         "the run exits 3 and resumes from the ledger")
    pr.add_argument("--fail-fast", action="store_true",
                    help="abort on the first failed job instead of "
                         "marking it failed and continuing")
    add_resilience_flags(pr)
    add_executor_flags(pr)
    pr.add_argument("--json", action="store_true")
    pr.set_defaults(func=cmd_study)
    pst = study_sub.add_parser("status", help="print a study ledger")
    pst.add_argument("ledger", help="ledger JSON written by 'study run'")
    pst.add_argument("--json", action="store_true")
    pst.set_defaults(func=cmd_study)
    prs = study_sub.add_parser(
        "resume", help="re-submit only the unfinished jobs of a ledger")
    prs.add_argument("ledger", help="ledger JSON written by 'study run'")
    prs.add_argument("--max-jobs", type=_nonnegative_int, default=None,
                     metavar="N",
                     help="stop again after N fresh jobs")
    prs.add_argument("--fail-fast", action="store_true",
                     help="abort on the first failed job")
    prs.add_argument("--salvage", action="store_true",
                     help="rebuild a torn/corrupt ledger from its embedded "
                          "spec (finished jobs come back from the result "
                          "store); the corrupt file is kept as "
                          "LEDGER.corrupt")
    add_resilience_flags(prs)
    add_executor_flags(prs)
    prs.add_argument("--json", action="store_true")
    prs.set_defaults(func=cmd_study)

    p = sub.add_parser("cache", help="job-result store maintenance")
    cache_sub = p.add_subparsers(dest="action", required=True)
    pcs = cache_sub.add_parser("stats", help="entry/byte counts and the "
                                             "last run's hit rate")
    pcs.add_argument("--cache-dir", default=".repro_cache",
                     help="store location (default: %(default)s)")
    pcs.add_argument("--json", action="store_true")
    pcs.set_defaults(func=cmd_cache)
    pcv = cache_sub.add_parser(
        "verify", help="checksum-sweep the store; quarantine corrupt "
                       "entries (exit 1 if any)")
    pcv.add_argument("--cache-dir", default=".repro_cache",
                     help="store location (default: %(default)s)")
    pcv.add_argument("--json", action="store_true")
    pcv.set_defaults(func=cmd_cache)
    pcp = cache_sub.add_parser("prune", help="garbage-collect the store")
    pcp.add_argument("--cache-dir", default=".repro_cache",
                     help="store location (default: %(default)s)")
    pcp.add_argument("--older-than", type=float, default=None,
                     metavar="DAYS",
                     help="remove entries older than DAYS")
    pcp.add_argument("--max-bytes", type=int, default=None, metavar="N",
                     help="evict oldest-first until the store fits N bytes")
    pcp.add_argument("--dry-run", action="store_true",
                     help="report what would be removed without removing")
    pcp.add_argument("--json", action="store_true")
    pcp.set_defaults(func=cmd_cache)

    p = sub.add_parser("scenarios", help="named scenario registry")
    scen_sub = p.add_subparsers(dest="action", required=True)
    pl = scen_sub.add_parser("list", help="list registered scenarios")
    pl.add_argument("--json", action="store_true")
    pl.set_defaults(func=cmd_scenarios)
    ps = scen_sub.add_parser("show", help="dump one scenario as JSON")
    ps.add_argument("name", help="registered name or path to a spec file")
    ps.add_argument("--json", action="store_true")
    ps.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("vulnerabilities", help="kernel/CVE database queries")
    p.add_argument("--kernel", help="list CVEs affecting one kernel")
    p.add_argument("--compare", nargs=2, metavar=("A", "B"),
                   help="shared CVEs between two kernels")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_vulnerabilities)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

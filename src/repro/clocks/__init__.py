"""Clock models.

Every physical clock in the testbed is an :class:`~repro.clocks.oscillator.Oscillator`
(a free-running frequency source with a constant per-device offset plus a
bounded random-walk wander, capped at the paper's r_max = 5 ppm) driving a
:class:`~repro.clocks.hardware_clock.HardwareClock` (the NIC PHC: a counter
that software can step and whose frequency software can trim, exactly the
interface LinuxPTP's servo uses via ``clock_adjtime``).

The dependent clock's ``CLOCK_SYNCTIME`` is *not* a hardware clock: it is a
parameter page (:class:`~repro.clocks.synctime.SyncTimeParams`) published
through the hypervisor's STSHMEM that lets any co-located VM convert a raw
local timebase reading into synchronized time, mirroring the virtual-PCI
design of Ruh et al. (IEEE Access 2021).
"""

from repro.clocks.hardware_clock import HardwareClock
from repro.clocks.oscillator import Oscillator, OscillatorModel
from repro.clocks.synctime import SyncTimeClock, SyncTimeParams

__all__ = [
    "Oscillator",
    "OscillatorModel",
    "HardwareClock",
    "SyncTimeClock",
    "SyncTimeParams",
]

"""Adjustable hardware clock (PTP hardware clock, PHC).

This models the NIC's internal clock as LinuxPTP sees it through
``clock_gettime``/``clock_adjtime``: a counter driven by the free-running
oscillator, to which software can apply

* a frequency trim (``adjust_frequency``, ppb — the servo output),
* a one-shot step (``step``, ns — the servo's initial jump), and

while the hardware keeps timestamping rx/tx events with this disciplined
time. The conversion from oscillator ticks is piecewise linear: we record
(oscillator reading, clock value, trim) at each adjustment and extrapolate.

Reading the clock is the hottest operation in the simulator, and many
components read the same PHC within one simulated instant (ingress
timestamp, launch-time check, servo sample). Between events nothing moves,
so ``time()`` memoizes its result per value of the simulator's ``now`` and
invalidates on ``step``/``adjust_frequency`` — repeated reads at the same
instant skip the float rebase math entirely.
"""

from __future__ import annotations

from repro.clocks.oscillator import Oscillator
from repro.sim.timebase import from_ppb, to_ppb


class HardwareClock:
    """A steppable, frequency-trimmable clock on top of an oscillator."""

    #: LinuxPTP default: |trim| is capped by the driver (i210: 62.5 ppm is
    #: generous; we keep a conservative cap far above any servo demand).
    MAX_TRIM_PPB = 1_000_000.0

    def __init__(self, oscillator: Oscillator, initial: int = 0, name: str = "phc") -> None:
        self.oscillator = oscillator
        self.name = name
        self._anchor_osc = oscillator.read()
        self._anchor_value = float(initial)
        self._trim = 0.0  # dimensionless fraction applied to oscillator ticks
        self._factor = 1.0  # cached 1.0 + trim
        self.steps = 0
        self.frequency_adjustments = 0
        self._cache_now: object = None  # sim.now the cached reading is for
        self._cache_value = 0
        # time() runs on every timestamp; resolve the chain once.
        self._sim = oscillator.sim
        self._osc_advance = oscillator._advance

    # ------------------------------------------------------------------
    # POSIX-ish interface used by the protocol stack and servo
    # ------------------------------------------------------------------
    def time(self) -> int:
        """Current clock reading in ns (``clock_gettime``)."""
        now = self._sim.now
        if now == self._cache_now:
            return self._cache_value
        # Inline of oscillator.read()'s constant-rate segment (the common
        # case between wander boundaries — see Oscillator._advance); the
        # boundary-crossing slow path stays a call.
        osc = self.oscillator
        last = osc._last_true
        if now != last:
            if now < osc._next_boundary:
                osc._elapsed += (now - last) * (1.0 + osc._rate)
                osc._last_true = now
            else:
                self._osc_advance()
        value = round(
            self._anchor_value + (osc._elapsed - self._anchor_osc) * self._factor
        )
        self._cache_now = now
        self._cache_value = value
        return value

    def step(self, delta: int) -> None:
        """Jump the clock by ``delta`` ns (``clock_settime`` relative)."""
        self._rebase()
        self._anchor_value += delta
        self.steps += 1
        self._cache_now = None

    def adjust_frequency(self, ppb: float) -> None:
        """Set the frequency trim in parts-per-billion (``ADJ_FREQUENCY``).

        The trim *replaces* the previous trim (kernel semantics), it does not
        accumulate.
        """
        ppb = max(-self.MAX_TRIM_PPB, min(self.MAX_TRIM_PPB, ppb))
        self._rebase()
        self._trim = from_ppb(ppb)
        self._factor = 1.0 + self._trim
        self.frequency_adjustments += 1
        self._cache_now = None

    @property
    def frequency_ppb(self) -> float:
        """Currently applied trim in ppb."""
        return to_ppb(self._trim)

    # ------------------------------------------------------------------
    def _value_now(self) -> float:
        osc = self.oscillator.read()
        return self._anchor_value + (osc - self._anchor_osc) * (1.0 + self._trim)

    def _rebase(self) -> None:
        """Fold elapsed time into the anchor before changing parameters."""
        osc = self.oscillator.read()
        self._anchor_value += (osc - self._anchor_osc) * (1.0 + self._trim)
        self._anchor_osc = osc

    def __repr__(self) -> str:
        return f"HardwareClock({self.name!r}, trim={self.frequency_ppb:+.1f} ppb)"

"""Free-running oscillator model.

An oscillator converts simulated (true) time into local elapsed time. Its
instantaneous rate error is::

    rate(t) = base_offset + wander(t)          # dimensionless fraction

where ``base_offset`` is a per-device constant drawn once (manufacturing
tolerance) and ``wander`` is a bounded random walk updated lazily on every
read (thermal/aging noise). The total |rate error| is clamped to ``max_rate``
— the paper's r_max = 5 ppm bound from IEEE 802.1AS — so the drift-offset
term Γ = 2 · r_max · S of the precision bound is honoured by construction.

The model integrates rate error piecewise between reads, so reading the
oscillator is O(1) and independent of how often anyone else reads it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.kernel import Simulator
from repro.sim.timebase import MILLISECONDS, from_ppm


@dataclass(frozen=True)
class OscillatorModel:
    """Stochastic parameters of an oscillator population.

    Attributes
    ----------
    max_rate_ppm:
        Hard bound on |rate error|; 5 ppm per IEEE 802.1AS-2020 B.1.1.
    base_sigma_ppm:
        Std-dev of the constant per-device frequency offset.
    wander_step_ppm:
        Std-dev of each random-walk wander increment.
    wander_interval:
        Nominal true-time spacing of wander increments, ns.
    """

    max_rate_ppm: float = 5.0
    base_sigma_ppm: float = 2.0
    wander_step_ppm: float = 0.006
    wander_interval: int = 100 * MILLISECONDS


class Oscillator:
    """A drifting local timebase.

    ``read()`` returns the oscillator's elapsed local time in nanoseconds
    (float internally; integer at the HW-clock boundary). The simulator's
    ``now`` is the hidden true time that no component may read directly —
    only through some oscillator.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        model: OscillatorModel = OscillatorModel(),
        name: str = "osc",
    ) -> None:
        self.sim = sim
        self.rng = rng
        self.model = model
        self.name = name
        max_frac = from_ppm(model.max_rate_ppm)
        base = rng.gauss(0.0, from_ppm(model.base_sigma_ppm))
        # Leave head-room for wander so base + wander stays clampable.
        self._base = max(-0.8 * max_frac, min(0.8 * max_frac, base))
        self._wander = 0.0
        self._last_true = sim.now
        self._elapsed = 0.0
        self._rate = self._clamped_rate()  # cached; refreshed on wander steps
        # _advance() runs on every clock read; precompute the model-derived
        # constants and bind the RNG method once instead of per call.
        self._step_sigma = from_ppm(model.wander_step_ppm)
        self._interval = model.wander_interval
        self._bound = max_frac
        self._gauss = rng.gauss
        # Next wander boundary strictly after _last_true, so the common
        # within-segment read is a single comparison. With wander disabled
        # there is no boundary at all.
        if self._step_sigma == 0.0:
            self._next_boundary: float = float("inf")
        else:
            interval = self._interval
            self._next_boundary = (sim.now // interval + 1) * interval

    # ------------------------------------------------------------------
    def rate_error(self) -> float:
        """Current dimensionless rate error (advances wander lazily)."""
        self._advance()
        return self._rate

    def read(self) -> float:
        """Local elapsed time in ns as of the simulator's current instant."""
        self._advance()
        return self._elapsed

    # ------------------------------------------------------------------
    def _clamped_rate(self) -> float:
        max_frac = from_ppm(self.model.max_rate_ppm)
        return max(-max_frac, min(max_frac, self._base + self._wander))

    def _advance(self) -> None:
        """Integrate elapsed local time up to the simulator's now.

        Wander increments are applied at ``wander_interval`` boundaries of
        true time; between increments the rate is constant, so integration is
        exact piecewise-linear accumulation. The clamped rate is cached and
        only refreshed when the wander steps — clock reads are the hottest
        operation in the whole simulator.
        """
        now = self.sim.now
        last = self._last_true
        if now == last:
            return
        # Common case in a busy simulation: the next wander boundary (cached
        # as an invariant: smallest boundary strictly after _last_true) is
        # still ahead, so the whole span is one constant-rate segment. With
        # wander disabled the boundary is +inf and this is the only path.
        if now < self._next_boundary:
            self._elapsed += (now - last) * (1.0 + self._rate)
            self._last_true = now
            return
        step_sigma = self._step_sigma
        interval = self._interval
        bound = self._bound
        gauss = self._gauss
        t = last
        while t < now:
            # Next wander boundary strictly after t.
            boundary = ((t // interval) + 1) * interval
            segment_end = boundary if boundary < now else now
            self._elapsed += (segment_end - t) * (1.0 + self._rate)
            t = segment_end
            if t == boundary:
                self._wander += gauss(0.0, step_sigma)
                # Keep the walk itself bounded so it cannot saturate forever.
                self._wander = max(-bound, min(bound, self._wander))
                self._rate = self._clamped_rate()
        self._last_true = now
        self._next_boundary = (now // interval + 1) * interval

    def __repr__(self) -> str:
        return (
            f"Oscillator({self.name!r}, base={self._base * 1e6:+.3f} ppm, "
            f"wander={self._wander * 1e6:+.4f} ppm)"
        )

"""The dependent clock: ``CLOCK_SYNCTIME`` parameter page.

In the paper's architecture the clock synchronization VM does not export a
*clock device* to its co-located VMs; it exports *clock parameters* through
the hypervisor's STSHMEM page. Any VM on the node converts a raw reading of
its (hypervisor-mediated, node-global) timebase into synchronized time::

    synctime(raw) = offset + ratio * (raw - base)

``phc2sys`` in the active clock synchronization VM refreshes (base, offset,
ratio) periodically from the NIC's disciplined PHC. A stale page keeps
*working* — co-located VMs extrapolate with the last ratio — it just slowly
degrades, which is exactly why the hypervisor monitor only needs to detect
staleness, not value corruption, under the fail-silent hypothesis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.oscillator import Oscillator


@dataclass(frozen=True)
class SyncTimeParams:
    """One published parameter tuple (a snapshot of the STSHMEM page).

    Attributes
    ----------
    base:
        Raw node-timebase reading at publication, ns.
    offset:
        Synchronized time corresponding to ``base``, ns.
    ratio:
        Synchronized-seconds per raw-second slope.
    generation:
        Monotone publication counter — the hypervisor monitor's staleness
        observable.
    """

    base: float
    offset: float
    ratio: float
    generation: int

    def convert(self, raw: float) -> float:
        """Map a raw timebase reading to synchronized time (ns)."""
        return self.offset + self.ratio * (raw - self.base)


class SyncTimeClock:
    """A co-located VM's view of ``CLOCK_SYNCTIME``.

    Reads the node's shared raw timebase (an oscillator owned by the node —
    all VMs of a node see the same TSC-derived timebase through the
    hypervisor) and converts through the latest published parameters.
    """

    def __init__(self, timebase: Oscillator) -> None:
        self.timebase = timebase
        self._params: SyncTimeParams | None = None

    @property
    def params(self) -> SyncTimeParams | None:
        """Latest parameters, or ``None`` before first publication."""
        return self._params

    def publish(self, params: SyncTimeParams) -> None:
        """Install a new parameter tuple (phc2sys → STSHMEM write)."""
        self._params = params

    def now(self) -> float:
        """Read ``CLOCK_SYNCTIME`` in ns.

        Raises
        ------
        RuntimeError
            If no parameters were ever published (the driver would block
            until the page is initialized).
        """
        if self._params is None:
            raise RuntimeError("CLOCK_SYNCTIME read before first publication")
        return self._params.convert(self.timebase.read())

    def raw(self) -> float:
        """Read the raw node timebase (ns)."""
        return self.timebase.read()

"""The paper's primary contribution: gPTP multi-domain FTA aggregation.

A clock synchronization VM runs M ptp4l instances (one per gPTP domain) over
a single NIC. The instances share the user-space **FTSHMEM** region
(:mod:`repro.core.ftshmem`): the latest M grandmaster offsets, M validity
booleans, the ``adjust_last`` gate timestamp, and the state of the single
shared PI servo.

On every stored offset the :class:`~repro.core.aggregator.MultiDomainAggregator`
checks the paper's gate (eq. 2.1): the first instance to observe
``adjust_last + S <= now`` sorts the M offsets, computes the fault-tolerant
average (:mod:`repro.core.fta`, drop the f smallest and f largest, average
the rest), and feeds the aggregate to the shared servo which disciplines the
NIC's hardware clock — making the NIC's PHC the node's fault-tolerant global
time.

Validity assessment (:mod:`repro.core.validity`) excludes stale domains
(fail-silent GMs) and isolated outliers (single Byzantine GMs); the
convergence-function bound Π = u(N,f)(E+Γ) of Kopetz & Ochsenreiter lives in
:mod:`repro.core.convergence`.
"""

from repro.core.aggregator import AggregatorConfig, AggregatorMode, MultiDomainAggregator
from repro.core.convergence import drift_offset, precision_bound, u_factor
from repro.core.fta import (
    AggregationResult,
    fault_tolerant_average,
    fault_tolerant_midpoint,
    mean_aggregate,
    median_aggregate,
)
from repro.core.ftshmem import FtShmem, StoredOffset
from repro.core.gm_voting import assess_majority
from repro.core.validity import ValidityConfig, assess_validity

__all__ = [
    "MultiDomainAggregator",
    "AggregatorConfig",
    "AggregatorMode",
    "u_factor",
    "drift_offset",
    "precision_bound",
    "fault_tolerant_average",
    "fault_tolerant_midpoint",
    "mean_aggregate",
    "median_aggregate",
    "AggregationResult",
    "FtShmem",
    "StoredOffset",
    "ValidityConfig",
    "assess_validity",
    "assess_majority",
]

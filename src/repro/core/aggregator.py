"""The multi-domain aggregation engine of one clock synchronization VM.

This is the paper's ptp4l extension in one object. All M per-domain ptp4l
instances use it as their :class:`~repro.gptp.instance.OffsetSink`; it owns
the FTSHMEM region, the gate of eq. 2.1, startup synchronization (§II-B),
validity assessment, the FTA, and the shared PI servo that disciplines the
NIC's hardware clock.

Operating modes
---------------
``STARTUP``
    The paper presumes the M GM clocks are initially synchronized with
    precision Π before fault-tolerant operation can begin, and bootstraps by
    having everyone synchronize to an *initial domain's* GM until offsets
    fall below a configurable threshold. In STARTUP the servo therefore
    samples only the reference domain's offset. When at least ``M − f``
    domains are fresh and within ``startup_threshold`` of the reference for
    ``startup_confirmations`` consecutive gates, the VM enters FT mode
    (requiring all M would deadlock on a single stray/failed domain).

    Reference selection distinguishes **cold start** from **re-integration**
    (``reset(rejoin=True)``, i.e. a VM rebooting into a running system):

    * cold start follows the paper: everyone references the initial
      domain — including that domain's own GM, which thereby free-runs as
      the anchor;
    * re-integration references the lowest domain of the *mutually
      consistent cluster* among the other domains (the live ensemble). A
      rebooted GM of the initial domain must NOT anchor on itself: it would
      free-run indefinitely while its domain keeps transmitting, and a
      second rebooting GM would then step onto the stray clock — a
      two-cluster split that defeats the pairwise validity check exactly
      like the colluding-GM attack does.

``FAULT_TOLERANT``
    Each gate: take the fresh (non-silent) slots, compute the validity
    booleans, feed the FTA with the valid offsets, sample the shared servo
    with the aggregate, and apply frequency/step to the hardware clock. If
    nothing is valid the VM coasts on its last frequency — free-running at
    its disciplined rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.clocks.hardware_clock import HardwareClock
from repro.core.fta import AGGREGATORS, AggregationResult
from repro.core.ftshmem import FtShmem
from repro.core.validity import ValidityConfig, assess_validity
from repro.gptp.instance import OffsetSample
from repro.gptp.servo import PiServo, ServoConfig
from repro.sim.kernel import Simulator
from repro.sim.timebase import MICROSECONDS, MILLISECONDS
from repro.sim.trace import TraceLog


class AggregatorMode(enum.Enum):
    """Lifecycle of the multi-domain aggregation."""

    STARTUP = 0
    FAULT_TOLERANT = 1


@dataclass(frozen=True)
class AggregatorConfig:
    """Tunables of the aggregation engine.

    Attributes
    ----------
    domains:
        The M gPTP domain numbers being aggregated.
    f:
        Faults the FTA must tolerate (1 in the paper).
    sync_interval:
        The gate period S of eq. 2.1, ns.
    validity:
        Threshold/staleness configuration of the boolean array.
    startup_threshold:
        Offset-to-reference bound to leave STARTUP, ns.
    startup_confirmations:
        Consecutive in-bound gates required to enter FT mode.
    initial_domain:
        The paper's initial domain everyone first synchronizes to.
    own_domain:
        Domain this VM masters (``None`` for pure redundant VMs); used to
        keep a re-integrating GM from referencing itself.
    aggregation:
        Aggregation function name (``fta``, ``ftm``, ``mean``, ``median``) —
        non-FTA choices exist for the ablation benchmarks.
    servo:
        Shared PI servo parameters.
    apply_corrections:
        When ``False`` the engine measures and aggregates but never touches
        the hardware clock — a free-running node. The Kyriakakis-style
        baseline (grandmasters that do not aggregate, §I) uses this to show
        why GM clocks on separate nodes drift apart without the paper's
        mutual FTA discipline.
    """

    domains: tuple = (1, 2, 3, 4)
    f: int = 1
    sync_interval: int = 125 * MILLISECONDS
    validity: ValidityConfig = ValidityConfig()
    startup_threshold: int = 2 * MICROSECONDS
    startup_confirmations: int = 8
    initial_domain: int = 1
    own_domain: Optional[int] = None
    aggregation: str = "fta"
    servo: ServoConfig = ServoConfig()
    apply_corrections: bool = True
    #: Validity detector: ``"vouch"`` — the paper's pairwise booleans —
    #: or ``"majority"`` — the IEEE 1588-2019-style median vote
    #: (:mod:`repro.core.gm_voting`).
    validity_mode: str = "vouch"


class MultiDomainAggregator:
    """OffsetSink aggregating M domains into one disciplined clock."""

    def __init__(
        self,
        sim: Simulator,
        clock: HardwareClock,
        config: AggregatorConfig = AggregatorConfig(),
        name: str = "aggregator",
        trace: Optional[TraceLog] = None,
        on_mode_change: Optional[Callable[[AggregatorMode], None]] = None,
        metrics=None,
    ) -> None:
        if config.aggregation not in AGGREGATORS:
            raise ValueError(f"unknown aggregation {config.aggregation!r}")
        if config.validity_mode not in ("vouch", "majority"):
            raise ValueError(f"unknown validity_mode {config.validity_mode!r}")
        self.sim = sim
        self.clock = clock
        self.config = config
        self.name = name
        self.trace = trace
        self.on_mode_change = on_mode_change
        self.mode = AggregatorMode.STARTUP
        self.servo = PiServo(config.servo, interval=config.sync_interval, metrics=metrics)
        self.shmem = FtShmem(list(config.domains), self.servo)
        self.aggregations = 0
        self.coasts = 0
        self._startup_streak = 0
        self._rejoin = False
        self._aggregate_fn = AGGREGATORS[config.aggregation]
        self.last_result: Optional[AggregationResult] = None
        self.last_valid_flags: Dict[int, bool] = {}
        # Hot-path bindings: handle_offset runs once per received FollowUp.
        self._sync_interval = config.sync_interval
        self._staleness = config.validity.staleness
        if config.validity_mode == "majority":
            from repro.core.gm_voting import assess_majority

            self._assess = assess_majority
        else:
            self._assess = assess_validity
        # Observability (optional MetricsRegistry); instruments cached so
        # the per-gate enabled path is attribute loads, not dict lookups.
        self._metrics = metrics
        if metrics is not None:
            self._m_gate_fires = metrics.counter("aggregator.gate_fires")
            self._m_coasts = metrics.counter("aggregator.coasts")
            self._m_fta_dropped = metrics.counter("aggregator.fta_dropped")
            self._m_mode_transitions = metrics.counter("aggregator.mode_transitions")
            self._m_gate_latency = metrics.histogram("aggregator.gate_latency_ns")
            self._m_offset_error = metrics.histogram("aggregator.offset_error_ns")
            self._m_valid_domains = metrics.histogram(
                "aggregator.valid_domains",
                edges=list(range(len(config.domains) + 1)),
            )

    # ------------------------------------------------------------------
    # OffsetSink interface — called by every ptp4l instance
    # ------------------------------------------------------------------
    def handle_offset(self, sample: OffsetSample) -> None:
        """Store a domain's offset; run the gate check of eq. 2.1."""
        now = self.clock.time()
        self.shmem.store(sample, now)
        # Inline of shmem.gate_open (eq. 2.1): one check per stored offset.
        last = self.shmem.adjust_last
        if last is None or last + self._sync_interval <= now:
            self._adjust(now)

    # ------------------------------------------------------------------
    # Adjustment path
    # ------------------------------------------------------------------
    def _adjust(self, now: int) -> None:
        if self._metrics is not None:
            self._m_gate_fires.inc()
            last = self.shmem.adjust_last
            if last is not None:
                # Actual inter-adjustment spacing vs the nominal period S.
                self._m_gate_latency.observe(now - last)
        self.shmem.close_gate(now)
        fresh = self.shmem.fresh_offsets(now, self._staleness)
        if self.mode is AggregatorMode.STARTUP:
            self._adjust_startup(fresh)
        else:
            self._adjust_fault_tolerant(fresh)

    def _adjust_startup(self, fresh: Dict[int, "object"]) -> None:
        reference = self._reference_domain(fresh)
        if reference is None:
            self.coasts += 1
            if self._metrics is not None:
                self._m_coasts.inc()
            return
        ref_offset = fresh[reference].offset
        self._apply_servo(ref_offset)
        # FT entry: at least M − f domains fresh and near the reference
        # (insisting on all M would deadlock on one stray/failed domain).
        near = sum(
            1
            for d in fresh
            if abs(fresh[d].offset - ref_offset) <= self.config.startup_threshold
        )
        required = max(1, len(self.config.domains) - self.config.f)
        if near >= required:
            self._startup_streak += 1
        else:
            self._startup_streak = 0
        if self._startup_streak >= self.config.startup_confirmations:
            self._enter_fault_tolerant()

    def _adjust_fault_tolerant(self, fresh: Dict[int, "object"]) -> None:
        flags = self._assess(fresh, self.config.validity)
        # Both views get the same (never mutated in place) dict — one build
        # per gate instead of a build plus a copy.
        valid = {d: flags.get(d, False) for d in self.config.domains}
        self.shmem.valid = valid
        self.last_valid_flags = valid
        offsets = [fresh[d].sample.offset for d in sorted(fresh) if flags[d]]
        if self._metrics is not None:
            self._m_valid_domains.observe(len(offsets))
        if not offsets:
            self.coasts += 1  # nothing trustworthy: free-run this interval
            if self._metrics is not None:
                self._m_coasts.inc()
            return
        result = self._aggregate_fn(offsets, self.config.f)
        self.last_result = result
        if self._metrics is not None:
            dropped = len(result.dropped_low) + len(result.dropped_high)
            if dropped:
                self._m_fta_dropped.inc(dropped)
        self._apply_servo(result.value)

    def _apply_servo(self, offset: float) -> None:
        self.aggregations += 1
        if self._metrics is not None:
            self._m_offset_error.observe(abs(offset))
        if not self.config.apply_corrections:
            return  # measure-only mode (free-running baseline)
        out = self.servo.sample(offset)
        if out.step_ns:
            self.clock.step(out.step_ns)
            # adjust_last lives in the stepped timescale.
            self.shmem.close_gate(self.clock.time())
        self.clock.adjust_frequency(out.frequency_ppb)

    # ------------------------------------------------------------------
    def _reference_domain(self, fresh: Dict[int, "object"]) -> Optional[int]:
        if self._rejoin:
            cluster = self._consistent_cluster(fresh)
            if cluster:
                return min(cluster)
        if self.config.initial_domain in fresh:
            return self.config.initial_domain
        others = [d for d in fresh if d != self.config.own_domain]
        if others:
            return min(others)
        return min(fresh) if fresh else None

    def _consistent_cluster(self, fresh: Dict[int, "object"]) -> List[int]:
        """Domains (excluding our own) that agree with at least one other.

        Two or more foreign domains within the validity threshold of each
        other are, with f = 1, the live synchronized ensemble a rebooted VM
        must rejoin.
        """
        own = self.config.own_domain
        others = {d: fresh[d].offset for d in fresh if d != own}
        threshold = self.config.validity.threshold
        return [
            d
            for d in others
            if any(
                e != d and abs(others[d] - others[e]) <= threshold
                for e in others
            )
        ]

    def _enter_fault_tolerant(self) -> None:
        self.mode = AggregatorMode.FAULT_TOLERANT
        if self._metrics is not None:
            self._m_mode_transitions.inc()
        if self.trace is not None:
            self.trace.emit(self.sim.now, "fta.ft_mode_entered", self.name)
        if self.on_mode_change is not None:
            self.on_mode_change(self.mode)

    def reset(self, rejoin: bool = False) -> None:
        """Back to STARTUP with a wiped region (VM reboot).

        ``rejoin=True`` marks this as a re-integration into a running
        system (any boot after the first): startup then references the live
        ensemble instead of blindly following the initial domain.
        """
        if self._metrics is not None and self.mode is AggregatorMode.FAULT_TOLERANT:
            self._m_mode_transitions.inc()  # FT -> STARTUP is a transition too
        self.mode = AggregatorMode.STARTUP
        self._startup_streak = 0
        self._rejoin = rejoin
        self.shmem.reset()
        self.last_result = None
        self.last_valid_flags = {}

    def __repr__(self) -> str:
        return (
            f"MultiDomainAggregator({self.name!r}, mode={self.mode.name}, "
            f"aggregations={self.aggregations})"
        )

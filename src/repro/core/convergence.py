"""Kopetz–Ochsenreiter convergence-function bound on precision.

The paper instantiates (§III-A3)::

    Π(N, f, E, Γ) = u(N, f) · (E + Γ)

with the FTA convergence factor ``u(N, f) = (N − 2f) / (N − 3f)``, the
*reading error* ``E = d_max − d_min`` (spread of network latencies between
any two nodes), and the *drift offset* ``Γ = 2 · r_max · S`` (worst mutual
drift over one synchronization period). For the testbed's N = 4 domains and
f = 1 tolerated fault, ``u = 2`` and Π = 2(E + Γ) — the 12.636 µs / 11.42 µs
bounds quoted for the two experiments.
"""

from __future__ import annotations

from repro.sim.timebase import from_ppm


def u_factor(n: int, f: int) -> float:
    """FTA convergence factor ``(N − 2f) / (N − 3f)``.

    Requires ``N ≥ 3f + 1`` — the Byzantine resilience condition.

    >>> u_factor(4, 1)
    2.0
    """
    if f < 0:
        raise ValueError(f"f must be nonnegative, got {f}")
    if n < 3 * f + 1:
        raise ValueError(
            f"N={n} clocks cannot tolerate f={f} Byzantine faults (need N >= 3f+1)"
        )
    if f == 0:
        return 1.0
    return (n - 2 * f) / (n - 3 * f)


def drift_offset(max_drift_ppm: float, sync_interval: int) -> float:
    """Γ = 2 · r_max · S in ns.

    >>> from repro.sim.timebase import MILLISECONDS
    >>> drift_offset(5.0, 125 * MILLISECONDS)
    1250.0
    """
    if max_drift_ppm < 0 or sync_interval <= 0:
        raise ValueError("max_drift_ppm must be >= 0 and sync_interval > 0")
    return 2.0 * from_ppm(max_drift_ppm) * sync_interval


def reading_error(d_min: float, d_max: float) -> float:
    """E = d_max − d_min in ns."""
    if d_max < d_min:
        raise ValueError(f"d_max={d_max} < d_min={d_min}")
    return d_max - d_min


def precision_bound(
    n: int, f: int, reading_error_ns: float, drift_offset_ns: float
) -> float:
    """Π = u(N, f) · (E + Γ) in ns.

    >>> precision_bound(4, 1, 5068.0, 1250.0)
    12636.0
    """
    if reading_error_ns < 0 or drift_offset_ns < 0:
        raise ValueError("error terms must be nonnegative")
    return u_factor(n, f) * (reading_error_ns + drift_offset_ns)

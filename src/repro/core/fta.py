"""Fault-tolerant average and alternative aggregation functions.

The FTA of Kopetz & Ochsenreiter (1987): sort the clock readings, discard
the ``f`` smallest and ``f`` largest, average the rest. With N = 4 domains
and f = 1 this is the mean of the two middle offsets — a single arbitrarily
faulty (Byzantine) grandmaster can shift the aggregate by at most the spread
of the correct readings.

``mean_aggregate`` and ``median_aggregate`` exist for the ablation
benchmarks (plain averaging has *no* Byzantine tolerance; the median is the
degenerate FTA).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro._compat import SLOTTED


@dataclass(**SLOTTED)
class AggregationResult:
    """Outcome of one aggregation.

    A value object: treat as immutable. One is created per aggregation
    gate on the hot path, so it is not frozen (frozen construction is ~4×
    more expensive).

    Attributes
    ----------
    value:
        The aggregate, ns.
    used:
        The sorted readings that entered the average.
    dropped_low, dropped_high:
        The discarded extremes.
    """

    value: float
    used: Tuple[float, ...]
    dropped_low: Tuple[float, ...]
    dropped_high: Tuple[float, ...]


def fault_tolerant_average(values: Sequence[float], f: int) -> AggregationResult:
    """Kopetz–Ochsenreiter FTA: drop ``f`` extremes each side, average.

    When fewer than ``2f + 1`` readings are available (grandmasters failed
    silent and were excluded upstream), the drop count degrades gracefully to
    ``(len - 1) // 2`` per side at most, so one reading always survives:

    >>> fault_tolerant_average([0.0, 10.0, 20.0, 1000.0], f=1).value
    15.0
    >>> fault_tolerant_average([5.0, 7.0, 9.0], f=1).value
    7.0
    >>> fault_tolerant_average([5.0, 7.0], f=1).value
    6.0
    """
    if f < 0:
        raise ValueError(f"f must be nonnegative, got {f}")
    if not values:
        raise ValueError("cannot aggregate zero readings")
    ordered = sorted(values)
    drop = min(f, (len(ordered) - 1) // 2)
    used = tuple(ordered[drop: len(ordered) - drop])
    return AggregationResult(
        sum(used) / len(used),
        used,
        tuple(ordered[:drop]),
        tuple(ordered[len(ordered) - drop:]),
    )


def fault_tolerant_midpoint(values: Sequence[float], f: int) -> AggregationResult:
    """FTM variant: midpoint of the extremes after dropping ``f`` per side.

    Used by TTP/TTEthernet-style compression masters; included for the
    ablation study.
    """
    if not values:
        raise ValueError("cannot aggregate zero readings")
    ordered = sorted(values)
    drop = min(f, (len(ordered) - 1) // 2)
    used = tuple(ordered[drop: len(ordered) - drop])
    return AggregationResult(
        value=(used[0] + used[-1]) / 2.0,
        used=used,
        dropped_low=tuple(ordered[:drop]),
        dropped_high=tuple(ordered[len(ordered) - drop:]),
    )


def mean_aggregate(values: Sequence[float], f: int = 0) -> AggregationResult:
    """Plain mean — the no-fault-tolerance baseline (``f`` ignored)."""
    if not values:
        raise ValueError("cannot aggregate zero readings")
    ordered = tuple(sorted(values))
    return AggregationResult(
        value=sum(ordered) / len(ordered),
        used=ordered,
        dropped_low=(),
        dropped_high=(),
    )


def median_aggregate(values: Sequence[float], f: int = 0) -> AggregationResult:
    """Median — maximal trimming (``f`` ignored)."""
    if not values:
        raise ValueError("cannot aggregate zero readings")
    ordered = sorted(values)
    n = len(ordered)
    if n % 2:
        mid = (ordered[n // 2],)
    else:
        mid = (ordered[n // 2 - 1], ordered[n // 2])
    return AggregationResult(
        value=sum(mid) / len(mid),
        used=tuple(mid),
        dropped_low=tuple(ordered[: (n - len(mid)) // 2]),
        dropped_high=tuple(ordered[(n + len(mid)) // 2:]),
    )


#: Registry used by the ablation benchmarks and experiment configs.
AGGREGATORS = {
    "fta": fault_tolerant_average,
    "ftm": fault_tolerant_midpoint,
    "mean": mean_aggregate,
    "median": median_aggregate,
}

"""The FTSHMEM user-space shared memory region.

§II-B: a shared region between the M ptp4l processes of one clock
synchronization VM holding

* the latest M grandmaster offsets,
* an array of M booleans — whether each GM's offset is within a
  configurable threshold of the remaining GMs',
* ``adjust_last`` — when the NIC's frequency was last adjusted, and
* the state of the single shared PI controller.

In the simulation the M "processes" are method calls on one object, so the
region is a plain data structure; the semantics (last-writer-wins per
domain, one shared gate and servo) are what matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.gptp.instance import OffsetSample
from repro.gptp.servo import PiServo
from repro._compat import SLOTTED


@dataclass(**SLOTTED)
class StoredOffset:
    """One domain's slot in FTSHMEM.

    A value object: treat as immutable. One is created per offset store
    (the hottest allocation of the aggregation path), so it is not frozen
    — frozen dataclass construction routes every field through
    ``object.__setattr__``.
    """

    sample: OffsetSample
    stored_at: int  # local PHC time of the store

    @property
    def offset(self) -> float:
        """The GM offset, ns."""
        return self.sample.offset

    def age(self, now: int) -> int:
        """Nanoseconds since this slot was written (local PHC timescale)."""
        return now - self.stored_at


class FtShmem:
    """The shared region proper."""

    def __init__(self, domains: list, servo: PiServo) -> None:
        self.domains = list(domains)
        self.offsets: Dict[int, StoredOffset] = {}
        self.valid: Dict[int, bool] = {d: False for d in self.domains}
        self.adjust_last: Optional[int] = None
        self.servo = servo  # the PI controller state of §II-B
        self.stores = 0

    def store(self, sample: OffsetSample, now: int) -> None:
        """Write one domain's latest offset (last writer wins)."""
        if sample.domain not in self.valid:
            raise KeyError(f"domain {sample.domain} not part of this region")
        self.offsets[sample.domain] = StoredOffset(sample, now)
        self.stores += 1

    def fresh_offsets(self, now: int, staleness: int) -> Dict[int, StoredOffset]:
        """Slots younger than ``staleness`` ns (excludes fail-silent GMs).

        The boundary is exclusive: a slot of age exactly ``staleness`` is
        already stale, matching the :meth:`StoredOffset.age`-based call
        sites that compare ``age(now) < staleness``.
        """
        cutoff = now - staleness  # age(now) < staleness, without the call
        return {
            d: slot
            for d, slot in self.offsets.items()
            if slot.stored_at > cutoff
        }

    def gate_open(self, now: int, sync_interval: int) -> bool:
        """The paper's eq. 2.1: ``adjust_last + S <= now``."""
        return self.adjust_last is None or self.adjust_last + sync_interval <= now

    def close_gate(self, now: int) -> None:
        """Record the adjustment instant."""
        self.adjust_last = now

    def reset(self) -> None:
        """Clear all slots (VM reboot wipes the region)."""
        self.offsets.clear()
        self.valid = {d: False for d in self.domains}
        self.adjust_last = None
        self.stores = 0
        self.servo.reset()

"""IEEE 1588-2019-style grandmaster voting.

The paper's introduction notes that IEEE 1588-2019 "proposes using a voting
algorithm to detect faulty GM clocks if more than two redundant time sources
are available". This module implements that detector as an alternative to
the paper's pairwise-vouching validity booleans (:mod:`repro.core.validity`):

    a domain is valid iff its offset lies within the threshold of the
    **median** of all fresh domains' offsets (majority reference), provided
    at least three sources exist — with fewer there is no majority and
    nothing is flagged.

The two detectors fail differently against the §III-B colluding-pair attack
(M = 4, two compromised GMs at −24 µs):

* pairwise vouching: the colluders vouch for each other → all four domains
  stay "valid" → the FTA is poisoned every interval → runaway divergence
  (the paper's Fig. 3a).
* majority median: the 2-vs-2 split puts the median *between* the clusters
  → **everything** is flagged invalid → the node coasts on its disciplined
  frequency — degradation at drift rate instead of runaway.

With M ≥ 5 domains and still two colluders, the median sits inside the
honest majority and the colluding pair is cleanly rejected — the case
1588-2019 actually targets. The ablation bench measures all of this.
"""

from __future__ import annotations

from typing import Dict

from repro.core.ftshmem import StoredOffset
from repro.core.validity import ValidityConfig


def assess_majority(
    fresh: Dict[int, StoredOffset], config: ValidityConfig
) -> Dict[int, bool]:
    """Median-referenced majority vote over the fresh domain offsets.

    >>> from repro.gptp.instance import OffsetSample
    >>> def slot(d, off):
    ...     return StoredOffset(OffsetSample(d, "gm", off, 0, 0), stored_at=0)
    >>> flags = assess_majority(
    ...     {1: slot(1, 0.0), 2: slot(2, 100.0), 3: slot(3, -50.0),
    ...      4: slot(4, 24_000.0)},
    ...     ValidityConfig())
    >>> flags[1], flags[4]
    (True, False)
    """
    domains = sorted(fresh)
    if len(domains) < 3:
        return {d: True for d in domains}
    ordered = sorted(fresh[d].offset for d in domains)
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {
        d: abs(fresh[d].offset - median) <= config.threshold for d in domains
    }

"""Validity assessment of grandmaster offsets.

FTSHMEM carries "an array of M booleans indicating whether the corresponding
GM clock's offset from the remaining GM clocks is within a configurable
threshold" (§II-B). We implement the check the way a pairwise comparison
naturally behaves:

    a domain is **valid** iff its offset lies within the threshold of at
    least one *other* fresh domain's offset (or it is the only fresh one).

This mirrors the strength — and the documented limitation — of the paper's
architecture: a *single* Byzantine GM is isolated (no peer vouches for it)
and additionally trimmed by the FTA, but two *colluding* GMs vouch for each
other and poison the aggregate, which is exactly the identical-kernel attack
of Fig. 3a. OS diversification, not the validity check, is what prevents
that scenario (Fig. 3b).

Staleness is assessed separately (fail-silent GMs simply stop producing
offsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.ftshmem import StoredOffset
from repro.sim.timebase import MICROSECONDS, MILLISECONDS


@dataclass(frozen=True)
class ValidityConfig:
    """Thresholds of the validity check.

    Attributes
    ----------
    threshold:
        Maximum |offset difference| for one GM to vouch for another, ns.
    staleness:
        Maximum slot age before a domain counts as silent, ns.
    """

    threshold: int = 5 * MICROSECONDS
    staleness: int = 300 * MILLISECONDS


def assess_validity(
    fresh: Dict[int, StoredOffset], config: ValidityConfig
) -> Dict[int, bool]:
    """Compute the per-domain validity booleans over the fresh slots.

    >>> from repro.gptp.instance import OffsetSample
    >>> def slot(d, off):
    ...     return StoredOffset(
    ...         OffsetSample(d, "gm", off, 0, 0), stored_at=0)
    >>> flags = assess_validity(
    ...     {1: slot(1, 0.0), 2: slot(2, 100.0), 3: slot(3, 50_000.0)},
    ...     ValidityConfig())
    >>> flags[1], flags[2], flags[3]
    (True, True, False)
    """
    domains = sorted(fresh)
    if len(domains) <= 1:
        return {d: True for d in domains}
    # Plain nested loops rather than per-domain generator expressions: this
    # runs once per aggregation gate and the genexpr frames dominated it.
    threshold = config.threshold
    offsets = [fresh[d].sample.offset for d in domains]
    n = len(domains)
    flags: Dict[int, bool] = {}
    for i in range(n):
        mine = offsets[i]
        ok = False
        for j in range(n):
            if j != i and abs(mine - offsets[j]) <= threshold:
                ok = True
                break
        flags[domains[i]] = ok
    return flags

"""Experiment harness: the Fig. 2 testbed, the paper's two experiments,
and the baselines.

* :mod:`repro.experiments.testbed` — builds the full virtualized distributed
  real-time system: 4 ECDs × 2 clock synchronization VMs, 4 gPTP domains
  with spatially separated GMs, switch mesh, per-domain external port
  configuration, measurement VLAN, probe service.
* :mod:`repro.experiments.cyber` — the 1 h cyber-resilience experiment
  (§III-B, Fig. 3a/3b): root exploits against two virtual GMs under
  identical vs diversified kernels.
* :mod:`repro.experiments.fault_injection` — the 24 h fault injection
  experiment (§III-C, Fig. 4a/4b, Fig. 5).
* :mod:`repro.experiments.baselines` — single-domain gPTP (no FTA) and the
  Kyriakakis-style client-only aggregation with free-running GMs.
"""

from repro.experiments.baselines import (
    BaselineResult,
    run_client_only_baseline,
    run_full_architecture,
    run_single_domain_baseline,
)
from repro.experiments.holdover import (
    HoldoverConfig,
    HoldoverResult,
    run_holdover_experiment,
)
from repro.experiments.link_failure import (
    LinkFailureConfig,
    LinkFailureResult,
    run_link_failure_experiment,
)
from repro.experiments.chaos import (
    ChaosExperimentConfig,
    ChaosResult,
    run_chaos_experiment,
)
from repro.experiments.montecarlo import (
    MonteCarloResult,
    SeedOutcome,
    run_monte_carlo,
)
from repro.experiments.sweeps import (
    SweepRow,
    render_rows,
    sweep,
    sweep_aggregation,
    sweep_domain_count,
    sweep_loss_rate,
    sweep_sync_interval,
    sweep_validity_threshold,
)
from repro.experiments.cyber import (
    CyberExperimentConfig,
    CyberResult,
    run_cyber_experiment,
)
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    FaultInjectionResult,
    run_fault_injection_experiment,
)
from repro.experiments.testbed import Testbed, TestbedConfig

__all__ = [
    "Testbed",
    "TestbedConfig",
    "CyberExperimentConfig",
    "CyberResult",
    "run_cyber_experiment",
    "FaultInjectionExperimentConfig",
    "FaultInjectionResult",
    "run_fault_injection_experiment",
    "BaselineResult",
    "run_single_domain_baseline",
    "run_client_only_baseline",
    "run_full_architecture",
    "HoldoverConfig",
    "HoldoverResult",
    "run_holdover_experiment",
    "LinkFailureConfig",
    "LinkFailureResult",
    "run_link_failure_experiment",
    "MonteCarloResult",
    "SeedOutcome",
    "run_monte_carlo",
    "ChaosExperimentConfig",
    "ChaosResult",
    "run_chaos_experiment",
    "SweepRow",
    "render_rows",
    "sweep",
    "sweep_domain_count",
    "sweep_sync_interval",
    "sweep_aggregation",
    "sweep_loss_rate",
    "sweep_validity_threshold",
]

"""Baselines the paper argues against.

* **Single-domain gPTP** (plain IEEE 802.1AS, no FTA): one GM; a Byzantine
  or fail-silent GM takes the whole network's synchronization with it. This
  is what IEEE 802.1AS gives out of the box and the architecture's
  motivation.
* **Client-only multi-domain aggregation** (Kyriakakis et al.): slaves
  aggregate M domains with the FTA, but the GM clocks themselves do *not*
  aggregate — they free-run. Without a shared time source the GM clocks
  drift apart unboundedly, the FTA's input spread grows, and the
  Byzantine-tolerance argument collapses in real deployments (§I). The
  paper's architecture closes exactly this gap by disciplining every GM
  toward the FTA of all domains.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.core.aggregator import AggregatorConfig
from repro.measurement.bounds import ExperimentBounds
from repro.security.attacker import Attacker, AttackerConfig
from repro.sim.timebase import HOURS, MICROSECONDS, MINUTES, SECONDS
from repro.experiments.testbed import Testbed, TestbedConfig


@dataclass
class BaselineResult:
    """Common result shape for the baseline arms."""

    label: str
    bounds: Optional[ExperimentBounds]
    precisions: List[Tuple[int, float]]
    gm_spread_series: List[Tuple[int, float]]
    max_precision: float
    final_gm_spread: float

    def to_text(self) -> str:
        """One-block summary."""
        lines = [
            f"baseline: {self.label}",
            f"max Π* = {self.max_precision:.1f} ns",
            f"final GM clock spread = {self.final_gm_spread:.1f} ns",
        ]
        if self.bounds is not None:
            lines.insert(1, self.bounds.describe())
        return "\n".join(lines)


def _scenario_base(scenario, seed: int) -> TestbedConfig:
    """Anchor config for a baseline arm: a scenario's, or the paper mesh4."""
    if scenario is None:
        return TestbedConfig(seed=seed)
    from repro.scenarios import resolve_scenario

    return resolve_scenario(scenario).testbed_config(seed=seed)


def _collect(testbed: Testbed, duration: int, spread_samples: int = 60) -> BaselineResult:
    """Run a built testbed, sampling the GM clock spread along the way."""
    spread_series: List[Tuple[int, float]] = []
    step = max(duration // spread_samples, SECONDS)
    t = step
    while t <= duration:
        testbed.run_until(t)
        spread_series.append((t, testbed.gm_clock_spread()))
        t += step
    precisions = testbed.series.series()
    return BaselineResult(
        label="",
        bounds=None,
        precisions=precisions,
        gm_spread_series=spread_series,
        max_precision=max((p for _, p in precisions), default=0.0),
        final_gm_spread=spread_series[-1][1] if spread_series else 0.0,
    )


def run_single_domain_baseline(
    duration: int = 10 * MINUTES,
    seed: int = 1,
    gm_fails_at: Optional[int] = None,
    byzantine_at: Optional[int] = None,
    origin_shift: int = -24 * MICROSECONDS,
    scenario=None,
) -> BaselineResult:
    """Plain single-domain 802.1AS, optionally with a failing/Byzantine GM.

    With ``n_domains=1`` there is nothing to aggregate: f must be 0 and the
    single GM is a single point of failure, which is the point. A
    ``scenario`` supplies the network shape; its M and f are overridden by
    the single-domain premise.
    """
    config = replace(
        _scenario_base(scenario, seed),
        n_domains=1,
        aggregator=AggregatorConfig(
            domains=(1,), f=0, initial_domain=1, startup_confirmations=4
        ),
    )
    testbed = Testbed(config)
    if gm_fails_at is not None:
        testbed.sim.schedule_at(
            gm_fails_at, testbed.vms["c1_1"].fail_silent, False, "baseline-gm-kill"
        )
    if byzantine_at is not None:
        attacker = Attacker(
            testbed.sim,
            {"c1_1": testbed.vms["c1_1"]},
            AttackerConfig(
                origin_shift=origin_shift, exploit_times={"c1_1": byzantine_at}
            ),
            trace=testbed.trace,
        )
        attacker.arm()
    result = _collect(testbed, duration)
    result.label = "single-domain 802.1AS (no FTA)"
    result.bounds = testbed.derive_bounds()
    return result


def run_client_only_baseline(
    duration: int = 10 * MINUTES, seed: int = 1, scenario=None
) -> BaselineResult:
    """Kyriakakis-style: clients aggregate, GMs free-run.

    The GM clock spread grows with oscillator drift instead of staying
    within Π — compare against :func:`run_full_architecture` over the same
    duration.
    """
    testbed = Testbed(
        replace(_scenario_base(scenario, seed), aggregate_on_gms=False)
    )
    result = _collect(testbed, duration)
    result.label = "client-only aggregation (free-running GMs)"
    result.bounds = testbed.derive_bounds()
    return result


def run_full_architecture(
    duration: int = 10 * MINUTES, seed: int = 1, scenario=None
) -> BaselineResult:
    """The paper's architecture, for side-by-side comparison."""
    testbed = Testbed(_scenario_base(scenario, seed))
    result = _collect(testbed, duration)
    result.label = "multi-domain FTA (this paper)"
    result.bounds = testbed.derive_bounds()
    return result

"""The chaos experiment: run a scenario under a declarative chaos plan.

Where the fault-injection experiment (§III-C) exercises the *modelled*
fault hypothesis — fail-silent VM shutdowns plus calibrated transient
software faults — the chaos experiment degrades the network itself:
packet loss (random or bursty), duplication, reordering, delay asymmetry,
congestion, link flaps, and steered attacks, all scheduled by a
:class:`repro.chaos.plan.ChaosPlan`. The online invariant monitor watches
the run and the result carries its verdict: PASS when every safety
property held, DEGRADED when resilience margin was consumed (domains
knocked out, slow failovers) but the synctime bound still held, FAIL when
the bound itself broke.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.chaos.plan import ChaosPlan, merge_plans
from repro.faults.injector import FaultInjectionConfig, FaultInjector
from repro.security.campaigns import AttackCampaign
from repro.measurement.bounds import ExperimentBounds
from repro.monitoring.invariants import (
    InvariantMonitor,
    InvariantSpec,
    InvariantViolation,
    Verdict,
)
from repro.scenarios import ScenarioSpec
from repro.sim.timebase import MINUTES, SECONDS, format_hms
from repro.experiments.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class ChaosExperimentConfig:
    """Parameters of one chaos run."""

    duration: int = 8 * MINUTES
    seed: int = 1
    #: Scenario the testbed is built from (None → paper mesh4).
    scenario: Optional[ScenarioSpec] = None
    #: Chaos plan; overrides the scenario's own plan when both are set.
    plan: Optional[ChaosPlan] = None
    #: Adversary campaign, compiled and merged onto the resolved plan; a
    #: config-level campaign overrides the scenario's own.
    campaign: Optional[AttackCampaign] = None
    invariants: InvariantSpec = InvariantSpec()
    #: Optional fail-silent fault pressure on top of the chaos (None → no
    #: injector; chaos-only runs isolate the network degradation).
    injector: Optional[FaultInjectionConfig] = None
    #: Execution tier: "full" (byte-identical event-level default) or
    #: "adaptive" (analytic fast-forward through locked quiescence — see
    #: :mod:`repro.experiments.fidelity`).
    fidelity: str = "full"

    def resolved_plan(self) -> Optional[ChaosPlan]:
        if self.plan is not None:
            plan = self.plan
        elif self.scenario is not None:
            plan = self.scenario.chaos_plan
        else:
            plan = None
        campaign = self.campaign
        if campaign is None and self.scenario is not None:
            campaign = self.scenario.attack_campaign
        if campaign is not None:
            compiled = campaign.compile()
            plan = compiled if plan is None else merge_plans(plan, compiled)
        return plan


@dataclass
class ChaosResult:
    """Outcome of one chaos run, centred on the monitor's verdict."""

    config: ChaosExperimentConfig
    bounds: ExperimentBounds
    verdict: Verdict
    violations: List[InvariantViolation]
    chaos_summary: Dict[str, object]
    link_stats: Dict[str, Dict[str, int]]
    probes: int
    mean_precision: float
    max_precision: float
    max_precision_at: int
    bound_violations: int
    injections: Dict[str, int] = field(default_factory=dict)
    #: Fast-forward statistics; empty for full-fidelity runs.
    fastforward: Dict[str, int] = field(default_factory=dict)

    @property
    def bounded(self) -> bool:
        return self.bound_violations == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "plan": self.chaos_summary.get("plan"),
            "verdict": self.verdict.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "chaos": dict(self.chaos_summary),
            "links": {k: dict(v) for k, v in self.link_stats.items()},
            "probes": self.probes,
            "mean_precision_ns": self.mean_precision,
            "max_precision_ns": self.max_precision,
            "bound_ns": self.bounds.bound_with_error,
            "bound_violations": self.bound_violations,
            "injections": dict(self.injections),
            # Present only on adaptive-fidelity runs so full-fidelity
            # result documents (and their hashes) stay unchanged.
            **(
                {"fastforward": dict(self.fastforward)}
                if self.fastforward else {}
            ),
        }

    def to_text(self) -> str:
        cs = self.chaos_summary
        lines = [
            f"chaos experiment, {self.config.duration / SECONDS:.0f} s, "
            f"plan {cs.get('plan', '-')!s}",
            self.bounds.describe(),
            f"precision: avg={self.mean_precision:.0f}ns "
            f"max={self.max_precision:.0f}ns at "
            f"{format_hms(self.max_precision_at)} over {self.probes} probes "
            f"({'within' if self.bounded else 'VIOLATES'} "
            f"Π+γ={self.bounds.bound_with_error:.0f}ns; "
            f"{self.bound_violations} violations)",
            f"chaos: {cs.get('stages_executed', 0)} stages, "
            f"{cs.get('links_impaired', 0)} links impaired, "
            f"{cs.get('dropped', 0)} dropped / {cs.get('duplicated', 0)} "
            f"duplicated / {cs.get('reordered', 0)} reordered of "
            f"{cs.get('seen', 0)} packets",
        ]
        if self.injections:
            lines.append(
                f"fail-silent injections: {self.injections.get('fail_silent_total', 0)}"
            )
        for name, stats in sorted(self.link_stats.items()):
            if stats["seen"]:
                lines.append(
                    f"  {name}: {stats['dropped']}/{stats['seen']} dropped "
                    f"({100.0 * stats['dropped'] / stats['seen']:.1f}%)"
                )
        lines.append(self.verdict.describe())
        if self.verdict.counts:
            per_inv = ", ".join(
                f"{k}={v}" for k, v in sorted(self.verdict.counts.items())
            )
            lines.append(f"violation episodes: {per_inv}")
        transitions = self.verdict.timeline
        if len(transitions) > 1:
            lines.append(
                "status timeline: "
                + " -> ".join(
                    f"{s}@{format_hms(t)}" for t, s in transitions
                )
            )
        return "\n".join(lines)


def run_chaos_experiment(
    config: Optional[ChaosExperimentConfig] = None,
    metrics=None,
) -> ChaosResult:
    """Run one scenario under its chaos plan with the monitor attached."""
    config = config if config is not None else ChaosExperimentConfig()
    wall_start = time.perf_counter() if metrics is not None else 0.0
    if config.scenario is not None:
        tb_config = config.scenario.testbed_config(seed=config.seed)
    else:
        tb_config = TestbedConfig(seed=config.seed)
    plan = config.resolved_plan()
    if plan is not None and tb_config.chaos is not plan:
        tb_config = dataclasses.replace(tb_config, chaos=plan)
    testbed = Testbed(tb_config, metrics=metrics, fidelity=config.fidelity)

    injections: Dict[str, int] = {}
    injector = None
    if config.injector is not None:
        injector_config = config.injector
        if testbed.measurement_vm_name not in injector_config.exclude:
            injector_config = dataclasses.replace(
                injector_config,
                exclude=tuple(injector_config.exclude)
                + (testbed.measurement_vm_name,),
            )
        injector = FaultInjector(
            testbed.sim,
            list(testbed.nodes.values()),
            injector_config,
            testbed.rng.stream("fault-injector"),
            testbed.trace,
        )
        injector.start()

    monitor = InvariantMonitor(
        testbed,
        config.invariants,
        metrics=metrics,
        f=config.scenario.f if config.scenario is not None else None,
    )
    monitor.start()
    testbed.run_until(config.duration)

    if injector is not None:
        injections = injector.summary()
    if metrics is not None:
        testbed.publish_metrics()
        wall = time.perf_counter() - wall_start
        metrics.counter("experiment.runs").inc()
        if wall > 0:
            metrics.gauge("experiment.events_per_sec").set(
                testbed.sim.dispatched_events / wall
            )

    bounds = testbed.derive_bounds()
    precisions = [r.precision for r in testbed.series.records]
    worst = testbed.series.max_record()
    chaos = testbed.chaos
    return ChaosResult(
        config=config,
        bounds=bounds,
        verdict=monitor.verdict(),
        violations=list(monitor.violations),
        chaos_summary=chaos.summary() if chaos is not None else {},
        link_stats=chaos.link_stats() if chaos is not None else {},
        probes=len(precisions),
        mean_precision=sum(precisions) / len(precisions) if precisions else 0.0,
        max_precision=worst.precision if worst else 0.0,
        max_precision_at=worst.time if worst else 0,
        bound_violations=len(
            testbed.series.violations(bounds.bound_with_error)
        ),
        injections=injections,
        fastforward=testbed.fastforward_summary(),
    )


# ----------------------------------------------------------------------
# Multi-arm chaos studies on the submit → schedule → collect pipeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosArmRow:
    """Compact, JSON-round-trippable summary of one chaos arm.

    A full :class:`ChaosResult` holds live objects (monitor verdict,
    violation records, the config itself) and is too heavy for the
    content-addressed job-result store; a study arm keeps the headline
    figures plus a ``digest`` of the arm's canonical result document, so
    two runs of the same arm can still be compared byte-for-byte without
    storing the document.
    """

    label: str
    seed: int
    verdict: str
    probes: int
    mean_precision_ns: float
    max_precision_ns: float
    bound_ns: float
    bound_violations: int
    #: SHA-256 of ``json.dumps(result.to_dict(), sort_keys=True,
    #: default=repr)`` — byte-level provenance of the full document.
    digest: str

    @property
    def bounded(self) -> bool:
        return self.bound_violations == 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (keys match field names so cached rows
        rehydrate via ``ChaosArmRow(**d)``)."""
        return {
            "label": self.label,
            "seed": self.seed,
            "verdict": self.verdict,
            "probes": self.probes,
            "mean_precision_ns": self.mean_precision_ns,
            "max_precision_ns": self.max_precision_ns,
            "bound_ns": self.bound_ns,
            "bound_violations": self.bound_violations,
            "digest": self.digest,
        }


def result_digest(result: ChaosResult) -> str:
    """Canonical SHA-256 of a chaos result document."""
    doc = json.dumps(result.to_dict(), sort_keys=True, default=repr)
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _run_chaos_job(
    config: ChaosExperimentConfig, label: str, metrics=None
) -> ChaosArmRow:
    """Job body: one chaos arm, compressed to a :class:`ChaosArmRow`.

    Module-level (picklable) so it survives the ``spawn`` start method;
    only the compact row crosses the process boundary.
    """
    result = run_chaos_experiment(config, metrics=metrics)
    return ChaosArmRow(
        label=label,
        seed=config.seed,
        verdict=result.verdict.status,
        probes=result.probes,
        mean_precision_ns=result.mean_precision,
        max_precision_ns=result.max_precision,
        bound_ns=result.bounds.bound_with_error,
        bound_violations=result.bound_violations,
        digest=result_digest(result),
    )


def _chaos_cache_key(config: ChaosExperimentConfig) -> str:
    from repro.parallel import config_fingerprint

    return config_fingerprint("chaos-study", config)


def _summarize_chaos_row(row: "ChaosArmRow") -> Dict[str, object]:
    """Ledger/progress info line for one chaos arm."""
    return {
        "verdict": row.verdict,
        "bounded": row.bounded,
        "max_precision_ns": row.max_precision_ns,
    }


def compile_chaos_study(
    configs: Sequence[ChaosExperimentConfig],
    labels: Optional[Sequence[str]] = None,
):
    """Compile a set of chaos arms into the study pipeline.

    One content-addressed job per :class:`ChaosExperimentConfig`; the
    collector returns :class:`ChaosArmRow`\\ s in ``configs`` order.
    ``labels`` defaults to ``seed=N`` per arm.
    """
    from repro.studies.core import Job, Study, StudyPlan

    if not configs:
        raise ValueError("chaos study needs at least one config")
    if labels is None:
        labels = [f"seed={config.seed}" for config in configs]
    if len(labels) != len(configs):
        raise ValueError("labels must match configs one-to-one")
    jobs = tuple(
        Job(
            key=_chaos_cache_key(config),
            fn=_run_chaos_job,
            args=(config, label),
            label=label,
            kind="chaos",
            seed=config.seed,
            accepts_metrics=True,
        )
        for config, label in zip(configs, labels)
    )
    study = Study(
        name="chaos",
        jobs=jobs,
        encode=lambda row: row.as_dict(),
        decode=lambda doc: ChaosArmRow(**doc),
        summarize=_summarize_chaos_row,
        metrics_prefix="chaos",
    )

    def collect(run) -> List[ChaosArmRow]:
        return run.collected()

    return StudyPlan(study=study, collect=collect)


def run_chaos_study(
    configs: Sequence[ChaosExperimentConfig],
    labels: Optional[Sequence[str]] = None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    cache=None,
    metrics=None,
    ledger=None,
    progress=None,
    compile_only: bool = False,
) -> List[ChaosArmRow]:
    """Run a multi-arm chaos study through the resumable pipeline.

    Each arm is one :func:`run_chaos_experiment` call, content-addressed
    by its full config fingerprint, deduplicated against the job-result
    store, and journaled to an optional ``ledger`` for resume. For a
    single interactive run with the full result document, call
    :func:`run_chaos_experiment` directly — this study path trades the
    rich :class:`ChaosResult` for compact, cacheable rows.
    """
    from repro.studies.runner import run_study

    plan = compile_chaos_study(configs, labels=labels)
    if compile_only:
        return plan
    run = run_study(
        plan.study,
        executor=executor,
        max_workers=max_workers,
        task_timeout=task_timeout,
        cache=cache,
        metrics=metrics,
        ledger=ledger,
        progress=progress,
        on_error="raise",
    )
    return plan.collect(run)

"""The cyber-resilience experiment (§III-B, Fig. 3a / Fig. 3b).

An attacker with user credentials on two virtual grandmasters runs the
CVE-2018-18955 root exploit against ``c4_1`` at 00:21:42 h and ``c1_1`` at
00:31:52 h, replacing compromised GMs' ptp4l with malicious instances that
shift preciseOriginTimestamp by −24 µs.

* **Identical kernels** (Fig. 3a): both exploits succeed. The FTA masks the
  first Byzantine GM; the second breaks the f = 1 budget — the two malicious
  domains vouch for each other through the validity check, the aggregate is
  poisoned every interval, and the measured precision blows through
  Π = 2(E + Γ) and keeps growing.
* **Diverse kernels** (Fig. 3b): only ``c4_1`` runs the exploitable
  v4.19.1; the second exploit fails and the system stays masked, bounded by
  Π + γ for the whole hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.aggregate import AggregateBucket, aggregate_series
from repro.measurement.bounds import ExperimentBounds
from repro.measurement.precision import PrecisionRecord
from repro.security.attacker import Attacker, AttackerConfig, ExploitAttempt
from repro.sim.timebase import (
    HOURS,
    MICROSECONDS,
    MINUTES,
    SECONDS,
    format_hms,
    parse_hms,
)
from repro.experiments.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class CyberExperimentConfig:
    """Parameters of the §III-B run.

    Times follow the paper's runtime clock (``parse_hms`` accepts the
    paper's notation). ``duration`` defaults to the paper's 1 h; scaled-down
    runs shrink the attack times proportionally via ``scaled``.
    """

    kernel_policy: str = "identical"  # Fig. 3a; "diverse" gives Fig. 3b
    duration: int = 1 * HOURS
    first_attack: int = parse_hms("00:21:42")
    second_attack: int = parse_hms("00:31:52")
    first_target: str = "c4_1"
    second_target: str = "c1_1"
    origin_shift: int = -24 * MICROSECONDS
    seed: int = 1
    settle_margin: int = 60 * SECONDS  # skipped after each attack when judging windows

    def scaled(self, factor: float) -> "CyberExperimentConfig":
        """Proportionally compress the timeline (CI-scale runs)."""
        return CyberExperimentConfig(
            kernel_policy=self.kernel_policy,
            duration=round(self.duration * factor),
            first_attack=round(self.first_attack * factor),
            second_attack=round(self.second_attack * factor),
            first_target=self.first_target,
            second_target=self.second_target,
            origin_shift=self.origin_shift,
            seed=self.seed,
            settle_margin=min(self.settle_margin, round(self.duration * factor) // 20),
        )


@dataclass
class CyberResult:
    """Everything Fig. 3 plots plus the verdicts the paper draws."""

    config: CyberExperimentConfig
    bounds: ExperimentBounds
    records: List[PrecisionRecord]
    buckets: List[AggregateBucket]
    attempts: List[ExploitAttempt]
    max_before_attacks: float
    max_between_attacks: float
    max_after_second: float
    final_precision: float

    @property
    def first_attack_masked(self) -> bool:
        """Did the FTA hold the line between the two exploits?"""
        return self.max_between_attacks <= self.bounds.bound_with_error

    @property
    def second_attack_violates(self) -> bool:
        """Did the second exploit break the bound (expected iff identical)?"""
        return self.max_after_second > self.bounds.bound_with_error

    @property
    def compromised(self) -> List[str]:
        """Successfully exploited VMs."""
        return [a.target for a in self.attempts if a.succeeded]

    def to_text(self) -> str:
        """Paper-style summary."""
        lines = [
            f"cyber-resilience experiment ({self.config.kernel_policy} kernels)",
            self.bounds.describe(),
            f"exploits: "
            + ", ".join(
                f"{a.target}@{format_hms(a.time)}:"
                f"{'root' if a.succeeded else 'FAILED'}"
                for a in self.attempts
            ),
            f"max Π* before attacks:   {self.max_before_attacks:14.1f} ns",
            f"max Π* between attacks:  {self.max_between_attacks:14.1f} ns"
            f" ({'masked' if self.first_attack_masked else 'VIOLATION'})",
            f"max Π* after 2nd attack: {self.max_after_second:14.1f} ns"
            f" ({'VIOLATION' if self.second_attack_violates else 'bounded'})",
            f"final Π*:                {self.final_precision:14.1f} ns",
        ]
        return "\n".join(lines)


def run_cyber_experiment(
    config: Optional[CyberExperimentConfig] = None,
    testbed_config: Optional[TestbedConfig] = None,
    scenario=None,
) -> CyberResult:
    """Run §III-B end to end and evaluate the attack windows.

    ``scenario`` (a spec, registered name, or JSON path) supplies the
    testbed when ``testbed_config`` is not given; the experiment's
    ``kernel_policy`` knob overrides the scenario's, since identical-vs-
    diverse is the variable under test here.
    """
    config = config if config is not None else CyberExperimentConfig()
    if not config.first_attack < config.second_attack < config.duration:
        raise ValueError("attack times must be ordered and inside the run")
    if testbed_config is not None:
        tb_config = testbed_config
    elif scenario is not None:
        from repro.scenarios import resolve_scenario

        tb_config = resolve_scenario(scenario).testbed_config(
            seed=config.seed, kernel_policy=config.kernel_policy
        )
    else:
        tb_config = TestbedConfig(
            seed=config.seed, kernel_policy=config.kernel_policy
        )
    testbed = Testbed(tb_config)
    attacker = Attacker(
        testbed.sim,
        {name: testbed.vms[name] for name in (config.first_target, config.second_target)},
        AttackerConfig(
            origin_shift=config.origin_shift,
            exploit_times={
                config.first_target: config.first_attack,
                config.second_target: config.second_attack,
            },
        ),
        trace=testbed.trace,
    )
    attacker.arm()
    testbed.run_until(config.duration)

    bounds = testbed.derive_bounds()
    records = list(testbed.series.records)

    def window_max(start: int, end: int) -> float:
        values = [r.precision for r in records if start <= r.time < end]
        return max(values) if values else 0.0

    margin = config.settle_margin
    return CyberResult(
        config=config,
        bounds=bounds,
        records=records,
        buckets=aggregate_series(
            testbed.series.series(), bucket=max(config.duration // 30, SECONDS)
        ),
        attempts=list(attacker.attempts),
        max_before_attacks=window_max(0, config.first_attack),
        max_between_attacks=window_max(
            config.first_attack + margin, config.second_attack
        ),
        max_after_second=window_max(config.second_attack + margin, config.duration),
        final_precision=records[-1].precision if records else float("nan"),
    )

"""The fault injection experiment (§III-C, Fig. 4a/4b and Fig. 5).

A long continuous run under the paper's fault schedule: rotating fail-silent
grandmaster shutdowns, random fail-silent redundant VM shutdowns (never both
VMs of a node at once), plus calibrated transient software faults
(tx-timestamp timeouts, launch deadline misses). Expected outcome: the
measured precision Π* never exceeds Π + γ — every fault is masked by the
FTA (GM failures) or the dependent-clock takeover (active VM failures).

The result carries everything the paper's figures show: the 120 s
avg/min/max series (Fig. 4a), the value distribution (Fig. 4b), the worst
interval with an event timeline around it (Fig. 5), the fault counts, and
the derived bounds.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.aggregate import AggregateBucket, aggregate_series
from repro.analysis.histogram import HistogramResult, histogram
from repro.analysis.timeline import EventTimeline, extract_timeline
from repro.faults.injector import FaultInjectionConfig, FaultInjector
from repro.faults.transient import TransientFaultPlan, calibrate_transients
from repro.measurement.bounds import ExperimentBounds
from repro.measurement.precision import PrecisionRecord
from repro.monitoring.invariants import InvariantMonitor, InvariantSpec, Verdict
from repro.sim.timebase import HOURS, MINUTES, SECONDS, format_hms
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.scenarios import ScenarioSpec


@dataclass(frozen=True)
class FaultInjectionExperimentConfig:
    """Parameters of the §III-C run.

    ``duration`` defaults to the paper's 24 h; CI-scale runs pass fewer
    hours and (optionally) a compressed injector schedule. Transient-fault
    probabilities stay duration-independent (they are per-event), so counts
    scale linearly with duration as in the paper.
    """

    duration: int = 24 * HOURS
    seed: int = 1
    injector: FaultInjectionConfig = FaultInjectionConfig()
    transients: Optional[TransientFaultPlan] = None  # None → paper calibration
    aggregate_bucket: int = 120 * SECONDS
    timeline_window: int = 1 * HOURS
    #: Optional scenario the testbed is built from (None → paper mesh4).
    scenario: Optional[ScenarioSpec] = None
    #: Online invariant monitor configuration (always attached; the
    #: monitor is draw-free and state-free, so it never perturbs results).
    invariants: InvariantSpec = InvariantSpec()

    def scaled(self, hours: float) -> "FaultInjectionExperimentConfig":
        """A shorter run with the fault schedule compressed to match.

        The compressed schedule keeps the *per-run* number of faults in the
        same proportion so short runs still exercise GM failures, takeovers
        and re-integrations.
        """
        factor = hours / 24.0
        duration = round(24 * HOURS * factor)
        # Denser than the paper, but never beyond the paper's own per-node
        # cap of 12 random failures per hour with 5-minute gaps — beyond
        # that the "sibling is a valid backup" precondition of the fail-
        # silent hypothesis stops holding and skips dominate.
        injector = FaultInjectionConfig(
            gm_shutdown_period=max(
                3 * MINUTES, round(self.injector.gm_shutdown_period * factor)
            ),
            redundant_rate_per_hour=min(
                12.0, self.injector.redundant_rate_per_hour / factor
            ),
            min_gap=self.injector.min_gap,
            exclude=self.injector.exclude,
            initial_delay=max(MINUTES, round(self.injector.initial_delay * factor)),
        )
        return FaultInjectionExperimentConfig(
            duration=duration,
            seed=self.seed,
            injector=injector,
            transients=self.transients,
            aggregate_bucket=max(10 * SECONDS, round(self.aggregate_bucket * factor)),
            timeline_window=max(5 * MINUTES, round(self.timeline_window * factor)),
            scenario=self.scenario,
            invariants=self.invariants,
        )


@dataclass
class FaultInjectionResult:
    """Everything Figs. 4–5 and the §III-C text report."""

    config: FaultInjectionExperimentConfig
    bounds: ExperimentBounds
    records: List[PrecisionRecord]
    buckets: List[AggregateBucket]
    distribution: HistogramResult
    timeline: EventTimeline
    injections: Dict[str, int]
    takeovers: int
    tx_timeouts: int
    deadline_misses: int
    violations: int
    max_precision: float
    max_precision_at: int
    verdict: Verdict = field(default_factory=Verdict)

    @property
    def bounded(self) -> bool:
        """The §III-C claim: Π* stays within Π + γ throughout."""
        return self.violations == 0

    def to_text(self) -> str:
        """Paper-style summary block."""
        boot = self.config
        lines = [
            f"fault injection experiment, {boot.duration / HOURS:.2f} h",
            self.bounds.describe(),
            f"precision: avg={self.distribution.mean:.0f}ns "
            f"std={self.distribution.std:.0f}ns min={self.distribution.minimum:.0f}ns "
            f"max={self.distribution.maximum:.0f}ns over {self.distribution.n} probes",
            f"max Π* = {self.max_precision:.0f}ns at {format_hms(self.max_precision_at)} "
            f"({'within' if self.bounded else 'VIOLATES'} Π+γ="
            f"{self.bounds.bound_with_error:.0f}ns; {self.violations} violations)",
            f"fail-silent injections: {self.injections['fail_silent_total']} "
            f"({self.injections['gm_failures']} grandmaster, "
            f"{self.injections['redundant_failures']} redundant, "
            f"{self.injections['skipped']} skipped)",
            f"takeovers: {self.takeovers}",
            f"transient faults: {self.tx_timeouts} tx-timestamp timeouts, "
            f"{self.deadline_misses} deadline misses",
            self.verdict.describe(),
        ]
        return "\n".join(lines)


#: Wall-clock histogram edges, seconds (1-2-5 over eight decades).
_WALL_S_BUCKETS = [
    m * 10.0 ** d for d in range(-3, 5) for m in (1, 2, 5)
]


def run_fault_injection_experiment(
    config: Optional[FaultInjectionExperimentConfig] = None,
    testbed_config: Optional[TestbedConfig] = None,
    metrics=None,
) -> FaultInjectionResult:
    """Run §III-C end to end.

    The testbed comes from ``testbed_config`` when given, else from
    ``config.scenario``, else from the paper's mesh4 defaults. A scenario
    without its own fault plan still gets the paper-calibrated transient
    pressure — this is the fault-injection experiment.

    ``metrics`` (an optional :class:`repro.metrics.MetricsRegistry`)
    enables in-sim instrumentation for the run plus per-run wall-time and
    event-throughput series; it never alters the simulation itself.
    """
    config = config if config is not None else FaultInjectionExperimentConfig()
    wall_start = time.perf_counter() if metrics is not None else 0.0
    transients = config.transients or calibrate_transients()
    if testbed_config is not None:
        # An explicit testbed_config wins over config.scenario — but the
        # two must agree on the fault hypothesis, or the monitor would
        # grade the valid floor with a different f than the scenario
        # declares. This used to pass silently.
        if (
            config.scenario is not None
            and testbed_config.aggregator.f != config.scenario.f
        ):
            raise ValueError(
                f"fault hypothesis mismatch: scenario "
                f"{config.scenario.name!r} declares f={config.scenario.f} "
                f"but testbed_config aggregates with "
                f"f={testbed_config.aggregator.f}"
            )
        tb_config = testbed_config
    elif config.scenario is not None:
        tb_config = config.scenario.testbed_config(seed=config.seed)
        if tb_config.transients is None:
            tb_config = dataclasses.replace(tb_config, transients=transients)
    else:
        tb_config = TestbedConfig(
            seed=config.seed,
            kernel_policy="diverse",
            transients=transients,
        )
    testbed = Testbed(tb_config, metrics=metrics)
    injector_config = config.injector
    if testbed.measurement_vm_name not in injector_config.exclude:
        # Keep the probe stream alive, as the paper's continuous series implies.
        injector_config = FaultInjectionConfig(
            gm_shutdown_period=injector_config.gm_shutdown_period,
            redundant_rate_per_hour=injector_config.redundant_rate_per_hour,
            min_gap=injector_config.min_gap,
            exclude=tuple(injector_config.exclude) + (testbed.measurement_vm_name,),
            initial_delay=injector_config.initial_delay,
        )
    injector = FaultInjector(
        testbed.sim,
        list(testbed.nodes.values()),
        injector_config,
        testbed.rng.stream("fault-injector"),
        testbed.trace,
    )
    injector.start()
    monitor = InvariantMonitor(
        testbed,
        config.invariants,
        metrics=metrics,
        f=config.scenario.f if config.scenario is not None else None,
    )
    monitor.start()
    testbed.run_until(config.duration)

    if metrics is not None:
        testbed.publish_metrics()
        wall = time.perf_counter() - wall_start
        metrics.counter("experiment.runs").inc()
        metrics.counter("experiment.events_dispatched").inc(
            testbed.sim.dispatched_events
        )
        metrics.histogram(
            "experiment.run_wall_s", edges=_WALL_S_BUCKETS
        ).observe(wall)
        if wall > 0:
            metrics.gauge("experiment.events_per_sec").set(
                testbed.sim.dispatched_events / wall
            )

    bounds = testbed.derive_bounds()
    records = list(testbed.series.records)
    precisions = [r.precision for r in records]
    dist = histogram(precisions) if precisions else histogram([0.0])
    worst = testbed.series.max_record()
    max_at = worst.time if worst else 0
    half_window = config.timeline_window // 2
    window_start = max(0, max_at - half_window)
    timeline = extract_timeline(
        testbed.trace,
        start=window_start,
        end=min(config.duration, window_start + config.timeline_window),
        gm_domain_of=testbed.gm_domain_of(),
    )
    return FaultInjectionResult(
        config=config,
        bounds=bounds,
        records=records,
        buckets=aggregate_series(testbed.series.series(), config.aggregate_bucket),
        distribution=dist,
        timeline=timeline,
        injections=injector.summary(),
        takeovers=testbed.trace.count(category="hypervisor.takeover"),
        tx_timeouts=testbed.trace.count(category="ptp4l.tx_timeout"),
        deadline_misses=testbed.trace.count(category="ptp4l.deadline_miss"),
        violations=len(testbed.series.violations(bounds.bound_with_error)),
        max_precision=worst.precision if worst else 0.0,
        max_precision_at=max_at,
        verdict=monitor.verdict(),
    )

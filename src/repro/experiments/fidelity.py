"""Adaptive-fidelity execution: analytic fast-forward through quiescence.

Full event-level simulation spends most of a long steady-state run
re-deriving the same fact: every servo is locked, every domain is valid,
and the FTA keeps pulling the cohort onto its consensus. The
:class:`AdaptiveEngine` detects those quiescent stretches and skips them —
it retimes all periodic work with :meth:`~repro.sim.kernel.Simulator.
fast_forward`, applies one closed-form state update (clocks stepped onto
the FTA consensus, offset slots refilled, gates re-closed, CLOCK_SYNCTIME
republished), and synthesizes the 1 Hz precision records the skipped span
would have produced by holding the recent measured precision.

Soundness contract
------------------
A jump happens only when the engine can argue the skipped span is
*uneventful by construction*:

* every VM is running, uncompromised, in fault-tolerant mode, servo LOCKED,
  with every domain currently voted valid (so the analytic update's
  all-valid rewrite changes nothing the monitor is counting);
* no link is down or impaired, and the scenario carries no transient-fault
  pressure (per-event fault probabilities are incompatible with skipping —
  they make every interval a potential transient);
* measurement is underway (past ``measurement_start``, probes flowing,
  enough records to hold a precision level);
* no *structural* event — chaos stage, fault-plan tick, attack attempt,
  VM boot — is scheduled inside the jump window. Structural events are
  found by scanning the kernel queue for one-shot entries beyond the
  transient slack; the engine clips the horizon so they always execute at
  full event-level fidelity.

The default fidelity everywhere remains ``"full"``; adaptive mode trades
bit-exactness for wall time under a documented tolerance (equivalence is
pinned by ``tests/test_fidelity.py``: identical monitor verdicts and a
bounded synctime-error delta across seeds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.aggregator import AggregatorMode
from repro.core.fta import AGGREGATORS
from repro.gptp.instance import OffsetSample
from repro.gptp.servo import ServoState
from repro.measurement.precision import PrecisionRecord
from repro.sim.timebase import MILLISECONDS, SECONDS

if TYPE_CHECKING:
    from repro.experiments.testbed import Testbed

#: Jumps shorter than this are not worth the analytic update.
MIN_JUMP = 5 * SECONDS
#: Upper bound per jump: re-check quiescence at least this often.
MAX_JUMP = 30 * SECONDS
#: Event-level cadence between jump attempts (doubles as the post-jump
#: re-lock window: after landing, at least one full check interval runs at
#: event level before the next jump).
CHECK_INTERVAL = 1 * SECONDS
#: One-shot events this close to now are in-flight transients (packet
#: deliveries, tx-timestamp callbacks, FollowUp timeouts at 125 ms, probe
#: finalization at 100 ms) — never structural.
TRANSIENT_SLACK = 150 * MILLISECONDS
#: Minimum recorded probes before a held precision level is trustworthy.
MIN_RECORDS = 5
#: Recent records averaged into the held precision for synthesized probes.
HOLD_WINDOW = 10


class AdaptiveEngine:
    """Drives a testbed's simulator, fast-forwarding quiescent stretches."""

    def __init__(self, testbed: "Testbed") -> None:
        self.testbed = testbed
        self.sim = testbed.sim
        cfg = testbed.config
        self._aggregate = AGGREGATORS[cfg.aggregator.aggregation]
        self._f = cfg.aggregator.f
        # Per-event fault probabilities poison every window; such runs
        # execute at full fidelity regardless of the requested tier.
        t = cfg.transients
        self._transient_pressure = t is not None and (
            t.tx_timestamp_fail_prob > 0 or t.deadline_miss_prob > 0
        )
        self.jumps = 0
        self.skipped_ns = 0
        self.synthesized_probes = 0
        self.checks = 0

    # ------------------------------------------------------------------
    def run_until(self, end: int) -> None:
        """Advance to ``end``, jumping over provably quiescent stretches."""
        sim = self.sim
        while sim.now < end:
            sim.run_until(min(end, sim.now + CHECK_INTERVAL))
            if sim.now >= end:
                break
            self.checks += 1
            if not self._quiescent():
                continue
            horizon = self._clip_structural(min(end, sim.now + MAX_JUMP))
            if horizon - sim.now < MIN_JUMP:
                continue
            self._jump(horizon)

    def summary(self) -> Dict[str, int]:
        """Fast-forward statistics for manifests and result documents."""
        return {
            "jumps": self.jumps,
            "skipped_ns": self.skipped_ns,
            "synthesized_probes": self.synthesized_probes,
            "quiescence_checks": self.checks,
        }

    # ------------------------------------------------------------------
    # Quiescence detection
    # ------------------------------------------------------------------
    def _quiescent(self) -> bool:
        tb = self.testbed
        if self._transient_pressure:
            return False
        if self.sim.now < tb.config.measurement_start:
            return False
        probe_task = tb.probe_service._task
        if not probe_task.running:
            return False
        if len(tb.series.records) < MIN_RECORDS:
            return False
        for name in sorted(tb.vms):
            vm = tb.vms[name]
            if not vm.running or vm.compromised or vm.param_corruption:
                return False
            agg = vm.aggregator
            if agg.mode is not AggregatorMode.FAULT_TOLERANT:
                return False
            if agg.servo.state is not ServoState.LOCKED:
                return False
            # Every domain must currently be voted valid on every VM. The
            # analytic update rewrites the validity flags to all-True, so
            # jumping while any domain is invalid (e.g. staleness right
            # after an impairment clears) would wipe state the monitor's
            # domain_health counter is tracking — full fidelity would keep
            # counting; adaptive would silently reset. With this gate the
            # flags are already all-True whenever a jump happens, so the
            # rewrite is a no-op and the counters evolve identically.
            flags = agg.last_valid_flags
            if not flags or not all(flags.values()):
                return False
        topo = tb.topology
        for link in topo.trunks.values():
            if not link.up or link.impairment is not None:
                return False
        for link in topo.access_links.values():
            if not link.up or link.impairment is not None:
                return False
        return True

    def _clip_structural(self, horizon: int) -> int:
        """Pull the horizon in front of the next structural one-shot event.

        Periodic timers and jittered tasks are retimed by the kernel;
        anything else queued beyond the transient slack — chaos stages,
        fault-injector ticks, attack attempts, boot completions — must run
        at event level, so the jump stops just short of it.
        """
        sim = self.sim
        cutoff = sim.now + TRANSIENT_SLACK
        task_handles = {
            id(task._handle)
            for task in sim._tasks
            if getattr(task, "_handle", None) is not None
        }
        for entry in sim._queue:
            time = entry[0]
            if time <= cutoff or time >= horizon:
                continue
            handle = entry[2]
            if handle is not None:
                if handle.cancelled or handle.interval > 0:
                    continue
                if id(handle) in task_handles:
                    continue
            horizon = max(sim.now, time - 1)
        return horizon

    # ------------------------------------------------------------------
    # The jump
    # ------------------------------------------------------------------
    def _jump(self, to_time: int) -> None:
        sim = self.sim
        start = sim.now
        probe_handle = self.testbed.probe_service._task._handle
        old_next = probe_handle.time if probe_handle is not None else None
        sim.fast_forward(to_time)
        new_next = probe_handle.time if probe_handle is not None else None
        # Sweep the in-flight transients (deliveries, FollowUp timeouts,
        # probe finalizations) at their original, event-level times, then
        # land at the horizon.
        sim.run_until(to_time)
        self._analytic_update()
        if old_next is not None and new_next is not None:
            self._synthesize_probes(old_next, new_next)
        self.jumps += 1
        self.skipped_ns += to_time - start

    def _analytic_update(self) -> None:
        """Closed-form stand-in for the skipped span's gate fires.

        In quiescence every FTA round pulls each clock onto the consensus
        of the grandmaster clocks (the FTA is translation-equivariant, so
        per-VM measured offsets aggregate to exactly ``consensus − local``).
        The update applies that fixed point directly: step every PHC onto
        the consensus, refill each FTSHMEM with fresh zero-ish samples,
        re-close the gates at the stepped local times, and republish
        CLOCK_SYNCTIME so dependent-clock consumers (probe responders, the
        hypervisor monitor) observe a continuous timebase.
        """
        tb = self.testbed
        vms = tb.vms
        gm_clock = {
            d.number: vms[d.gm_identity].nic.clock for d in tb.domains
        }
        gm_identity = {d.number: d.gm_identity for d in tb.domains}
        values = [float(gm_clock[n].time()) for n in sorted(gm_clock)]
        consensus = self._aggregate(values, self._f).value
        # Pass 1: step every PHC onto the consensus (GMs included — they
        # aggregate toward it too when aggregate_on_gms is set, and their
        # mutual spread is bounded by the locked-precision band we are
        # replacing anyway).
        for name in sorted(vms):
            clock = vms[name].nic.clock
            delta = round(consensus - clock.time())
            if delta:
                clock.step(delta)
        # Pass 2: refill every FTSHMEM as a completed aggregation round
        # would have left it, and re-close the gate at the local time so
        # the eq. 2.1 cadence resumes on schedule.
        domains = sorted(gm_clock)
        for name in sorted(vms):
            vm = vms[name]
            now_local = vm.nic.clock.time()
            shmem = vm.aggregator.shmem
            for number in domains:
                master = gm_clock[number].time()
                shmem.store(
                    OffsetSample(
                        domain=number,
                        gm_identity=gm_identity[number],
                        offset=float(now_local - master),
                        origin_timestamp=int(master),
                        local_rx_timestamp=int(now_local),
                    ),
                    now_local,
                )
            shmem.valid = {number: True for number in shmem.domains}
            vm.aggregator.last_valid_flags = dict(shmem.valid)
            shmem.close_gate(now_local)
        # Pass 3: republish CLOCK_SYNCTIME against the stepped PHCs so
        # reads extrapolate from post-jump anchors (and the dependent-clock
        # monitor's staleness counter restarts from fresh generations).
        for name in sorted(vms):
            vm = vms[name]
            if vm.running:
                vm.phc2sys._tick()

    def _synthesize_probes(self, old_next: int, new_next: int) -> None:
        """Backfill the 1 Hz precision series across the skipped span.

        The held value is the mean of the last few measured precisions —
        in quiescence the series is stationary, which is exactly the
        argument that allowed the jump. Synthesized records carry no
        per-VM readings and grade through the invariant monitor like any
        measured record.
        """
        tb = self.testbed
        service = tb.probe_service
        period = service._task.period
        records = tb.series.records
        if not records or new_next <= old_next:
            return
        recent = records[-HOLD_WINDOW:]
        hold = sum(r.precision for r in recent) / len(recent)
        n_receivers = recent[-1].n_receivers
        t = old_next
        while t < new_next:
            service._seq += 1
            service.probes_sent += 1
            records.append(
                PrecisionRecord(
                    seq=service._seq,
                    time=t,
                    precision=hold,
                    n_receivers=n_receivers,
                    readings=None,
                )
            )
            self.synthesized_probes += 1
            t += period

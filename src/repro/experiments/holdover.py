"""Holdover experiment: total grandmaster loss.

The paper's fault hypothesis caps simultaneous failures at one clock
synchronization VM per node — all four GMs failing at once is outside it.
Operators still need to know the failure behaviour: with every time source
silent, each node's FTA has nothing fresh to aggregate, the engines *coast*
on their last disciplined frequency, and the nodes drift apart at residual-
trim + wander rate (µs per minute) instead of failing abruptly. When the
GMs return, re-integration pulls everyone back inside the bound.

This quantifies the architecture's graceful degradation — the practical
difference between "synchronization lost" and "synchronization decaying at
a characterizable rate".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.measurement.bounds import ExperimentBounds
from repro.sim.timebase import MINUTES, SECONDS
from repro.experiments.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class HoldoverConfig:
    """Scenario parameters."""

    seed: int = 1
    settle: int = 2 * MINUTES
    outage: int = 5 * MINUTES
    recovery: int = 4 * MINUTES


@dataclass
class HoldoverResult:
    """Outcome of the total-GM-loss scenario."""

    config: HoldoverConfig
    bounds: ExperimentBounds
    precision_before: float
    drift_series: List[Tuple[int, float]]  # (time into outage, Π*)
    worst_during_outage: float
    drift_rate_ns_per_s: float
    recovered_precision: float
    coasting_engines: int

    @property
    def degraded_gracefully(self) -> bool:
        """Drift stayed within the oscillator envelope (no blow-up)."""
        # Residual trim error is bounded by twice the 5 ppm oscillator cap
        # plus servo residue; 20 ppm of wiggle room separates "coasting"
        # from "diverging feedback".
        return abs(self.drift_rate_ns_per_s) < 20_000

    def to_text(self) -> str:
        """Summary block."""
        return "\n".join(
            [
                f"holdover: all GMs silent for {self.config.outage / 1e9:.0f} s",
                self.bounds.describe(),
                f"precision before outage:   {self.precision_before:.0f} ns",
                f"worst during outage:       {self.worst_during_outage:.0f} ns",
                f"observed drift rate:       {self.drift_rate_ns_per_s:.1f} ns/s "
                f"({'graceful' if self.degraded_gracefully else 'DIVERGENT'})",
                f"coasting FTA engines:      {self.coasting_engines}",
                f"precision after recovery:  {self.recovered_precision:.0f} ns",
            ]
        )


def run_holdover_experiment(
    config: HoldoverConfig = HoldoverConfig(),
    testbed_config: Optional[TestbedConfig] = None,
) -> HoldoverResult:
    """Kill every GM simultaneously, watch the coast, restore, re-measure."""
    testbed = Testbed(testbed_config or TestbedConfig(seed=config.seed))
    testbed.run_until(config.settle)
    before_records = [r.precision for r in testbed.series.records[-30:]]
    precision_before = max(before_records) if before_records else 0.0

    outage_start = testbed.sim.now
    for name in testbed.gm_names:
        # reboot=False: the outage lasts until we say otherwise.
        testbed.vms[name].fail_silent(reboot=False, reason="holdover")
    testbed.run_until(outage_start + config.outage)

    drift_series = [
        (r.time - outage_start, r.precision)
        for r in testbed.series.records
        if r.time >= outage_start
    ]
    worst = max((p for _, p in drift_series), default=0.0)
    # Fit the drift rate over the outage (least squares through the series).
    rate = _slope_ns_per_s(drift_series)
    # Coasting = running engines with nothing fresh to aggregate. (With no
    # Syncs at all the eq. 2.1 gate never even fires — the engine coasts by
    # absence, holding its last frequency trim.)
    coasting = 0
    for vm in testbed.vms.values():
        if not vm.running:
            continue
        aggregator = vm.aggregator
        fresh = aggregator.shmem.fresh_offsets(
            vm.nic.clock.time(), aggregator.config.validity.staleness
        )
        if not fresh:
            coasting += 1

    for name in testbed.gm_names:
        testbed.vms[name].start()
    recovery_start = testbed.sim.now
    testbed.run_until(recovery_start + config.recovery)
    tail = [
        r.precision
        for r in testbed.series.records
        if r.time >= recovery_start + config.recovery // 2
    ]
    return HoldoverResult(
        config=config,
        bounds=testbed.derive_bounds(),
        precision_before=precision_before,
        drift_series=drift_series,
        worst_during_outage=worst,
        drift_rate_ns_per_s=rate,
        recovered_precision=max(tail) if tail else float("nan"),
        coasting_engines=coasting,
    )


def _slope_ns_per_s(series: List[Tuple[int, float]]) -> float:
    """Least-squares slope of (time_ns, value_ns), returned per second."""
    n = len(series)
    if n < 2:
        return 0.0
    mean_t = sum(t for t, _ in series) / n
    mean_v = sum(v for _, v in series) / n
    stt = sum((t - mean_t) ** 2 for t, _ in series)
    if stt == 0:
        return 0.0
    stv = sum((t - mean_t) * (v - mean_v) for t, v in series)
    return (stv / stt) * 1e9

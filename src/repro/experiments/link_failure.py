"""Trunk-link failure experiment.

Fig. 2's mesh "ensur[es] redundant data paths" — but gPTP's per-domain
spanning trees are static under external port configuration, so a trunk
failure does not reroute: it silences the domains whose trees cross the
dead trunk for the nodes behind it. The architecture's answer is not
rerouting but *redundancy in time sources*: the affected VMs lose one of M
domains, staleness excludes it, and the FTA carries on with the rest.

This experiment kills one trunk (not incident to the measurement device, so
the probe paths stay alive), verifies which VMs lose which domain, checks
the measured precision stays within Π + γ throughout, and confirms full
recovery after the link comes back.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.measurement.bounds import ExperimentBounds
from repro.monitoring.invariants import InvariantMonitor, Verdict
from repro.sim.timebase import MINUTES, SECONDS
from repro.experiments.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class LinkFailureConfig:
    """Experiment parameters.

    ``trunk=None`` picks the first trunk (in topology construction order)
    not incident to the measurement switch — on the paper's mesh that is
    sw1–sw3, and the same rule finds a legal victim on every shape.
    """

    seed: int = 1
    trunk: Optional[Tuple[str, str]] = ("sw1", "sw3")
    settle: int = 2 * MINUTES
    outage: int = 3 * MINUTES
    recovery: int = 3 * MINUTES


@dataclass
class LinkFailureResult:
    """Outcome of the scenario."""

    config: LinkFailureConfig
    bounds: ExperimentBounds
    silenced: Dict[str, Set[int]]  # VM -> domains that went stale
    max_precision_during_outage: float
    max_precision_after_recovery: float
    violations: int
    recovered: bool
    verdict: Verdict = field(default_factory=Verdict)

    def to_text(self) -> str:
        """Summary block."""
        silenced = {
            vm: sorted(domains) for vm, domains in sorted(self.silenced.items())
            if domains
        }
        lines = [
            f"trunk failure {self.config.trunk[0]}–{self.config.trunk[1]} "
            f"for {self.config.outage / 1e9:.0f} s",
            self.bounds.describe(),
            f"silenced domains: {silenced}",
            f"max Π* during outage:  {self.max_precision_during_outage:.0f} ns",
            f"max Π* after recovery: {self.max_precision_after_recovery:.0f} ns",
            f"violations: {self.violations}  recovered: {self.recovered}",
            self.verdict.describe(),
        ]
        return "\n".join(lines)


def _stale_domains(testbed: Testbed) -> Dict[str, Set[int]]:
    """Per running VM: domains whose FTSHMEM slot is stale right now."""
    out: Dict[str, Set[int]] = {}
    for name, vm in testbed.vms.items():
        if not vm.running:
            continue
        aggregator = vm.aggregator
        now = vm.nic.clock.time()
        fresh = aggregator.shmem.fresh_offsets(
            now, aggregator.config.validity.staleness
        )
        out[name] = {
            d.number for d in testbed.domains if d.number not in fresh
        }
    return out


def run_link_failure_experiment(
    config: Optional[LinkFailureConfig] = None,
    testbed_config: Optional[TestbedConfig] = None,
    scenario=None,
) -> LinkFailureResult:
    """Run the experiment end to end.

    ``scenario`` (a spec, registered name, or JSON path) supplies the
    testbed when ``testbed_config`` is not given.
    """
    config = config if config is not None else LinkFailureConfig()
    if testbed_config is None and scenario is not None:
        from repro.scenarios import resolve_scenario

        testbed_config = resolve_scenario(scenario).testbed_config(
            seed=config.seed
        )
    testbed = Testbed(testbed_config or TestbedConfig(seed=config.seed))
    sw_m = f"sw{testbed.config.measurement_device}"
    victim = config.trunk
    if victim is None:
        victim = next(
            (pair for pair in testbed.topology.trunks if sw_m not in pair),
            None,
        )
        if victim is None:
            raise ValueError(
                "every trunk is incident to the measurement switch "
                f"({sw_m}); no legal victim trunk on this topology"
            )
        config = replace(config, trunk=victim)
    if sw_m in victim:
        raise ValueError(
            f"trunk {victim} carries the measurement VLAN ({sw_m}); "
            "pick a trunk not incident to the measurement device"
        )
    monitor = InvariantMonitor(testbed)
    monitor.start()
    testbed.run_until(config.settle)
    trunk = testbed.topology.trunk(*victim)
    trunk.set_up(False)
    outage_start = testbed.sim.now
    testbed.run_until(outage_start + config.outage)
    silenced = _stale_domains(testbed)
    trunk.set_up(True)
    recovery_start = testbed.sim.now
    testbed.run_until(recovery_start + config.recovery)

    bounds = testbed.derive_bounds()
    during = [
        r.precision
        for r in testbed.series.records
        if outage_start <= r.time < recovery_start
    ]
    after = [
        r.precision
        for r in testbed.series.records
        if r.time >= recovery_start + config.recovery // 2
    ]
    stale_after = _stale_domains(testbed)
    recovered = all(not domains for domains in stale_after.values())
    return LinkFailureResult(
        config=config,
        bounds=bounds,
        silenced=silenced,
        max_precision_during_outage=max(during) if during else 0.0,
        max_precision_after_recovery=max(after) if after else 0.0,
        violations=len(testbed.series.violations(bounds.bound_with_error)),
        recovered=recovered,
        verdict=monitor.verdict(),
    )

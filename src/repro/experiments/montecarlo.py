"""Multi-seed Monte-Carlo studies.

One run of the fault-injection experiment is one draw from the fault
schedule / network noise distribution. The paper reports a single 24 h run;
a simulation can afford many seeds and report *rates*: how often does any
probe violate Π + γ, what do the per-seed precision statistics look like,
how stable are the masked-fault counts.

The study uses independently forked RNG universes per seed, so arms are
statistically independent and individually reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    FaultInjectionResult,
    run_fault_injection_experiment,
)


@dataclass(frozen=True)
class SeedOutcome:
    """Per-seed summary of one fault-injection run."""

    seed: int
    bounded: bool
    violations: int
    mean_ns: float
    max_ns: float
    injections: int
    takeovers: int


@dataclass
class MonteCarloResult:
    """Aggregate over all seeds."""

    outcomes: List[SeedOutcome]

    @property
    def n(self) -> int:
        """Number of runs."""
        return len(self.outcomes)

    @property
    def bounded_rate(self) -> float:
        """Fraction of runs with zero bound violations."""
        return sum(1 for o in self.outcomes if o.bounded) / self.n

    @property
    def total_masked_faults(self) -> int:
        """Injected fail-silent faults across all runs."""
        return sum(o.injections for o in self.outcomes)

    def mean_of_means(self) -> float:
        """Average per-run mean precision."""
        return sum(o.mean_ns for o in self.outcomes) / self.n

    def worst_max(self) -> float:
        """Worst spike over every run."""
        return max(o.max_ns for o in self.outcomes)

    def max_percentile(self, q: float) -> float:
        """Percentile of the per-run maxima."""
        return percentile([o.max_ns for o in self.outcomes], q)

    def to_text(self) -> str:
        """Study summary block."""
        lines = [
            f"monte-carlo study over {self.n} seeds",
            f"runs fully within Π+γ: {sum(1 for o in self.outcomes if o.bounded)}"
            f"/{self.n} ({self.bounded_rate:.0%})",
            f"mean precision (avg over runs): {self.mean_of_means():.0f} ns",
            f"per-run max: p50={self.max_percentile(50):.0f} ns "
            f"p90={self.max_percentile(90):.0f} ns worst={self.worst_max():.0f} ns",
            f"masked fail-silent faults across runs: {self.total_masked_faults}",
        ]
        return "\n".join(lines)


def run_monte_carlo(
    seeds: Sequence[int],
    base_config: Optional[FaultInjectionExperimentConfig] = None,
    hours: float = 0.25,
    runner: Callable[..., FaultInjectionResult] = run_fault_injection_experiment,
) -> MonteCarloResult:
    """Run the (compressed) fault-injection experiment across seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    base = base_config or FaultInjectionExperimentConfig()
    outcomes: List[SeedOutcome] = []
    for seed in seeds:
        config = FaultInjectionExperimentConfig(
            duration=base.duration,
            seed=seed,
            injector=base.injector,
            transients=base.transients,
            aggregate_bucket=base.aggregate_bucket,
            timeline_window=base.timeline_window,
        ).scaled(hours)
        result = runner(config)
        outcomes.append(
            SeedOutcome(
                seed=seed,
                bounded=result.bounded,
                violations=result.violations,
                mean_ns=result.distribution.mean,
                max_ns=result.distribution.maximum,
                injections=result.injections["fail_silent_total"],
                takeovers=result.takeovers,
            )
        )
    return MonteCarloResult(outcomes=outcomes)

"""Multi-seed Monte-Carlo studies.

One run of the fault-injection experiment is one draw from the fault
schedule / network noise distribution. The paper reports a single 24 h run;
a simulation can afford many seeds and report *rates*: how often does any
probe violate Π + γ, what do the per-seed precision statistics look like,
how stable are the masked-fault counts.

The study uses independently forked RNG universes per seed, so arms are
statistically independent and individually reproducible — which also makes
them embarrassingly parallel. ``run_monte_carlo`` accepts an ``executor=``
strategy: ``"serial"`` (default) runs in-process; ``"process"`` shards the
seeds across a :class:`repro.parallel.WorkerPool` in chunks, with results
collected in seed order so the parallel study is bit-identical to the
serial one. An optional :class:`repro.parallel.ResultsCache` keyed by
``(config-hash, seed)`` skips seeds whose configuration has not changed.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import percentile
from repro.experiments.fault_injection import (
    FaultInjectionExperimentConfig,
    FaultInjectionResult,
    run_fault_injection_experiment,
)
from repro.metrics.manifest import RunManifest
from repro.monitoring.invariants import DEGRADED, FAIL, PASS, worst_status
from repro.parallel import ResultsCache, config_fingerprint
from repro.studies.core import Job, Study, StudyPlan
from repro.studies.runner import StudyRun, run_study


@dataclass(frozen=True)
class SeedOutcome:
    """Per-seed summary of one fault-injection run."""

    seed: int
    bounded: bool
    violations: int
    mean_ns: float
    max_ns: float
    injections: int
    takeovers: int
    #: Online invariant-monitor outcome of this arm (PASS/DEGRADED/FAIL).
    verdict: str = PASS


#: Interning map for verdict strings. Outcomes that crossed a pickle
#: boundary (process workers, the results cache) carry equal-but-distinct
#: status strings; rebinding them to the module constants keeps
#: ``pickle.dumps`` of a study byte-identical across executors.
_CANONICAL_STATUS = {PASS: PASS, DEGRADED: DEGRADED, FAIL: FAIL}


def _canonical(outcome: SeedOutcome) -> SeedOutcome:
    canon = _CANONICAL_STATUS.get(outcome.verdict, outcome.verdict)
    if canon is outcome.verdict:
        return outcome
    return replace(outcome, verdict=canon)


@dataclass
class MonteCarloResult:
    """Aggregate over all seeds."""

    outcomes: List[SeedOutcome]
    #: Provenance record, populated when the study ran with a metrics
    #: registry attached (pass it to ``write_metrics_json``).
    manifest: Optional[RunManifest] = None

    @property
    def n(self) -> int:
        """Number of runs."""
        return len(self.outcomes)

    @property
    def bounded_rate(self) -> float:
        """Fraction of runs with zero bound violations."""
        return sum(1 for o in self.outcomes if o.bounded) / self.n

    @property
    def total_masked_faults(self) -> int:
        """Injected fail-silent faults across all runs."""
        return sum(o.injections for o in self.outcomes)

    def mean_of_means(self) -> float:
        """Average per-run mean precision."""
        return sum(o.mean_ns for o in self.outcomes) / self.n

    def worst_max(self) -> float:
        """Worst spike over every run."""
        return max(o.max_ns for o in self.outcomes)

    def max_percentile(self, q: float) -> float:
        """Percentile of the per-run maxima."""
        return percentile([o.max_ns for o in self.outcomes], q)

    @property
    def verdict(self) -> str:
        """Worst per-arm monitor verdict across the study."""
        return worst_status(o.verdict for o in self.outcomes)

    def to_text(self) -> str:
        """Study summary block."""
        lines = [
            f"monte-carlo study over {self.n} seeds",
            f"runs fully within Π+γ: {sum(1 for o in self.outcomes if o.bounded)}"
            f"/{self.n} ({self.bounded_rate:.0%})",
            f"mean precision (avg over runs): {self.mean_of_means():.0f} ns",
            f"per-run max: p50={self.max_percentile(50):.0f} ns "
            f"p90={self.max_percentile(90):.0f} ns worst={self.worst_max():.0f} ns",
            f"masked fail-silent faults across runs: {self.total_masked_faults}",
            f"verdict: {self.verdict} (worst arm; "
            + ", ".join(
                f"{status}={count}" for status, count in sorted(
                    _status_counts(self.outcomes).items()
                )
            )
            + ")",
        ]
        return "\n".join(lines)


def _status_counts(outcomes: List[SeedOutcome]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Per-seed execution (shared verbatim by the serial and process paths)
# ----------------------------------------------------------------------
def _seed_config(
    base: FaultInjectionExperimentConfig, seed: int, hours: float
) -> FaultInjectionExperimentConfig:
    """The fully scaled configuration of one arm — also its cache identity."""
    return FaultInjectionExperimentConfig(
        duration=base.duration,
        seed=seed,
        injector=base.injector,
        transients=base.transients,
        aggregate_bucket=base.aggregate_bucket,
        timeline_window=base.timeline_window,
        scenario=base.scenario,
        invariants=base.invariants,
    ).scaled(hours)


def _outcome_of(seed: int, result: FaultInjectionResult) -> SeedOutcome:
    return SeedOutcome(
        seed=seed,
        bounded=result.bounded,
        violations=result.violations,
        mean_ns=result.distribution.mean,
        max_ns=result.distribution.maximum,
        injections=result.injections["fail_silent_total"],
        takeovers=result.takeovers,
        verdict=result.verdict.status,
    )


def _run_seed_job(
    config: FaultInjectionExperimentConfig,
    runner: Callable[..., FaultInjectionResult],
    metrics=None,
) -> SeedOutcome:
    """Job body: one scaled per-seed arm. Module-level (picklable) so it
    survives the ``spawn`` start method; only the compact
    :class:`SeedOutcome` crosses the process boundary — the full per-run
    record series stays in the worker.

    ``metrics`` is only ever non-None on the serial executor (registries
    do not cross processes); custom runners used with a registry must
    accept a ``metrics=`` keyword, exactly as before the pipeline.
    """
    if metrics is not None:
        return _outcome_of(config.seed, runner(config, metrics=metrics))
    return _outcome_of(config.seed, runner(config))


def _cache_key(config: FaultInjectionExperimentConfig,
               runner: Callable[..., FaultInjectionResult]) -> str:
    runner_id = getattr(runner, "__qualname__", repr(runner))
    return config_fingerprint("montecarlo", runner_id, config, config.seed)


def _summarize_outcome(outcome: SeedOutcome) -> Dict[str, object]:
    """Ledger/progress info line for one seed arm."""
    return {
        "verdict": outcome.verdict,
        "bounded": outcome.bounded,
        "max_ns": outcome.max_ns,
    }


def compile_monte_carlo(
    seeds: Sequence[int],
    base_config: Optional[FaultInjectionExperimentConfig] = None,
    hours: float = 0.25,
    runner: Callable[..., FaultInjectionResult] = run_fault_injection_experiment,
) -> StudyPlan:
    """Compile the Monte-Carlo study: one content-addressed job per seed.

    This is the *submit* stage of the pipeline — the returned
    :class:`StudyPlan` carries the frozen job set (keys identical to the
    historical per-seed cache keys, so pre-pipeline caches stay valid) and
    the collector that folds seed-ordered outcomes back into a
    :class:`MonteCarloResult`.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    base = base_config or FaultInjectionExperimentConfig()
    configs = [_seed_config(base, seed, hours) for seed in seeds]
    jobs = tuple(
        Job(
            key=_cache_key(config, runner),
            fn=_run_seed_job,
            args=(config, runner),
            label=f"seed={config.seed}",
            kind="montecarlo",
            seed=config.seed,
            accepts_metrics=True,
        )
        for config in configs
    )
    study = Study(
        name="montecarlo",
        jobs=jobs,
        encode=asdict,
        decode=lambda doc: SeedOutcome(**doc),
        summarize=_summarize_outcome,
        metrics_prefix="montecarlo",
    )
    wall_start = time.perf_counter()

    def collect(run: StudyRun, metrics=None, executor: str = "serial",
                cache: Optional[ResultsCache] = None) -> MonteCarloResult:
        outcomes = [_canonical(o) for o in run.collected()]
        manifest = None
        if metrics is not None:
            events = metrics.counters.get("experiment.events_dispatched")
            manifest = RunManifest(
                experiment="monte_carlo",
                config_fingerprint=_cache_key(base, runner),
                seeds=list(seeds),
                sim_duration_ns=configs[0].duration if configs else None,
                wall_time_s=time.perf_counter() - wall_start,
                events_dispatched=events.value if events is not None else None,
                scenario=base.scenario.name if base.scenario else None,
                scenario_fingerprint=(
                    base.scenario.fingerprint() if base.scenario else None
                ),
                verdict=worst_status(o.verdict for o in outcomes),
                verdict_detail={
                    "arms": _status_counts(outcomes),
                },
                extra={"hours": hours, "executor": executor,
                       "cached_arms": len(run.cached),
                       # A silent mid-run cache outage must not read as a
                       # cold cache downstream (satellite of ISSUE 9).
                       "cache_disabled": bool(cache is not None
                                              and cache.disabled)},
            )
        return MonteCarloResult(outcomes=outcomes, manifest=manifest)

    return StudyPlan(study=study, collect=collect)


def run_monte_carlo(
    seeds: Sequence[int],
    base_config: Optional[FaultInjectionExperimentConfig] = None,
    hours: float = 0.25,
    runner: Callable[..., FaultInjectionResult] = run_fault_injection_experiment,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    cache: Optional[ResultsCache] = None,
    metrics=None,
    ledger=None,
    progress=None,
) -> MonteCarloResult:
    """Run the (compressed) fault-injection experiment across seeds.

    A thin compiler over the study pipeline: the seeds compile into a
    frozen :class:`repro.studies.Study` (one job per seed, keyed by the
    historical ``(config-hash, seed)`` fingerprint), the scheduler dedupes
    against the job-result store and runs the rest, and outcomes collect
    in seed order — byte-identical to the pre-pipeline runner.

    Parameters
    ----------
    executor:
        ``"serial"`` runs every arm in-process; ``"process"`` shards the
        seeds across worker processes in chunks of
        ``~n_seeds / (4 * workers)``. Both produce identical results.
    max_workers:
        Worker count for the process executor (default: CPU count).
    task_timeout:
        Per-chunk wall-clock budget in seconds; a wedged worker is killed
        and its chunk retried once on a fresh process.
    cache:
        Optional :class:`ResultsCache`; hits skip the arm entirely.
    metrics:
        Optional :class:`repro.metrics.MetricsRegistry`. Serial arms run
        fully instrumented (in-sim histograms accumulate across seeds);
        process arms report per-chunk wall times only, since registries do
        not cross the process boundary. Either way the study gains per-arm
        timing, cache hit-rate gauges, and a :class:`RunManifest` on the
        result. Custom ``runner`` callables used together with ``metrics``
        must accept a ``metrics=`` keyword.
    ledger, progress:
        Optional :class:`repro.studies.StudyLedger` journal and streaming
        per-job callback, threaded straight to
        :func:`repro.studies.run_study`.
    """
    plan = compile_monte_carlo(seeds, base_config=base_config, hours=hours,
                               runner=runner)
    run = run_study(
        plan.study,
        executor=executor,
        max_workers=max_workers,
        task_timeout=task_timeout,
        cache=cache,
        metrics=metrics,
        ledger=ledger,
        progress=progress,
        on_error="raise",
    )
    return plan.collect(run, metrics=metrics, executor=executor, cache=cache)

"""Parameter-sweep studies over the testbed.

A small framework for the design-space questions DESIGN.md raises: how do
the precision bound and the measured steady-state precision move with the
domain count, the synchronization interval, the validity threshold, or the
aggregation function? Each sweep runs a short converged testbed per
parameter value and extracts a compact row; the ablation benches and the
CLI's ``sweep`` command print the assembled table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.chaos.plan import merge_plans, single_loss_plan
from repro.core.aggregator import AggregatorConfig
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.monitoring.invariants import (
    DEGRADED,
    PASS,
    InvariantMonitor,
    InvariantSpec,
)
from repro.scenarios import ScenarioSpec, resolve_scenario
from repro.parallel import ResultsCache, config_fingerprint
from repro.sim.timebase import MILLISECONDS, MINUTES, SECONDS
from repro.studies.core import Job, Study, StudyPlan
from repro.studies.runner import StudyRun, run_study


@dataclass(frozen=True)
class SweepRow:
    """One parameter point's outcome."""

    parameter: str
    value: Any
    bound_ns: float
    avg_precision_ns: float
    max_precision_ns: float
    converged: bool
    #: Online invariant-monitor outcome of the arm; a non-converged arm
    #: with a clean monitor still reads DEGRADED.
    verdict: str = PASS

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for CSV/JSON emission."""
        return {
            "parameter": self.parameter,
            "value": self.value,
            "bound_ns": self.bound_ns,
            "avg_precision_ns": self.avg_precision_ns,
            "max_precision_ns": self.max_precision_ns,
            "converged": self.converged,
            "verdict": self.verdict,
        }


def _measure(testbed: Testbed, duration: int, warmup_records: int) -> SweepRow:
    monitor = InvariantMonitor(testbed, metrics=testbed.metrics)
    monitor.start()
    testbed.run_until(duration)
    bounds = testbed.derive_bounds()
    records = testbed.series.records[warmup_records:]
    from repro.core.aggregator import AggregatorMode

    converged = all(
        vm.aggregator.mode is AggregatorMode.FAULT_TOLERANT
        for vm in testbed.vms.values()
    )
    if records:
        precisions = [r.precision for r in records]
        avg = sum(precisions) / len(precisions)
        worst = max(precisions)
    else:
        avg = worst = float("nan")
    verdict = monitor.verdict().status
    if not converged and verdict == PASS:
        verdict = DEGRADED
    return SweepRow(
        parameter="",
        value=None,
        bound_ns=bounds.precision_bound,
        avg_precision_ns=avg,
        max_precision_ns=worst,
        converged=converged,
        verdict=verdict,
    )


def _run_sweep_point(
    config: TestbedConfig, duration: int, warmup_records: int, metrics=None,
    fidelity: str = "full",
) -> SweepRow:
    """Worker task: one sweep arm. Module-level so it pickles under spawn.

    The parent materializes ``make_config(value)`` before dispatch, so only
    the frozen :class:`TestbedConfig` dataclass crosses the process
    boundary — the (often lambda) factory never has to be picklable.
    """
    testbed = Testbed(config, metrics=metrics, fidelity=fidelity)
    row = _measure(testbed, duration, warmup_records)
    if metrics is not None:
        testbed.publish_metrics()
        metrics.counter("experiment.runs").inc()
        metrics.counter("experiment.events_dispatched").inc(
            testbed.sim.dispatched_events
        )
    return row


def _sweep_cache_key(config: TestbedConfig, duration: int,
                     warmup_records: int, fidelity: str = "full") -> str:
    # Full-fidelity keys keep their historical shape so caches populated
    # before the fidelity axis existed remain valid.
    if fidelity == "full":
        return config_fingerprint("sweep", config, duration, warmup_records)
    return config_fingerprint(
        "sweep", config, duration, warmup_records, fidelity
    )


def _summarize_row(row: SweepRow) -> Dict[str, Any]:
    """Ledger/progress info line for one sweep arm."""
    return {
        "verdict": row.verdict,
        "converged": row.converged,
        "max_precision_ns": row.max_precision_ns,
    }


def compile_sweep(
    parameter: str,
    values: Sequence[Any],
    make_config: Callable[[Any], TestbedConfig],
    duration: int = 2 * MINUTES,
    warmup_records: int = 30,
    fidelity: str = "full",
) -> StudyPlan:
    """Compile a sweep into the study pipeline: one job per arm.

    Job keys are the historical sweep cache keys, so caches populated
    before the pipeline refactor keep hitting; the collector restores
    the ``values``-ordered row list with parameter/value labels.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if fidelity not in ("full", "adaptive"):
        raise ValueError(f"unknown fidelity {fidelity!r}")
    configs = [make_config(value) for value in values]
    jobs = tuple(
        Job(
            key=_sweep_cache_key(config, duration, warmup_records, fidelity),
            fn=_run_sweep_point,
            args=(config, duration, warmup_records),
            kwargs={"fidelity": fidelity},
            label=f"{parameter}={value}",
            kind="sweep",
            seed=getattr(config, "seed", None),
            accepts_metrics=True,
        )
        for config, value in zip(configs, values)
    )
    study = Study(
        name=f"sweep:{parameter}",
        jobs=jobs,
        encode=lambda row: row.as_dict(),
        decode=lambda doc: SweepRow(**doc),
        summarize=_summarize_row,
        metrics_prefix="sweep",
    )

    def collect(run: StudyRun) -> List[SweepRow]:
        return [
            replace(row, parameter=parameter, value=value)
            for row, value in zip(run.collected(), values)
        ]

    return StudyPlan(study=study, collect=collect)


def sweep(
    parameter: str,
    values: Sequence[Any],
    make_config: Callable[[Any], TestbedConfig],
    duration: int = 2 * MINUTES,
    warmup_records: int = 30,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    cache: Optional[ResultsCache] = None,
    metrics=None,
    fidelity: str = "full",
    ledger=None,
    progress=None,
    compile_only: bool = False,
) -> List[SweepRow]:
    """Generic sweep: build/run one testbed per value.

    A thin compiler over the study pipeline (`repro.studies`):
    ``executor="process"`` runs the arms on a
    :class:`repro.parallel.WorkerPool` (results stay in ``values`` order);
    a :class:`ResultsCache` skips arms whose configuration is unchanged
    since a previous run, so tweaking one parameter value only recomputes
    the new arms. With a ``metrics`` registry attached, serial arms run
    fully instrumented and every arm contributes a timing sample; process
    arms report per-chunk wall times (registries stay in-process). An
    optional ``ledger``/``progress`` pair journals per-arm status for
    resumable CLI studies; ``compile_only=True`` returns the
    :class:`StudyPlan` without running anything.
    """
    plan = compile_sweep(parameter, values, make_config, duration=duration,
                         warmup_records=warmup_records, fidelity=fidelity)
    if compile_only:
        return plan
    run = run_study(
        plan.study,
        executor=executor,
        max_workers=max_workers,
        task_timeout=task_timeout,
        cache=cache,
        metrics=metrics,
        ledger=ledger,
        progress=progress,
        on_error="raise",
    )
    return plan.collect(run)


# ----------------------------------------------------------------------
# Canned sweeps for the DESIGN.md design choices
# ----------------------------------------------------------------------
def _base_config(scenario, seed: int) -> TestbedConfig:
    """The sweep's anchor configuration: a scenario's, or the paper mesh4.

    ``scenario`` takes a spec, a registered name, or a JSON path (anything
    :func:`repro.scenarios.resolve_scenario` accepts); each canned sweep
    then varies exactly one axis off the anchor via ``dataclasses.replace``.
    """
    if scenario is None:
        return TestbedConfig(seed=seed)
    return resolve_scenario(scenario).testbed_config(seed=seed)


def sweep_domain_count(
    values: Sequence[int] = (4, 5, 6), seed: int = 9, scenario=None, **kwargs
) -> List[SweepRow]:
    """u(N, f) tightens the bound as domains are added."""
    base = _base_config(scenario, seed)
    return sweep(
        "n_domains",
        values,
        lambda n: replace(base, n_devices=n, n_domains=None),
        **kwargs,
    )


def sweep_sync_interval(
    values_ms: Sequence[float] = (62.5, 125.0, 250.0), seed: int = 9,
    scenario=None, **kwargs
) -> List[SweepRow]:
    """Γ = 2·r_max·S scales the bound with the interval."""
    base = _base_config(scenario, seed)
    return sweep(
        "sync_interval_ms",
        values_ms,
        lambda ms: replace(
            base,
            sync_interval=round(ms * MILLISECONDS),
            aggregator=replace(
                base.aggregator, sync_interval=round(ms * MILLISECONDS)
            ),
        ),
        **kwargs,
    )


def sweep_aggregation(
    values: Sequence[str] = ("fta", "ftm", "median", "mean"),
    seed: int = 9,
    scenario=None,
    **kwargs,
) -> List[SweepRow]:
    """Fault-free steady state is similar across aggregation functions."""
    base = _base_config(scenario, seed)
    return sweep(
        "aggregation",
        values,
        lambda name: replace(
            base, aggregator=replace(base.aggregator, aggregation=name)
        ),
        **kwargs,
    )


def sweep_validity_threshold(
    values_us: Sequence[float] = (1.0, 5.0, 20.0), seed: int = 9,
    scenario=None, **kwargs
) -> List[SweepRow]:
    """Validity threshold: too tight rejects honest spread, too loose lets
    outliers in; steady state should tolerate the whole sensible range."""
    from repro.core.validity import ValidityConfig

    base = _base_config(scenario, seed)
    return sweep(
        "validity_threshold_us",
        values_us,
        lambda us: replace(
            base,
            aggregator=replace(
                base.aggregator,
                validity=ValidityConfig(threshold=round(us * 1000)),
            ),
        ),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Scenario-axis sweeps (topology shape, hop count, fault budget)
# ----------------------------------------------------------------------
def sweep_topology(
    values: Sequence[str] = ("mesh", "ring", "line", "star"),
    seed: int = 9,
    scenario=None,
    **kwargs,
) -> List[SweepRow]:
    """Same N/M/f across shapes: E (the delay spread) drives the bound.

    The mesh keeps every VM one trunk hop from its GM; ring/line/star
    stretch some domain trees over multiple trunks, widening [d_min, d_max]
    and with it Π = u(N, f)·(E + Γ).
    """
    base = _base_config(scenario, seed)
    return sweep(
        "topology",
        values,
        lambda kind: replace(base, topology=kind),
        **kwargs,
    )


def sweep_hop_count(
    values: Sequence[int] = (4, 5, 6, 7), seed: int = 9, scenario=None,
    **kwargs,
) -> List[SweepRow]:
    """Precision vs. path length on a daisy chain (diameter = N − 1 trunks).

    ``values`` are device counts on a ``line`` topology; each extra device
    adds one trunk + one switch residence to the longest GM→VM path. The
    floor is 4: with M = N domains and f = 1 the FTA needs M ≥ 3f + 1.
    """
    base = _base_config(scenario, seed)
    return sweep(
        "line_devices",
        values,
        lambda n: replace(base, topology="line", n_devices=n, n_domains=None),
        **kwargs,
    )


def sweep_fault_budget(
    values: Sequence = ((1, 4), (1, 5), (2, 7), (2, 8)),
    seed: int = 9,
    scenario=None,
    **kwargs,
) -> List[SweepRow]:
    """FTA masking budget: (f, M) points at M = 3f+1 (tight) and 3f+2.

    u(N, f) = (N − 2f)/(N − 3f) blows up as M approaches the 3f+1 floor,
    so the tight arms should show visibly looser bounds than their
    M = 3f+2 neighbours.
    """
    base = _base_config(scenario, seed)
    return sweep(
        "(f, M)",
        list(values),
        lambda fm: replace(
            base,
            n_devices=fm[1],
            n_domains=fm[1],
            aggregator=replace(base.aggregator, f=fm[0]),
        ),
        **kwargs,
    )


def sweep_loss_rate(
    values: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    seed: int = 9,
    scenario=None,
    loss_start: int = 45 * SECONDS,
    **kwargs,
) -> List[SweepRow]:
    """Per-link Bernoulli loss on every trunk vs. achieved precision.

    gPTP's per-interval Sync/FollowUp pairs mean a lost frame only delays
    the next correction by one interval; the FTA then masks domains whose
    corrections stale out. The interesting output is the verdict column:
    where does graceful degradation (DEGRADED) start, and does the bound
    itself ever break (FAIL)? Loss starts after FT convergence
    (``loss_start``) so every arm measures the impaired steady state, not
    a cold start that never converges.
    """
    base = _base_config(scenario, seed)

    def cfg(loss: float) -> TestbedConfig:
        if loss <= 0.0:
            return base
        return replace(base, chaos=single_loss_plan(loss, start=loss_start))

    return sweep("loss_rate", values, cfg, **kwargs)


def sweep_attack_budget(
    values: Sequence[int] = (0, 1, 2, 3),
    seed: int = 9,
    scenario=None,
    attack_start: int = 60 * SECONDS,
    margin: float = 0.8,
    duration: int = 15 * MINUTES,
    **kwargs,
) -> List[SweepRow]:
    """Breaking point: colluding in-window GMs vs. the monitor's verdict.

    Each arm compromises ``k`` grandmasters with the worst-case adversary
    (:func:`repro.security.campaigns.colluder_campaign`: a common constant
    shift at ``margin`` of the validity window, so the bloc is never
    invalidated and only the FTA trim can mask it). For ``k <= f`` the
    trim drops every colluder at every gate — the monitor stays PASS. At
    ``k = f + 1`` a colluder survives the trim, but *which* colluder (and
    which honest extreme goes with it) is decided by per-VM measurement
    noise: different VMs aggregate differently-biased sets, the
    differential error integrates, and after minutes the measured
    precision leaves Π+γ — FAIL. A *unanimous* bloc (``k = M - 1``) is
    actually gentler: every VM trims identically, the bias is pure
    common-mode, and the clocks drift together (DEGRADED via the
    valid-domain floor, the spread itself stays long inside the bound).
    The largest ``k`` masked before the first FAIL is the empirical fault
    budget ``f_actual``, to compare against the designed ``M >= 3f+1``
    floor (see :func:`breaking_point`).

    The default ``duration`` is longer than the other canned sweeps: the
    differential bias needs minutes of integration before the spread
    crosses Π+γ (on the paper mesh, seed 9, k=2 breaks the bound at
    t ≈ 800 s).
    """
    from repro.security.campaigns import colluder_campaign, default_gm_names

    base = _base_config(scenario, seed)
    spec = resolve_scenario(scenario) if scenario is not None else None
    gm_names = default_gm_names(
        base.n_devices,
        n_domains=spec.effective_domains if spec is not None else None,
        gm_placement=base.gm_placement,
    )

    def cfg(k: int) -> TestbedConfig:
        if k <= 0:
            return base
        campaign = colluder_campaign(k, gm_names, margin=margin,
                                     start=attack_start)
        plan = campaign.compile()
        if base.chaos is not None:
            plan = merge_plans(base.chaos, plan)
        return replace(base, chaos=plan)

    return sweep("colluders", values, cfg, duration=duration, **kwargs)


def breaking_point(rows: Sequence[SweepRow]) -> Dict[str, Optional[int]]:
    """Empirical fault budget of an ``attackbudget`` sweep.

    ``f_actual`` is the largest colluder count whose arm did **not** FAIL
    before the first FAIL arm (DEGRADED still counts as masked: the bound
    held); ``first_fail`` is the first failing count, or ``None`` if every
    arm held.
    """
    from repro.monitoring.invariants import FAIL

    f_actual: Optional[int] = None
    first_fail: Optional[int] = None
    for row in rows:
        if row.verdict == FAIL:
            first_fail = row.value
            break
        f_actual = row.value
    return {"f_actual": f_actual, "first_fail": first_fail}


# ----------------------------------------------------------------------
# Envelope sweep: measured precision vs. the closed-form prediction
# ----------------------------------------------------------------------
#: Default arms: one per registry scale tier, mesh4 through torus-256.
#: The 1024-VM shape is left out of the default set — one arm would
#: dominate the whole sweep's wall time — but can be passed explicitly.
ENVELOPE_SCENARIOS = (
    "paper-mesh4",
    "ring",
    "line",
    "star",
    "mesh8",
    "torus-64",
    "fat-tree-64",
    "geo-64",
    "torus-256",
)

#: Clean arms at or above this device count default to adaptive fidelity.
_ENVELOPE_ADAPTIVE_FLOOR = 64


@dataclass(frozen=True)
class EnvelopeRow:
    """One scenario's measured precision against its predicted envelope."""

    scenario: str
    n_devices: int
    f: int
    fidelity: str
    #: Attack label ("" for clean arms; e.g. "collude-k2").
    attack: str
    #: Predicted envelope u·(E* + A + Γ) + γ* — the grading threshold.
    envelope_ns: float
    #: Predicted precision bound Π* (no measurement error term).
    predicted_bound_ns: float
    #: Measured Π + γ from the end-of-run latency survey.
    measured_bound_ns: float
    avg_precision_ns: float
    max_precision_ns: float
    #: envelope − max measured precision (negative when the envelope broke).
    margin_ns: float
    within: bool
    converged: bool
    verdict: str

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON emission (keys match field names so
        cached rows rehydrate via ``EnvelopeRow(**d)``)."""
        return {
            "scenario": self.scenario,
            "n_devices": self.n_devices,
            "f": self.f,
            "fidelity": self.fidelity,
            "attack": self.attack,
            "envelope_ns": self.envelope_ns,
            "predicted_bound_ns": self.predicted_bound_ns,
            "measured_bound_ns": self.measured_bound_ns,
            "avg_precision_ns": self.avg_precision_ns,
            "max_precision_ns": self.max_precision_ns,
            "margin_ns": self.margin_ns,
            "within": self.within,
            "converged": self.converged,
            "verdict": self.verdict,
        }


def _run_envelope_arm(
    config: TestbedConfig,
    name: str,
    f: int,
    duration: int,
    warmup_records: int,
    fidelity: str,
    metrics=None,
    attack: str = "",
) -> EnvelopeRow:
    """One envelope arm: run graded against the *predicted* bound.

    Unlike :func:`_measure`, the monitor here carries
    ``bound_source="predicted"`` — synctime violations are judged against
    the closed-form envelope, with the measured Π+γ demoted to the
    secondary ``synctime_bound_measured`` threshold.
    """
    testbed = Testbed(config, metrics=metrics, fidelity=fidelity)
    monitor = InvariantMonitor(
        testbed,
        InvariantSpec(bound_source="predicted"),
        metrics=metrics,
        f=f,
    )
    monitor.start()
    testbed.run_until(duration)
    bounds = testbed.derive_bounds()
    predicted = bounds.predicted
    assert predicted is not None  # derive_bounds always attaches one
    # Short smoke arms (e.g. the CI 60 s mesh4 run) may not outlast the
    # full warmup prefix; grade the back half rather than nothing.
    all_records = testbed.series.records
    warmup = min(warmup_records, len(all_records) // 2)
    records = all_records[warmup:]
    from repro.core.aggregator import AggregatorMode

    converged = all(
        vm.aggregator.mode is AggregatorMode.FAULT_TOLERANT
        for vm in testbed.vms.values()
    )
    if records:
        precisions = [r.precision for r in records]
        avg = sum(precisions) / len(precisions)
        worst = max(precisions)
    else:
        avg = worst = float("nan")
    verdict = monitor.verdict().status
    if not converged and verdict == PASS:
        verdict = DEGRADED
    if metrics is not None:
        testbed.publish_metrics()
        metrics.counter("experiment.runs").inc()
        metrics.counter("experiment.events_dispatched").inc(
            testbed.sim.dispatched_events
        )
    envelope = predicted.envelope
    within = bool(records) and worst <= envelope
    return EnvelopeRow(
        scenario=name,
        n_devices=config.n_devices,
        f=f,
        fidelity=fidelity,
        attack=attack,
        envelope_ns=envelope,
        predicted_bound_ns=predicted.precision_bound,
        measured_bound_ns=bounds.bound_with_error,
        avg_precision_ns=avg,
        max_precision_ns=worst,
        margin_ns=envelope - worst,
        within=within,
        converged=converged,
        verdict=verdict,
    )


def _envelope_cache_key(config: TestbedConfig, duration: int,
                        warmup_records: int, fidelity: str) -> str:
    return config_fingerprint(
        "envelope", config, duration, warmup_records, fidelity
    )


def _summarize_envelope_row(row: EnvelopeRow) -> Dict[str, Any]:
    """Ledger/progress info line for one envelope arm."""
    return {
        "verdict": row.verdict,
        "within": row.within,
        "margin_ns": row.margin_ns,
    }


def compile_envelope(
    scenarios: Sequence[str] = ENVELOPE_SCENARIOS,
    seed: int = 9,
    duration: int = 2 * MINUTES,
    warmup_records: int = 30,
    attack_check: bool = True,
    attack_colluders: int = 2,
    attack_start: int = 60 * SECONDS,
    attack_duration: int = 15 * MINUTES,
    fidelity: Optional[str] = None,
) -> StudyPlan:
    """Compile the envelope sweep: one job per scenario arm (+ attack arm).

    Keys are the historical envelope cache keys; the collector returns the
    rows in arm order (clean arms in ``scenarios`` order, then the attack
    arm), as before the pipeline.
    """
    if fidelity is not None and fidelity not in ("full", "adaptive"):
        raise ValueError(f"unknown fidelity {fidelity!r}")

    arms: List[Dict[str, Any]] = []
    for name in scenarios:
        spec = resolve_scenario(name)
        config = spec.testbed_config(seed=seed)
        fid = fidelity or (
            "adaptive"
            if config.n_devices >= _ENVELOPE_ADAPTIVE_FLOOR
            else "full"
        )
        arms.append(
            {
                "config": config,
                "name": spec.name,
                "f": spec.f,
                "duration": duration,
                "fidelity": fid,
                "attack": "",
            }
        )
    if attack_check:
        from repro.security.campaigns import (
            colluder_campaign,
            default_gm_names,
        )

        spec = resolve_scenario("paper-mesh4")
        base = spec.testbed_config(seed=seed)
        gm_names = default_gm_names(
            base.n_devices,
            n_domains=spec.effective_domains,
            gm_placement=base.gm_placement,
        )
        campaign = colluder_campaign(
            attack_colluders, gm_names, start=attack_start
        )
        plan = campaign.compile()
        if base.chaos is not None:
            plan = merge_plans(base.chaos, plan)
        arms.append(
            {
                "config": replace(base, chaos=plan),
                "name": spec.name,
                "f": spec.f,
                "duration": attack_duration,
                "fidelity": fidelity or "full",
                "attack": f"collude-k{attack_colluders}",
            }
        )

    jobs = tuple(
        Job(
            key=_envelope_cache_key(
                arm["config"], arm["duration"], warmup_records,
                arm["fidelity"]
            ),
            fn=_run_envelope_arm,
            args=(arm["config"], arm["name"], arm["f"], arm["duration"],
                  warmup_records, arm["fidelity"]),
            kwargs={"attack": arm["attack"]},
            label=(
                f"{arm['name']}[{arm['attack']}]" if arm["attack"]
                else arm["name"]
            ),
            kind="envelope",
            seed=seed,
            accepts_metrics=True,
        )
        for arm in arms
    )
    study = Study(
        name="envelope",
        jobs=jobs,
        encode=lambda row: row.as_dict(),
        decode=lambda doc: EnvelopeRow(**doc),
        summarize=_summarize_envelope_row,
        metrics_prefix="envelope",
    )

    def collect(run: StudyRun) -> List[EnvelopeRow]:
        return run.collected()

    return StudyPlan(study=study, collect=collect)


def sweep_envelope(
    scenarios: Sequence[str] = ENVELOPE_SCENARIOS,
    seed: int = 9,
    duration: int = 2 * MINUTES,
    warmup_records: int = 30,
    attack_check: bool = True,
    attack_colluders: int = 2,
    attack_start: int = 60 * SECONDS,
    attack_duration: int = 15 * MINUTES,
    fidelity: Optional[str] = None,
    cache: Optional[ResultsCache] = None,
    metrics=None,
    ledger=None,
    progress=None,
    compile_only: bool = False,
) -> List[EnvelopeRow]:
    """Measured-vs-theoretical margin across the scenario registry.

    One clean arm per scenario, graded against its *predicted* envelope
    (``bound_source="predicted"``): the measured worst-case precision must
    stay inside the closed-form bound with positive margin. With
    ``attack_check`` set, a final arm replays the PR-6 breaking-point
    adversary — ``attack_colluders`` in-window colluding GMs on the paper
    mesh — and the envelope is expected to *catch* it (within=False, FAIL)
    without any threshold retuning.

    ``fidelity=None`` picks per arm: adaptive at and above 64 devices
    (quiescent clean runs fast-forward soundly), full below and for the
    attack arm (colluders are never quiescent). Arms run serially —
    they are few and heterogeneous, so a pool saves little — but the
    study pipeline's :class:`ResultsCache` dedupe still skips unchanged
    arms, and a ``ledger``/``progress`` pair journals per-arm status.
    """
    plan = compile_envelope(
        scenarios, seed=seed, duration=duration,
        warmup_records=warmup_records, attack_check=attack_check,
        attack_colluders=attack_colluders, attack_start=attack_start,
        attack_duration=attack_duration, fidelity=fidelity,
    )
    if compile_only:
        return plan
    run = run_study(
        plan.study,
        executor="serial",
        cache=cache,
        metrics=metrics,
        ledger=ledger,
        progress=progress,
        on_error="raise",
    )
    return plan.collect(run)


def envelope_verdict(rows: Sequence[EnvelopeRow]) -> str:
    """Aggregate acceptance: prediction dominates measurement.

    PASS when every clean arm stayed inside its predicted envelope *and*
    every attack arm was flagged by it (crossed the envelope → monitor
    FAIL). Anything else — a clean run outside the envelope, or an
    adversary the prediction failed to catch — is FAIL.
    """
    from repro.monitoring.invariants import FAIL

    for row in rows:
        if row.attack:
            if row.within or row.verdict != FAIL:
                return FAIL
        elif not row.within:
            return FAIL
    return PASS


def render_rows(rows: Sequence[SweepRow]) -> str:
    """Text table of sweep outcomes."""
    if not rows:
        return "(empty sweep)"
    header = (
        f"{rows[0].parameter:>22} {'Π[ns]':>10} {'avg Π*[ns]':>12} "
        f"{'max Π*[ns]':>12} {'converged':>10} {'verdict':>9}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{str(row.value):>22} {row.bound_ns:>10.0f} "
            f"{row.avg_precision_ns:>12.1f} {row.max_precision_ns:>12.1f} "
            f"{str(row.converged):>10} {row.verdict:>9}"
        )
    return "\n".join(lines)

"""Builder for the experimental virtualized distributed real-time system.

Reproduces the §III-A1 setup (Fig. 2):

* N = 4 edge devices ``dev1..dev4``, each with an integrated TSN switch;
  the switches form a full mesh.
* Each device hosts two clock synchronization VMs ``c{x}_1`` and ``c{x}_2``
  with passthrough NICs attached to the device switch; ``c{x}_1`` is the
  grandmaster of gPTP domain x (spatially separated GMs).
* External port configuration: per domain x, the static spanning tree is
  rooted at ``c{x}_1`` — on ``sw{x}`` the slave port faces the GM VM and
  all other ports are masters; on every other switch the slave port faces
  ``sw{x}`` directly (full mesh ⇒ one trunk hop) and the local VM ports are
  masters. No BMCA runs anywhere.
* The measurement VLAN spans ``c{m}_2`` → ``sw{m}`` → every other switch →
  that switch's local VM ports, giving every measured path the same hop
  count (the paper's γ-minimizing configuration); ``c{m}_1`` and the
  measurement VM itself are excluded from the receiver set per eq. 3.1.
* Kernel versions are assigned to the GM VMs per the diversification policy
  under test (identical = everyone on the exploitable v4.19.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.orchestrator import ChaosOrchestrator
from repro.chaos.plan import ChaosPlan
from repro.core.aggregator import AggregatorConfig
from repro.faults.transient import TransientFaultPlan
from repro.gptp.bridge import TimeAwareBridge
from repro.gptp.domain import DomainConfig
from repro.hypervisor.clock_sync_vm import ClockSyncVm, ClockSyncVmConfig
from repro.hypervisor.node import EcdNode
from repro.measurement.bounds import ExperimentBounds, derive_bounds
from repro.measurement.precision import PrecisionSeries
from repro.measurement.probe import (
    MEASUREMENT_VLAN,
    PrecisionProbeService,
    ProbeResponder,
)
from repro.network.nic import NicModel
from repro.network.switch import MAX_HOPS
from repro.network.topology import MeshModel, Topology, build_topology
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timebase import MICROSECONDS, MILLISECONDS, SECONDS
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class TestbedConfig:
    """Knobs of the full testbed.

    Attributes
    ----------
    seed:
        Master seed for every random stream.
    n_devices:
        Devices/domains (the paper's 4).
    sync_interval:
        S, ns.
    kernel_policy:
        ``"diverse"`` (Fig. 3b) or ``"identical"`` (Fig. 3a).
    measurement_device:
        Index m of the device hosting the measurement VM ``c{m}_2``
        ("chosen arbitrarily" in the paper).
    measurement_start:
        When the 1 Hz probes begin (lets initial synchronization settle).
    initial_offset_spread:
        Initial PHC offsets are drawn uniformly in ±spread, ns — what the
        startup synchronization has to pull in.
    transients:
        Optional transient-fault plan (tx timeouts / deadline misses).
    aggregator:
        Base aggregation config; domains/initial domain are filled in.
    mesh:
        Link/switch parameter ranges.
    boot_delay:
        VM reboot latency after fail-silent faults.
    aggregate_on_gms:
        When ``False``, GM VMs free-run (the Kyriakakis-style baseline).
    exploitable_gm:
        Under the ``diverse`` policy, which GM keeps the exploitable kernel
        (the paper leaves v4.19.1 on ``c4_1``). Default: the last GM.
    n_domains:
        Number of gPTP domains (default: one per device). ``1`` yields the
        single-domain no-FTA baseline: only ``c1_1`` is a grandmaster.
    vms_per_node:
        Clock synchronization VMs per device. The paper's testbed has 2
        (fail-silent, f+1); 3 enables the fail-consistent 2f+1 voting mode
        of §II-A, which needs one passthrough NIC per VM ("it is
        straightforward to realize fail-consistent behavior by adding more
        NICs").
    topology:
        Shape of the switch graph (``"mesh"``, ``"ring"``, ``"line"``,
        ``"star"``, or a generated shape — see
        :data:`repro.network.topology.TOPOLOGY_BUILDERS`). Per-domain
        spanning trees and the measurement VLAN are derived from the shape;
        the paper's setup is the default full mesh.
    topology_params:
        Extra builder kwargs for generated shapes, as a sorted tuple of
        ``(name, value)`` pairs (hashable, so the config stays frozen):
        ``arity`` for ``fat_tree``, ``rows`` for ``torus``, ``groups`` for
        ``ring_of_rings``, ``radius`` for ``random_geometric``.
    hub_device:
        Center device of the ``star`` topology (ignored elsewhere).
    gm_placement:
        Where domain x's GM lives: ``"spread"`` (device x, the paper's
        spatially separated GMs) or ``"reversed"`` (device N+1−x).
    """

    # Keep pytest from trying to collect this config class.
    __test__ = False

    seed: int = 1
    n_devices: int = 4
    topology: str = "mesh"
    topology_params: Tuple[Tuple[str, object], ...] = ()
    hub_device: int = 1
    gm_placement: str = "spread"
    n_domains: Optional[int] = None
    vms_per_node: int = 2
    sync_interval: int = 125 * MILLISECONDS
    kernel_policy: str = "diverse"
    measurement_device: int = 2
    measurement_start: int = 30 * SECONDS
    initial_offset_spread: int = 100 * MICROSECONDS
    transients: Optional[TransientFaultPlan] = None
    #: Optional declarative chaos schedule; an orchestrator is built and
    #: started with the testbed. Part of the frozen config (and thus every
    #: cache fingerprint) because chaos changes what the run computes.
    chaos: Optional[ChaosPlan] = None
    aggregator: AggregatorConfig = AggregatorConfig()
    mesh: MeshModel = MeshModel()
    boot_delay: int = 30 * SECONDS
    aggregate_on_gms: bool = True
    exploitable_gm: Optional[str] = None
    phc2sys_mode: str = "feedback"
    #: Keep per-VM probe readings for spike attribution (a few floats per
    #: probe; see PrecisionRecord.extreme_pair).
    keep_probe_readings: bool = False


class Testbed:
    """The built system, ready to run."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        config: Optional[TestbedConfig] = None,
        metrics=None,
        fidelity: str = "full",
    ) -> None:
        # The default is constructed lazily so import order can never
        # freeze a stale class-level TestbedConfig instance.
        config = config if config is not None else TestbedConfig()
        # Metrics are a constructor argument, not a TestbedConfig field:
        # the frozen config is the cache fingerprint, and attaching an
        # observer must never change what an arm's results hash to.
        # Fidelity is likewise an execution-tier knob, not part of the
        # scenario identity: "full" (byte-identical event-level default)
        # or "adaptive" (analytic fast-forward through locked quiescence).
        if fidelity not in ("full", "adaptive"):
            raise ValueError(
                f"unknown fidelity {fidelity!r} (expected 'full' or 'adaptive')"
            )
        self.config = config
        self.metrics = metrics
        self.fidelity = fidelity
        self._engine = None
        self.sim = Simulator()
        if metrics is not None:
            self.sim.attach_metrics(metrics)
        self.trace = TraceLog()
        self.rng = RngRegistry(config.seed)
        self.topology: Topology
        self.nodes: Dict[str, EcdNode] = {}
        self.vms: Dict[str, ClockSyncVm] = {}
        self.bridges: Dict[str, TimeAwareBridge] = {}
        self.domains: List[DomainConfig] = []
        self.series = PrecisionSeries(keep_readings=config.keep_probe_readings)
        self.probe_service: PrecisionProbeService
        self.responders: Dict[str, ProbeResponder] = {}
        self.kernel_of: Dict[str, str] = {}
        self.node_of_vm: Dict[str, EcdNode] = {}
        self.chaos: Optional[ChaosOrchestrator] = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        n_domains = cfg.n_domains if cfg.n_domains is not None else cfg.n_devices
        if not 1 <= n_domains <= cfg.n_devices:
            raise ValueError(
                f"n_domains={n_domains} must be in [1, {cfg.n_devices}]"
            )
        # Byzantine floor: the FTA masks f faults only with M >= 3f + 1
        # aggregated domains. Scenario specs validate this at spec level;
        # raw configs (and post-hoc aggregator overrides) used to slip
        # through until u_factor blew up mid-derivation — fail at build.
        if cfg.aggregator.f < 0:
            raise ValueError(f"aggregator f={cfg.aggregator.f} must be >= 0")
        if cfg.aggregator.f > 0 and n_domains < 3 * cfg.aggregator.f + 1:
            raise ValueError(
                f"fault hypothesis f={cfg.aggregator.f} needs at least "
                f"{3 * cfg.aggregator.f + 1} domains (M >= 3f + 1); "
                f"got n_domains={n_domains}"
            )
        # GM placement policy: device hosting domain x's grandmaster.
        if cfg.gm_placement == "spread":
            self._gm_device = {x: x for x in range(1, n_domains + 1)}
        elif cfg.gm_placement == "reversed":
            self._gm_device = {
                x: cfg.n_devices + 1 - x for x in range(1, n_domains + 1)
            }
        else:
            raise ValueError(
                f"unknown gm_placement {cfg.gm_placement!r} "
                "(expected 'spread' or 'reversed')"
            )
        self._domain_of_device = {
            dev: dom for dom, dev in self._gm_device.items()
        }
        self.domains = [
            DomainConfig(
                number=x,
                gm_identity=f"c{self._gm_device[x]}_1",
                sync_interval=cfg.sync_interval,
            )
            for x in range(1, n_domains + 1)
        ]
        self._build_network()
        self._build_nodes()
        self._configure_domain_trees()
        self._configure_measurement()
        self._start()

    def _build_network(self) -> None:
        cfg = self.config
        switch_rngs = {
            f"sw{i + 1}": self.rng.stream(f"switch.sw{i + 1}")
            for i in range(cfg.n_devices)
        }
        # The testbed's device count governs the topology size; other link
        # parameters come from the configured model.
        mesh = MeshModel(
            n_devices=cfg.n_devices,
            trunk_base_range=cfg.mesh.trunk_base_range,
            trunk_jitter_range=cfg.mesh.trunk_jitter_range,
            access_base_range=cfg.mesh.access_base_range,
            access_jitter_range=cfg.mesh.access_jitter_range,
            switch=cfg.mesh.switch,
        )
        kwargs = {"hub_device": cfg.hub_device} if cfg.topology == "star" else {}
        kwargs.update(dict(cfg.topology_params))
        self.topology = build_topology(
            cfg.topology,
            self.sim,
            self.rng.stream("topology"),
            mesh,
            trace=self.trace,
            switch_rngs=switch_rngs,
            **kwargs,
        )
        # Long switch paths (line/ring at scale) must clear the defensive
        # per-switch traversal cap; the mesh never exceeds the default.
        needed_hops = self.topology.max_switch_path() + 1
        if needed_hops > MAX_HOPS:
            for sw in self.topology.switches.values():
                sw.hop_limit = needed_hops

    def _nic_model(self) -> NicModel:
        cfg = self.config
        if cfg.transients is None:
            return NicModel()
        return NicModel(
            tx_timestamp_fail_prob=cfg.transients.tx_timestamp_fail_prob,
            deadline_miss_prob=cfg.transients.deadline_miss_prob,
        )

    def _build_nodes(self) -> None:
        from repro.security.diversity import (
            UNIKERNEL_STACK,
            assign_kernels,
            boot_delay_of,
        )

        cfg = self.config
        # Only devices actually hosting a domain GM need diversified
        # kernels; with M < N (fleet-scale scenarios) the remaining c{x}_1
        # VMs are ordinary receivers on the default stack. Sorted device
        # order keeps the historical assignment for every M = N setup.
        gm_names = [f"c{x}_1" for x in sorted(self._gm_device.values())]
        # Under diversification the exploitable kernel (pool[0]) goes to one
        # designated GM — c4_1 in the paper's Fig. 3b setup.
        exploitable = cfg.exploitable_gm or gm_names[-1]
        if exploitable not in gm_names:
            raise ValueError(f"exploitable_gm {exploitable!r} is not a GM")
        ordered = [exploitable] + [g for g in gm_names if g != exploitable]
        self.kernel_of = assign_kernels(ordered, cfg.kernel_policy)
        nic_model = self._nic_model()
        for x in range(1, cfg.n_devices + 1):
            node = EcdNode(
                self.sim,
                f"dev{x}",
                self.rng.stream(f"node.dev{x}.tsc"),
                trace=self.trace,
                metrics=self.metrics,
            )
            self.nodes[node.name] = node
            for i in range(1, cfg.vms_per_node + 1):
                vm_name = f"c{x}_{i}"
                gm_domain = self._domain_of_device.get(x) if i == 1 else None
                is_gm = gm_domain is not None
                default_stack = (
                    UNIKERNEL_STACK
                    if cfg.kernel_policy == "unikernel"
                    else "linux-5.15.0"
                )
                kernel = self.kernel_of.get(vm_name, default_stack)
                boot_delay = (
                    boot_delay_of(kernel)
                    if cfg.kernel_policy == "unikernel"
                    else cfg.boot_delay
                )
                agg = AggregatorConfig(
                    domains=tuple(d.number for d in self.domains),
                    f=cfg.aggregator.f,
                    sync_interval=cfg.sync_interval,
                    validity=cfg.aggregator.validity,
                    startup_threshold=cfg.aggregator.startup_threshold,
                    startup_confirmations=cfg.aggregator.startup_confirmations,
                    initial_domain=cfg.aggregator.initial_domain,
                    own_domain=gm_domain,
                    aggregation=cfg.aggregator.aggregation,
                    servo=cfg.aggregator.servo,
                    apply_corrections=(
                        cfg.aggregator.apply_corrections
                        and (cfg.aggregate_on_gms or not is_gm)
                    ),
                    validity_mode=cfg.aggregator.validity_mode,
                )
                vm_config = ClockSyncVmConfig(
                    gm_domain=gm_domain,
                    kernel_version=kernel,
                    domains=tuple(self.domains),
                    aggregator=agg,
                    nic=nic_model,
                    boot_delay=boot_delay,
                    phc2sys_mode=cfg.phc2sys_mode,
                )
                vm = node.add_clock_sync_vm(
                    vm_name, vm_config, self.rng.stream(f"vm.{vm_name}")
                )
                self.vms[vm_name] = vm
                self.node_of_vm[vm_name] = node
                self.topology.attach_nic(
                    vm.nic, f"sw{x}", self.rng.stream("topology")
                )
                spread = cfg.initial_offset_spread
                if spread > 0:
                    vm.nic.clock.step(
                        self.rng.stream(f"init.{vm_name}").randint(-spread, spread)
                    )

    def _configure_domain_trees(self) -> None:
        cfg = self.config
        for sw_name in self.topology.switch_names():
            bridge = TimeAwareBridge(
                self.sim,
                self.topology.switch(sw_name),
                self.rng.stream(f"bridge.{sw_name}"),
                trace=self.trace,
            )
            self.bridges[sw_name] = bridge
        # Per domain, the static spanning tree is rooted at the GM's switch:
        # towards the root every bridge has its one slave port (facing the
        # tree parent; on the root, facing the GM VM itself), and masters
        # are the trunk ports to tree children plus the local VM ports.
        # On the full mesh every non-root switch is a direct child of the
        # root, which reduces to the paper's one-trunk-hop configuration.
        vm_range = range(1, self.config.vms_per_node + 1)
        for domain in self.domains:
            root_sw = f"sw{self._gm_device[domain.number]}"
            tree = self.topology.spanning_tree(root_sw)
            for sw_name, bridge in self.bridges.items():
                y = int(sw_name[2:])
                local_vm_ports = [f"vm_c{y}_{i}" for i in vm_range]
                child_trunks = [f"to_{c}" for c in tree.children[sw_name]]
                if sw_name == root_sw:
                    slave = f"vm_{domain.gm_identity}"
                    masters = child_trunks + [
                        p for p in local_vm_ports if p != slave
                    ]
                else:
                    slave = f"to_{tree.parent[sw_name]}"
                    masters = child_trunks + local_vm_ports
                bridge.configure_domain(domain.number, slave, masters)

    def _configure_measurement(self) -> None:
        cfg = self.config
        m = cfg.measurement_device
        sw_m = f"sw{m}"
        # Measurement VLAN: the shortest-path tree rooted at sw_m — parent
        # trunk, child trunks, then local VM ports. Loop-free on any shape;
        # on the full mesh this is the paper's hop-symmetric star over
        # direct trunks (§III-A2).
        tree = self.topology.spanning_tree(sw_m)
        vm_range = range(1, cfg.vms_per_node + 1)
        for sw_name in self.topology.switch_names():
            sw = self.topology.switch(sw_name)
            y = int(sw_name[2:])
            local_vm_ports = [sw.ports[f"vm_c{y}_{i}"] for i in vm_range]
            members = []
            parent = tree.parent[sw_name]
            if parent is not None:
                members.append(sw.ports[f"to_{parent}"])
            members += [sw.ports[f"to_{c}"] for c in tree.children[sw_name]]
            members += local_vm_ports
            sw.set_vlan_members(MEASUREMENT_VLAN, members)
        measurement_vm = self.vms[self.measurement_vm_name]
        self.probe_service = PrecisionProbeService(
            self.sim, measurement_vm, series=self.series
        )
        for vm_name in self.receiver_names:
            vm = self.vms[vm_name]
            self.responders[vm_name] = ProbeResponder(
                vm, self.node_of_vm[vm_name], self.series
            )

    def _start(self) -> None:
        for node in self.nodes.values():
            node.start()
        for bridge in self.bridges.values():
            bridge.start()
        self.sim.schedule_at(
            max(self.sim.now, self.config.measurement_start),
            self.probe_service.start,
        )
        if self.config.chaos is not None:
            self.chaos = ChaosOrchestrator(
                self.sim,
                self.topology,
                self.config.chaos,
                self.rng,
                self.vms,
                trace=self.trace,
                metrics=self.metrics,
            )
            self.chaos.start()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def measurement_vm_name(self) -> str:
        """``c{m}_2`` — the VM sending the probes."""
        return f"c{self.config.measurement_device}_2"

    @property
    def excluded_vm_name(self) -> str:
        """``c{m}_1`` — excluded from measurement for path symmetry."""
        return f"c{self.config.measurement_device}_1"

    @property
    def receiver_names(self) -> List[str]:
        """CS := C \\ {c_m1, c_m2} — the measured set of eq. 3.1."""
        excluded = {self.measurement_vm_name, self.excluded_vm_name}
        return sorted(name for name in self.vms if name not in excluded)

    @property
    def gm_names(self) -> List[str]:
        """The virtual grandmasters, one per configured domain."""
        return [d.gm_identity for d in self.domains]

    def gm_domain_of(self) -> Dict[str, int]:
        """GM VM name → domain number (for Fig. 5 color coding)."""
        return {d.gm_identity: d.number for d in self.domains}

    def derive_bounds(self) -> ExperimentBounds:
        """Run the §III-A3 bound derivation against this testbed.

        The measured figures carry the closed-form prediction for the same
        setup (``.predicted``) so every consumer — monitor, manifests, the
        envelope sweep — sees measured and theoretical side by side.
        """
        from dataclasses import replace

        from repro.analysis.bounds_theory import predict_testbed_bounds

        measured = derive_bounds(
            self.topology,
            self.measurement_vm_name,
            self.receiver_names,
            n_domains=len(self.domains),
            f=self.config.aggregator.f,
            sync_interval=self.config.sync_interval,
        )
        return replace(measured, predicted=predict_testbed_bounds(self))

    def run_until(self, time: int) -> None:
        """Advance the simulation (via the adaptive engine when enabled)."""
        if self.fidelity == "adaptive":
            if self._engine is None:
                from repro.experiments.fidelity import AdaptiveEngine

                self._engine = AdaptiveEngine(self)
            self._engine.run_until(time)
        else:
            self.sim.run_until(time)

    def fastforward_summary(self) -> Dict[str, int]:
        """Fast-forward statistics of this run (empty under full fidelity)."""
        if self._engine is None:
            return {}
        return self._engine.summary()

    def publish_metrics(self) -> None:
        """Flush post-hoc gauges into the attached registry (if any)."""
        if self.metrics is None:
            return
        self.sim.publish_metrics()
        self.metrics.gauge("testbed.probes_recorded").set(len(self.series.records))
        self.metrics.gauge("testbed.trace_records").set(len(self.trace))

    def gm_clock_spread(self) -> float:
        """Max pairwise PHC difference across running GMs (diagnostics)."""
        values = [
            self.vms[name].nic.clock.time()
            for name in self.gm_names
            if self.vms[name].running
        ]
        if len(values) < 2:
            return 0.0
        return float(max(values) - min(values))

"""Fault injection: the paper's §III-C tool, schedule, and transient faults.

The tool runs (conceptually) in each ECD's service VM and triggers
fail-silent shutdowns of clock synchronization VMs:

* **grandmaster shutdowns** — periodic, sequential across the devices;
* **redundant-VM shutdowns** — random per node, rate-limited (at most one
  every five minutes per node);
* **never both VMs of one node at once** — that would violate the fail-
  silent dependent-clock hypothesis (f = 1 per node); simultaneous failures
  *across* nodes are allowed and do happen.

Transient software faults (tx-timestamp timeouts, launch deadline misses)
are environmental: :mod:`repro.faults.transient` calibrates the NIC fault
probabilities so a 24 h run produces totals in the regime the paper reports
(2992 and 347).
"""

from repro.faults.injector import FaultInjectionConfig, FaultInjector
from repro.faults.transient import TransientFaultPlan, calibrate_transients

__all__ = [
    "FaultInjector",
    "FaultInjectionConfig",
    "TransientFaultPlan",
    "calibrate_transients",
]

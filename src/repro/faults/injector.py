"""The fault injection tool.

One :class:`FaultInjector` drives the whole testbed (the per-node tools of
the paper coordinate their GM schedule; modelling them as one scheduler with
per-node state is observably identical).

Grandmaster shutdowns rotate dev1 → dev2 → … with a configurable period;
redundant (non-GM) VM shutdowns are a per-node Poisson process clamped to
the paper's "at most one per five minutes per node". Every injection honours
the fail-silent budget: a VM is only killed if its node sibling is running,
otherwise the injection is skipped and traced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.hypervisor.clock_sync_vm import ClockSyncVm
from repro.hypervisor.node import EcdNode
from repro.sim.kernel import Simulator
from repro.sim.timebase import HOURS, MINUTES, SECONDS
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class FaultInjectionConfig:
    """Schedule parameters (§III-C).

    Attributes
    ----------
    gm_shutdown_period:
        Gap between consecutive GM shutdowns (rotating across devices).
        30 min yields the paper's 48 GM failures over 24 h.
    redundant_rate_per_hour:
        Mean random shutdowns per hour per node for non-GM VMs; the paper
        bounds the realized frequency to [1, 12] per hour per node.
    min_gap:
        Paper's hard floor between redundant shutdowns of one node (5 min).
    exclude:
        VM names never injected (the measurement VM, so the 1 Hz probe
        stream is continuous).
    initial_delay:
        Quiet period before the first injection (lets startup finish).
    require_sibling_synchronized:
        Only inject when the surviving sibling has re-entered fault-
        tolerant operation (the implicit consequence of the paper's sparse
        schedule). Disable for schedule-only tests without a network.
    """

    gm_shutdown_period: int = 30 * MINUTES
    redundant_rate_per_hour: float = 2.0
    min_gap: int = 5 * MINUTES
    exclude: tuple = ()
    initial_delay: int = 5 * MINUTES
    require_sibling_synchronized: bool = True


@dataclass
class InjectionRecord:
    """One performed (or skipped) injection."""

    time: int
    vm: str
    kind: str  # "gm" | "redundant"
    skipped: bool = False
    reason: str = ""


class FaultInjector:
    """Drives fail-silent injections over a set of nodes."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[EcdNode],
        config: FaultInjectionConfig,
        rng: random.Random,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.nodes = list(nodes)
        self.config = config
        self.rng = rng
        self.trace = trace
        self.records: List[InjectionRecord] = []
        self._gm_cursor = 0
        self._armed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the schedule."""
        if self._armed:
            raise RuntimeError("injector already started")
        self._armed = True
        self.sim.schedule(
            self.config.initial_delay + self.config.gm_shutdown_period,
            self._gm_tick,
        )
        for node in self.nodes:
            self._schedule_redundant(node)

    # ------------------------------------------------------------------
    # Grandmaster rotation
    # ------------------------------------------------------------------
    def _gm_tick(self) -> None:
        node = self.nodes[self._gm_cursor % len(self.nodes)]
        self._gm_cursor += 1
        gm = self._gm_of(node)
        if gm is None:
            self._record(node.name, "gm", skipped=True, reason="no GM VM")
        else:
            self._inject(gm, node, kind="gm")
        self.sim.schedule(self.config.gm_shutdown_period, self._gm_tick)

    # ------------------------------------------------------------------
    # Random redundant shutdowns
    # ------------------------------------------------------------------
    def _schedule_redundant(self, node: EcdNode) -> None:
        rate = self.config.redundant_rate_per_hour
        if rate <= 0:
            return
        mean_gap = HOURS / rate
        gap = max(
            self.config.min_gap,
            round(self.rng.expovariate(1.0 / mean_gap)),
        )
        first_possible = self.config.initial_delay
        self.sim.schedule(max(gap, first_possible), self._redundant_tick, node)

    def _redundant_tick(self, node: EcdNode) -> None:
        candidates = [
            vm
            for vm in node.clock_sync_vms
            if not vm.is_gm and vm.name not in self.config.exclude
        ]
        if candidates:
            victim = self.rng.choice(candidates)
            self._inject(victim, node, kind="redundant")
        self._schedule_redundant(node)

    # ------------------------------------------------------------------
    def _inject(self, vm: ClockSyncVm, node: EcdNode, kind: str) -> None:
        if not vm.running:
            self._record(vm.name, kind, skipped=True, reason="already down")
            return
        if not self._sibling_operational(vm, node):
            # Would violate the fail-silent hypothesis: the paper's tool
            # never takes both VMs of a node down "simultaneously", which
            # with its sparse schedule (>= 5 min gaps, short boots) also
            # means the surviving sibling is always fully re-synchronized.
            self._record(vm.name, kind, skipped=True, reason="sibling not ready")
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "injector.skipped", vm.name, kind=kind,
                    reason="sibling not ready",
                )
            return
        self._record(vm.name, kind)
        if self.trace is not None:
            self.trace.emit(self.sim.now, "injector.shutdown", vm.name, kind=kind)
        vm.fail_silent(reason=f"injected-{kind}")

    def _sibling_operational(self, vm: ClockSyncVm, node: EcdNode) -> bool:
        """Sibling up *and* re-synchronized (a valid fail-silent backup)."""
        from repro.core.aggregator import AggregatorMode

        for other in node.clock_sync_vms:
            if other is vm or not other.running:
                continue
            if not self.config.require_sibling_synchronized:
                return True
            aggregator = getattr(other, "aggregator", None)
            if aggregator is None or aggregator.mode is AggregatorMode.FAULT_TOLERANT:
                return True
        return False

    def _gm_of(self, node: EcdNode) -> Optional[ClockSyncVm]:
        for vm in node.clock_sync_vms:
            if vm.is_gm:
                return vm
        return None

    def _record(self, vm: str, kind: str, skipped: bool = False, reason: str = "") -> None:
        self.records.append(
            InjectionRecord(
                time=self.sim.now, vm=vm, kind=kind, skipped=skipped, reason=reason
            )
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def performed(self, kind: Optional[str] = None) -> List[InjectionRecord]:
        """Injections that actually happened."""
        return [
            r
            for r in self.records
            if not r.skipped and (kind is None or r.kind == kind)
        ]

    def summary(self) -> dict:
        """Counts in the shape the paper reports (§III-C)."""
        gm = len(self.performed("gm"))
        redundant = len(self.performed("redundant"))
        return {
            "fail_silent_total": gm + redundant,
            "gm_failures": gm,
            "redundant_failures": redundant,
            "skipped": sum(1 for r in self.records if r.skipped),
        }

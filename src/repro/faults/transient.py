"""Transient software-fault calibration.

§III-C reports, over 24 h and all ptp4l instances, 2992 transmit-timestamp
timeouts (the igb driver pathology) and 347 Sync transmission deadline
misses. These are environmental noise the architecture must mask, not inputs
we control directly — the NIC model expresses them as per-event
probabilities. This module converts target 24 h totals into those
probabilities given the testbed's traffic volume, so experiment configs can
say "paper-like fault pressure" instead of hand-picked magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.timebase import HOURS, MILLISECONDS, SECONDS


@dataclass(frozen=True)
class TransientFaultPlan:
    """Calibrated per-event probabilities."""

    tx_timestamp_fail_prob: float
    deadline_miss_prob: float
    expected_tx_timeouts_per_hour: float
    expected_deadline_misses_per_hour: float


def calibrate_transients(
    target_tx_timeouts_24h: float = 2992.0,
    target_deadline_misses_24h: float = 347.0,
    n_gms: int = 4,
    n_nics: int = 8,
    sync_interval: int = 125 * MILLISECONDS,
    pdelay_interval: int = SECONDS,
) -> TransientFaultPlan:
    """Derive NIC fault probabilities from the paper's 24 h totals.

    Events that request a transmit timestamp: every GM Sync (per sync
    interval per GM) plus every pdelay request and response (per pdelay
    interval per NIC, two timestamped transmissions per exchange end).
    Launch-time transmissions: GM Syncs only.

    >>> plan = calibrate_transients()
    >>> 0 < plan.tx_timestamp_fail_prob < 0.01
    True
    """
    if min(target_tx_timeouts_24h, target_deadline_misses_24h) < 0:
        raise ValueError("targets must be nonnegative")
    day = 24 * HOURS
    sync_tx = n_gms * (day / sync_interval)
    pdelay_tx = n_nics * (day / pdelay_interval) * 2.0
    timestamped_tx = sync_tx + pdelay_tx
    launch_tx = sync_tx
    return TransientFaultPlan(
        tx_timestamp_fail_prob=target_tx_timeouts_24h / timestamped_tx,
        deadline_miss_prob=target_deadline_misses_24h / launch_tx,
        expected_tx_timeouts_per_hour=target_tx_timeouts_24h / 24.0,
        expected_deadline_misses_per_hour=target_deadline_misses_24h / 24.0,
    )

"""IEEE 802.1AS (gPTP) protocol stack.

A from-scratch implementation of the pieces of 802.1AS the paper's
architecture exercises, shaped after LinuxPTP:

* two-step Sync/FollowUp with preciseOriginTimestamp, correctionField and
  cumulative rate ratio (:mod:`repro.gptp.messages`);
* peer-delay measurement with neighbor-rate-ratio estimation on every link
  (:mod:`repro.gptp.pdelay`);
* time-aware bridging — switches terminate and regenerate Sync/FollowUp per
  domain, accumulating residence time and ingress link delay into the
  correction field (:mod:`repro.gptp.bridge`);
* ptp4l-like per-domain instances: grandmaster transmit path with ETF
  launch-time alignment, and slave offset computation feeding a pluggable
  sink (:mod:`repro.gptp.instance`);
* the LinuxPTP PI servo with its interval-scaled gains
  (:mod:`repro.gptp.servo`);
* phc2sys — the PHC → ``CLOCK_SYNCTIME`` parameter publisher
  (:mod:`repro.gptp.phc2sys`);
* BMCA (:mod:`repro.gptp.bmca`) — implemented for completeness; the paper
  disables it via external port configuration (§III-A1), and so do the
  experiments.
"""

from repro.gptp.bridge import TimeAwareBridge
from repro.gptp.domain import DomainConfig
from repro.gptp.instance import GptpStack, OffsetSample, OffsetSink, Ptp4lInstance
from repro.gptp.messages import (
    Announce,
    FollowUp,
    PdelayReq,
    PdelayResp,
    PdelayRespFollowUp,
    Sync,
)
from repro.gptp.pdelay import PdelayInitiator, PdelayResponder
from repro.gptp.phc2sys import Phc2Sys
from repro.gptp.servo import PiServo, ServoConfig, ServoState

__all__ = [
    "TimeAwareBridge",
    "DomainConfig",
    "GptpStack",
    "OffsetSample",
    "OffsetSink",
    "Ptp4lInstance",
    "Sync",
    "FollowUp",
    "Announce",
    "PdelayReq",
    "PdelayResp",
    "PdelayRespFollowUp",
    "PdelayInitiator",
    "PdelayResponder",
    "Phc2Sys",
    "PiServo",
    "ServoConfig",
    "ServoState",
]

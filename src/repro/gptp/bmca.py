"""Best Master Clock Algorithm (BMCA) — completeness extension.

The paper's experiments *disable* BMCA via external port configuration
(§III-A1): GM roles are static so a compromised node cannot promote itself.
The algorithm is nevertheless part of IEEE 802.1AS, and having it makes the
library usable for conventional single-domain deployments, so we implement
the dataset-comparison core: priority-vector ordering plus a small
per-domain selector that consumes Announce messages and elects the best GM.

This module is pure logic (no simulator dependencies) and is exercised by
its own test suite and the ablation benchmarks, not by the paper
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.gptp.messages import Announce


@dataclass(frozen=True)
class PriorityVector:
    """The comparable identity of a grandmaster candidate.

    Field order implements the 802.1AS §10.3 dataset comparison: lower
    tuples win.
    """

    priority1: int
    clock_class: int
    clock_accuracy: int
    variance: int
    priority2: int
    gm_identity: str
    steps_removed: int

    @classmethod
    def from_announce(cls, message: Announce) -> "PriorityVector":
        """Build a vector from a received Announce."""
        return cls(
            priority1=message.priority1,
            clock_class=message.clock_class,
            clock_accuracy=message.clock_accuracy,
            variance=message.variance,
            priority2=message.priority2,
            gm_identity=message.gm_identity,
            steps_removed=message.steps_removed,
        )

    def key(self) -> Tuple[int, int, int, int, int, str, int]:
        """Total-order key; smaller is better."""
        return (
            self.priority1,
            self.clock_class,
            self.clock_accuracy,
            self.variance,
            self.priority2,
            self.gm_identity,
            self.steps_removed,
        )

    def better_than(self, other: "PriorityVector") -> bool:
        """Strict dataset comparison."""
        return self.key() < other.key()


class BmcaSelector:
    """Per-domain best-master election from Announce streams.

    Candidates expire if not refreshed within ``announce_timeout`` intervals
    of :meth:`advance_time` bookkeeping (driven by the caller's clock so the
    module stays simulator-agnostic).
    """

    def __init__(self, own_vector: PriorityVector, announce_timeout: int = 3) -> None:
        self.own_vector = own_vector
        self.announce_timeout = announce_timeout
        self._candidates: Dict[str, PriorityVector] = {}
        self._age: Dict[str, int] = {}

    def on_announce(self, message: Announce) -> None:
        """Ingest a candidate."""
        vector = PriorityVector.from_announce(message)
        self._candidates[vector.gm_identity] = vector
        self._age[vector.gm_identity] = 0

    def advance_interval(self) -> None:
        """Age candidates by one announce interval; expire stale ones."""
        expired = []
        for identity in self._age:
            self._age[identity] += 1
            if self._age[identity] >= self.announce_timeout:
                expired.append(identity)
        for identity in expired:
            del self._age[identity]
            del self._candidates[identity]

    def best(self) -> PriorityVector:
        """Current election result (own vector competes)."""
        best = self.own_vector
        for vector in self._candidates.values():
            if vector.better_than(best):
                best = vector
        return best

    def is_grandmaster(self) -> bool:
        """Whether the local clock currently wins."""
        return self.best() is self.own_vector


class BmcaRunner:
    """Live BMCA for one end station's domain instance.

    Periodically transmits Announce while the local clock believes it is
    (or should be) grandmaster, ingests received Announces, ages candidates,
    and flips the ptp4l instance's port role when the election outcome
    changes. Scope: end stations on a shared segment — the paper's bridges
    keep external port configuration (§III-A1), so this extension targets
    conventional single-domain deployments and the BMCA test rig.
    """

    def __init__(
        self,
        sim,
        stack,
        domain: int,
        own_vector: PriorityVector,
        announce_interval: int = 1_000_000_000,
    ) -> None:
        from repro.sim.process import PeriodicTask

        self.sim = sim
        self.stack = stack
        self.domain = domain
        self.selector = BmcaSelector(own_vector)
        self.announce_interval = announce_interval
        self.role_changes = 0
        stack.announce_handler = self._on_announce
        self._task = PeriodicTask(
            sim,
            period=announce_interval,
            action=self._tick,
            phase=announce_interval // 4,
            name=f"bmca.{stack.transport.name}.dom{domain}",
        )

    def start(self) -> None:
        """Begin announcing/electing."""
        if not self._task.running:
            self._task.start()

    def stop(self) -> None:
        """Stop (station going down)."""
        self._task.stop()

    @property
    def is_grandmaster(self) -> bool:
        """Current election outcome."""
        return self.selector.is_grandmaster()

    # ------------------------------------------------------------------
    def _on_announce(self, message: Announce, rx_ts: int) -> None:
        if message.domain != self.domain:
            return
        if message.gm_identity == self.selector.own_vector.gm_identity:
            return  # our own announce reflected back
        self.selector.on_announce(message)
        self._apply_role()

    def _tick(self) -> None:
        self.selector.advance_interval()
        self._apply_role()
        if self.selector.is_grandmaster():
            vector = self.selector.own_vector
            self.stack.transport.send(
                Announce(
                    domain=self.domain,
                    gm_identity=vector.gm_identity,
                    priority1=vector.priority1,
                    clock_class=vector.clock_class,
                    clock_accuracy=vector.clock_accuracy,
                    variance=vector.variance,
                    priority2=vector.priority2,
                    steps_removed=vector.steps_removed,
                )
            )

    def _apply_role(self) -> None:
        instance = self.stack.instances.get(self.domain)
        if instance is None:
            return
        should_master = self.selector.is_grandmaster()
        if should_master != instance.is_gm:
            self.role_changes += 1
            instance.set_master(should_master)

"""Time-aware bridge (802.1AS relay) logic for TSN switches.

Per IEEE 802.1AS, bridges never *forward* Sync/FollowUp — they terminate and
regenerate them per domain. For a domain ``d`` the bridge has one **slave
port** (towards the GM) and a set of **master ports** (away from it); the
paper configures these statically per domain via external port configuration
(Fig. 2: the four per-domain spanning trees over the switch mesh).

On a Sync ingress at the slave port the bridge timestamps it, waits one
residence delay per egress port, retransmits, and timestamps each egress.
When the matching FollowUp arrives the bridge recomputes, per master port::

    rate_ratio'  = rate_ratio_in × neighborRateRatio(slave port)
    correction'  = correction_in
                 + rate_ratio_in × linkDelay(slave port)      # ingress link
                 + rate_ratio'   × (t_tx,port − t_rx)          # residence

with linkDelay and neighborRateRatio coming from the pdelay machinery the
bridge runs on every port.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gptp.messages import (
    FollowUp,
    PdelayReq,
    PdelayResp,
    PdelayRespFollowUp,
    Sync,
)
from repro.gptp.pdelay import PdelayInitiator, PdelayResponder
from repro.gptp.transport import SwitchPortTransport
from repro.network.packet import GPTP_MULTICAST, Packet
from repro.network.port import Port
from repro.network.switch import TsnSwitch
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog
from repro._compat import SLOTTED


@dataclass(**SLOTTED)
class _RelayState:
    """Per (domain, sequence) relay bookkeeping."""

    rx_ts: int
    tx_ts: Dict[str, int] = field(default_factory=dict)  # egress port -> t_tx
    follow_up_relayed: bool = False


@dataclass(frozen=True)
class _DomainPorts:
    """Static per-domain role assignment on this bridge.

    ``egress`` caches, per master port, the bindings the per-Sync relay
    path needs — ``(port name, port.transmit, transport name)`` — so the
    transmit hot path does no dict/attribute chasing.
    """

    slave_port: str
    master_ports: Tuple[str, ...]
    egress: Tuple[Tuple[str, object, str], ...] = ()


class TimeAwareBridge:
    """The gPTP relay entity of one switch."""

    #: Relay state for sequences older than this many behind is pruned.
    SEQ_HISTORY = 4

    def __init__(
        self,
        sim: Simulator,
        switch: TsnSwitch,
        rng: random.Random,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.rng = rng
        self.trace = trace
        self.transports: Dict[str, SwitchPortTransport] = {}
        self.responders: Dict[str, PdelayResponder] = {}
        self.initiators: Dict[str, PdelayInitiator] = {}
        self._domains: Dict[int, _DomainPorts] = {}
        self._relay: Dict[int, Dict[int, _RelayState]] = {}
        self.sync_relayed = 0
        self.follow_up_relayed = 0
        self.follow_up_dropped = 0
        # Hot-path bindings: every relayed Sync/FollowUp posts one kernel
        # event per egress port after a sampled residence delay.
        self._post = sim.post
        self._residence = switch.residence_delay
        switch.set_gptp_handler(self._on_gptp)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def enable_port(self, port_name: str) -> None:
        """Run pdelay on a port (idempotent)."""
        if port_name in self.transports:
            return
        port = self.switch.ports[port_name]
        transport = SwitchPortTransport(self.switch, port)
        self.transports[port_name] = transport
        self.responders[port_name] = PdelayResponder(transport)
        initiator = PdelayInitiator(self.sim, transport, self.rng)
        self.initiators[port_name] = initiator

    def configure_domain(
        self, domain: int, slave_port: str, master_ports: List[str]
    ) -> None:
        """Install a domain's static port roles (external port configuration)."""
        for name in [slave_port, *master_ports]:
            if name not in self.switch.ports:
                raise ValueError(f"unknown port {name!r} on {self.switch.name}")
            self.enable_port(name)
        self._domains[domain] = _DomainPorts(
            slave_port=slave_port,
            master_ports=tuple(master_ports),
            egress=tuple(
                (name, self.switch.ports[name].transmit, self.transports[name].name)
                for name in master_ports
            ),
        )
        self._relay.setdefault(domain, {})

    def start(self) -> None:
        """Start pdelay on all enabled ports."""
        for initiator in self.initiators.values():
            initiator.start()

    # ------------------------------------------------------------------
    # Ingress dispatch
    # ------------------------------------------------------------------
    def _on_gptp(self, port: Port, packet: Packet, rx_ts: int) -> None:
        # Sync/FollowUp dominate ingress volume; test for them first. The
        # message classes are disjoint, so the check order is behaviourally
        # irrelevant.
        message = packet.payload
        name = port.name
        if isinstance(message, Sync):
            self._relay_sync(name, message, rx_ts)
        elif isinstance(message, FollowUp):
            self._relay_follow_up(name, message)
        elif isinstance(message, PdelayReq):
            responder = self.responders.get(name)
            if responder is not None:
                responder.on_request(message, rx_ts)
        elif isinstance(message, PdelayResp):
            initiator = self.initiators.get(name)
            if initiator is not None and message.requester == initiator.transport.name:
                initiator.on_response(message, rx_ts)
        elif isinstance(message, PdelayRespFollowUp):
            initiator = self.initiators.get(name)
            if initiator is not None and message.requester == initiator.transport.name:
                initiator.on_response_follow_up(message)

    # ------------------------------------------------------------------
    # Sync/FollowUp regeneration
    # ------------------------------------------------------------------
    def _relay_sync(self, ingress: str, message: Sync, rx_ts: int) -> None:
        ports = self._domains.get(message.domain)
        if ports is None or ports.slave_port != ingress:
            return  # not configured, or arrived on a non-slave port: drop
        states = self._relay[message.domain]
        states[message.sequence_id] = _RelayState(rx_ts=rx_ts)
        self._prune(states, message.sequence_id)
        for eg in ports.egress:
            self._post(self._residence(), self._transmit_sync, message, eg)

    def _transmit_sync(self, message: Sync, eg: tuple) -> None:
        states = self._relay[message.domain]
        state = states.get(message.sequence_id)
        if state is None:
            return
        tx_ts = self.switch.timestamp()
        state.tx_ts[eg[0]] = tx_ts
        eg[1](Packet(GPTP_MULTICAST, eg[2], message))
        self.sync_relayed += 1

    def _relay_follow_up(self, ingress: str, message: FollowUp) -> None:
        ports = self._domains.get(message.domain)
        if ports is None or ports.slave_port != ingress:
            return
        state = self._relay[message.domain].get(message.sequence_id)
        if state is None or state.follow_up_relayed:
            self.follow_up_dropped += 1
            return
        ingress_pdelay = self.initiators[ingress]
        if ingress_pdelay.link_delay is None:
            self.follow_up_dropped += 1
            return  # cannot build a correct correction field yet
        state.follow_up_relayed = True
        rate_ratio_out = message.rate_ratio * ingress_pdelay.neighbor_rate_ratio
        base_correction = (
            message.correction_field
            + message.rate_ratio * ingress_pdelay.link_delay
        )
        for eg in ports.egress:
            tx_ts = state.tx_ts.get(eg[0])
            if tx_ts is None:
                # FollowUp overtook the Sync egress (possible under extreme
                # queueing): retry shortly instead of dropping the interval.
                self._post(
                    self._residence(), self._retry_follow_up, message, eg
                )
                continue
            self._transmit_follow_up(message, eg, state, base_correction, rate_ratio_out)

    def _retry_follow_up(self, message: FollowUp, eg: tuple) -> None:
        ports = self._domains.get(message.domain)
        state = self._relay[message.domain].get(message.sequence_id)
        if ports is None or state is None:
            return
        tx_ts = state.tx_ts.get(eg[0])
        if tx_ts is None:
            self.follow_up_dropped += 1
            return
        ingress_pdelay = self.initiators[ports.slave_port]
        if ingress_pdelay.link_delay is None:
            self.follow_up_dropped += 1
            return
        rate_ratio_out = message.rate_ratio * ingress_pdelay.neighbor_rate_ratio
        base_correction = (
            message.correction_field
            + message.rate_ratio * ingress_pdelay.link_delay
        )
        self._transmit_follow_up(message, eg, state, base_correction, rate_ratio_out)

    def _transmit_follow_up(
        self,
        message: FollowUp,
        eg: tuple,
        state: _RelayState,
        base_correction: float,
        rate_ratio_out: float,
    ) -> None:
        residence = state.tx_ts[eg[0]] - state.rx_ts
        out_message = FollowUp(
            message.domain,
            message.sequence_id,
            message.gm_identity,
            message.precise_origin_timestamp,
            base_correction + rate_ratio_out * residence,
            rate_ratio_out,
        )
        self._post(self._residence(), eg[1], Packet(GPTP_MULTICAST, eg[2], out_message))
        self.follow_up_relayed += 1

    def _prune(self, states: Dict[int, _RelayState], newest: int) -> None:
        stale = [seq for seq in states if seq <= newest - self.SEQ_HISTORY]
        for seq in stale:
            del states[seq]

    def __repr__(self) -> str:
        return f"TimeAwareBridge({self.switch.name!r}, domains={sorted(self._domains)})"

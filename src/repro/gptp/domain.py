"""gPTP domain configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.timebase import MILLISECONDS


@dataclass(frozen=True)
class DomainConfig:
    """Static configuration of one gPTP domain.

    The paper uses external port configuration: GM assignment and the
    per-domain spanning tree are fixed offline, there is no BMCA (§III-A1).

    Attributes
    ----------
    number:
        Domain number (dom1..dom4 in the paper → 1..4 here).
    gm_identity:
        Name of the clock synchronization VM acting as this domain's GM
        (``c{x}_1`` on device x).
    sync_interval:
        Synchronization period S, ns; 125 ms in all experiments.
    follow_up_timeout:
        How long a slave keeps an unmatched Sync before discarding it, ns.
    """

    number: int
    gm_identity: str
    sync_interval: int = 125 * MILLISECONDS
    follow_up_timeout: int = 125 * MILLISECONDS

    def __post_init__(self) -> None:
        if self.number < 0:
            raise ValueError("domain number must be nonnegative")
        if self.sync_interval <= 0:
            raise ValueError("sync_interval must be positive")

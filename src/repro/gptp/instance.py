"""ptp4l-like per-domain protocol instances and the per-NIC gPTP stack.

A clock synchronization VM runs ``M`` :class:`Ptp4lInstance` objects over a
single NIC — one per gPTP domain — exactly like the paper's patched ptp4l
processes. Each instance is either

* **grandmaster** for its domain: it transmits two-step Sync on a launch-time
  grid aligned to its (FTA-disciplined) PHC so all GMs send within the
  synchronization precision of each other (§II-B), then issues the FollowUp
  with the hardware transmit timestamp as ``preciseOriginTimestamp``; or
* **slave**: it matches Sync/FollowUp pairs, subtracts the access-link pdelay
  and the accumulated correction field, and emits the GM offset
  ``c_i = t_rx,local − t_GM,at-rx``.

Offsets do not go to a servo directly — they go to a pluggable
:class:`OffsetSink`. The paper's contribution (FTSHMEM + FTA + shared PI) is
one sink; the single-domain baseline wires a servo-backed sink instead.

A compromised GM runs the same code with ``malicious_origin_shift`` set: the
FollowUp's preciseOriginTimestamp is silently displaced, which is the attack
from §III-B (−24 µs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol

from repro.clocks.hardware_clock import HardwareClock
from repro.gptp.domain import DomainConfig
from repro.gptp.messages import (
    Announce,
    FollowUp,
    PdelayReq,
    PdelayResp,
    PdelayRespFollowUp,
    Sync,
)
from repro.gptp.pdelay import PdelayInitiator, PdelayResponder
from repro.gptp.transport import NicTransport
from repro.network.nic import Nic
from repro.network.packet import GPTP_MULTICAST, Packet
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MILLISECONDS
from repro.sim.trace import TraceLog
from repro._compat import SLOTTED


@dataclass(**SLOTTED)
class OffsetSample:
    """One measured GM offset at one slave.

    ``offset`` follows the LinuxPTP convention ``slave − master``: positive
    means the local clock is ahead of the grandmaster.

    Treat as immutable. Not ``frozen``: one sample is allocated per received
    FollowUp, and frozen construction costs ~4× (every field goes through
    ``object.__setattr__``).
    """

    domain: int
    gm_identity: str
    offset: float
    origin_timestamp: int
    local_rx_timestamp: int


class OffsetSink(Protocol):
    """Consumer of per-domain offset samples (FTA aggregator, baselines)."""

    def handle_offset(self, sample: OffsetSample) -> None:
        """Ingest one sample."""
        ...


class Ptp4lInstance:
    """One domain's protocol engine on one NIC."""

    #: Sync is enqueued this long (PHC time) before its launch instant.
    LAUNCH_LEAD = 20 * MILLISECONDS

    def __init__(
        self,
        sim: Simulator,
        config: DomainConfig,
        transport: NicTransport,
        clock: HardwareClock,
        sink: OffsetSink,
        rng: random.Random,
        link_delay_source: PdelayInitiator,
        is_gm: bool = False,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.transport = transport
        self.clock = clock
        self.sink = sink
        self.rng = rng
        self.link_delay_source = link_delay_source
        self.is_gm = is_gm
        self.trace = trace
        #: Attack knob (§III-B): added to every preciseOriginTimestamp.
        self.malicious_origin_shift: int = 0
        self.sync_sent = 0
        self.follow_up_sent = 0
        self.offsets_computed = 0
        self.follow_up_missing_sync = 0
        self._seq = 0
        self._last_launch: Optional[int] = None
        self._pending_sync: Dict[int, int] = {}  # seq -> rx_ts
        self._running = False
        # Hot-path bindings: one timeout post per received Sync.
        self._post = sim.post
        self._follow_up_timeout = config.follow_up_timeout
        self._gm_task: Optional[PeriodicTask] = None
        if is_gm:
            self._ensure_gm_task()

    def _ensure_gm_task(self) -> None:
        if self._gm_task is None:
            self._gm_task = PeriodicTask(
                self.sim,
                period=self.config.sync_interval,
                action=self._enqueue_sync,
                phase=self.LAUNCH_LEAD,
                jitter=self.config.sync_interval // 50,
                rng=self.rng,
                name=f"gm.{self.transport.name}.dom{self.config.number}",
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin operation (GM transmit loop, if any)."""
        self._running = True
        if self.is_gm:
            self._ensure_gm_task()
            if not self._gm_task.running:
                self._gm_task.start()

    def stop(self) -> None:
        """Halt operation and drop matching state (VM failure/reboot)."""
        self._running = False
        if self._gm_task is not None:
            self._gm_task.stop()
        self._pending_sync.clear()

    def set_master(self, is_master: bool) -> None:
        """Switch the port role at runtime (BMCA-driven deployments).

        The paper's experiments use external port configuration (static
        roles); this hook lets the BMCA extension promote/demote an end
        station when elections change.
        """
        if is_master == self.is_gm:
            return
        self.is_gm = is_master
        if is_master:
            self._pending_sync.clear()
            if self._running:
                self._ensure_gm_task()
                if not self._gm_task.running:
                    self._gm_task.start()
        else:
            if self._gm_task is not None and self._gm_task.running:
                self._gm_task.stop()

    # ------------------------------------------------------------------
    # Grandmaster transmit path
    # ------------------------------------------------------------------
    def _enqueue_sync(self) -> None:
        """Enqueue the next Sync at the next launch-grid point of the PHC.

        The grid is the PHC's multiples of the sync interval S. Because every
        GM's PHC is disciplined toward the fault-tolerant global time, the M
        grandmasters hit the same grid point within the synchronization
        precision Π — the paper's quasi-synchronous transmission via the ETF
        qdisc and NIC launch time.
        """
        interval = self.config.sync_interval
        phc_now = self.clock.time()
        launch = ((phc_now + self.LAUNCH_LEAD // 2) // interval + 1) * interval
        if self._last_launch is not None and launch <= self._last_launch:
            launch = self._last_launch + interval
        self._last_launch = launch
        self._seq += 1
        seq = self._seq
        sync = Sync(
            domain=self.config.number,
            sequence_id=seq,
            gm_identity=self.transport.name,
        )

        def with_tx_timestamp(tx_ts: Optional[int]) -> None:
            if tx_ts is None:
                # tx_timeout or deadline miss: the NIC already counted and
                # traced it; without t1 there is nothing to follow up.
                return
            self._send_follow_up(seq, tx_ts)

        self.transport.send(sync, launch_time=launch, on_tx_timestamp=with_tx_timestamp)
        self.sync_sent += 1

    def _send_follow_up(self, seq: int, tx_ts: int) -> None:
        origin = tx_ts + self.malicious_origin_shift
        follow_up = FollowUp(
            self.config.number, seq, self.transport.name, origin, 0.0, 1.0
        )
        self.transport.send(follow_up)
        self.follow_up_sent += 1
        # The GM's own offset to its domain's grandmaster is zero by
        # definition; feeding it keeps the FTA's view complete (classic
        # FTA includes the local clock's self-difference).
        self.sink.handle_offset(
            OffsetSample(self.config.number, self.transport.name, 0.0, origin, tx_ts)
        )

    # ------------------------------------------------------------------
    # Slave receive path
    # ------------------------------------------------------------------
    def on_sync(self, message: Sync, rx_ts: int) -> None:
        """Record a Sync's hardware receive timestamp, await its FollowUp."""
        if self.is_gm:
            return  # our own domain's Sync reflected by mis-wiring: ignore
        self._pending_sync[message.sequence_id] = rx_ts
        # Bound matching state: discard if the FollowUp never shows.
        self._post(
            self._follow_up_timeout,
            self._pending_sync.pop,
            message.sequence_id,
            None,
        )

    def on_follow_up(self, message: FollowUp) -> None:
        """Match a FollowUp against its Sync and emit the GM offset."""
        if self.is_gm:
            return
        rx_ts = self._pending_sync.pop(message.sequence_id, None)
        if rx_ts is None:
            self.follow_up_missing_sync += 1
            return
        link_delay = self.link_delay_source.link_delay
        if link_delay is None:
            return  # pdelay not converged yet; skip this interval
        master_at_rx = (
            message.precise_origin_timestamp
            + message.correction_field
            + message.rate_ratio * link_delay
        )
        offset = rx_ts - master_at_rx
        self.offsets_computed += 1
        self.sink.handle_offset(
            OffsetSample(
                self.config.number,
                message.gm_identity,
                offset,
                message.precise_origin_timestamp,
                rx_ts,
            )
        )

    def __repr__(self) -> str:
        role = "GM" if self.is_gm else "slave"
        return f"Ptp4lInstance(dom{self.config.number}, {role}, {self.transport.name!r})"


class GptpStack:
    """Everything gPTP on one NIC: pdelay, M instances, rx dispatch."""

    def __init__(
        self,
        sim: Simulator,
        nic: Nic,
        rng: random.Random,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.rng = rng
        self.trace = trace
        self.transport = NicTransport(nic)
        self.pdelay_responder = PdelayResponder(self.transport)
        self.pdelay_initiator = PdelayInitiator(sim, self.transport, rng)
        self.instances: Dict[int, Ptp4lInstance] = {}
        self.announce_handler: Optional[Callable[[Announce, int], None]] = None
        self._started = False
        nic.attach_rx_handler(self._on_rx)

    # ------------------------------------------------------------------
    def add_instance(
        self,
        config: DomainConfig,
        sink: OffsetSink,
        is_gm: bool = False,
    ) -> Ptp4lInstance:
        """Create the ptp4l instance for one domain."""
        if config.number in self.instances:
            raise ValueError(f"domain {config.number} already configured")
        instance = Ptp4lInstance(
            sim=self.sim,
            config=config,
            transport=self.transport,
            clock=self.nic.clock,
            sink=sink,
            rng=self.rng,
            link_delay_source=self.pdelay_initiator,
            is_gm=is_gm,
            trace=self.trace,
        )
        self.instances[config.number] = instance
        if self._started:
            instance.start()
        return instance

    def start(self) -> None:
        """Start pdelay and all instances."""
        if self._started:
            return
        self._started = True
        self.pdelay_initiator.start()
        for instance in self.instances.values():
            instance.start()

    def stop(self) -> None:
        """Stop everything (fail-silent VM / shutdown)."""
        if not self._started:
            return
        self._started = False
        self.pdelay_initiator.stop()
        for instance in self.instances.values():
            instance.stop()

    # ------------------------------------------------------------------
    def _on_rx(self, packet: Packet, rx_ts: int) -> None:
        # Inline of packet.is_gptp(): this runs for every received frame.
        if packet.dst != GPTP_MULTICAST or not self._started:
            return
        # Sync/FollowUp dominate ingress volume; test for them first. The
        # message classes are disjoint, so the check order is behaviourally
        # irrelevant.
        message = packet.payload
        if isinstance(message, Sync):
            instance = self.instances.get(message.domain)
            if instance is not None:
                instance.on_sync(message, rx_ts)
        elif isinstance(message, FollowUp):
            instance = self.instances.get(message.domain)
            if instance is not None:
                instance.on_follow_up(message)
        elif isinstance(message, PdelayReq):
            self.pdelay_responder.on_request(message, rx_ts)
        elif isinstance(message, PdelayResp):
            if message.requester == self.transport.name:
                self.pdelay_initiator.on_response(message, rx_ts)
        elif isinstance(message, PdelayRespFollowUp):
            if message.requester == self.transport.name:
                self.pdelay_initiator.on_response_follow_up(message)
        elif isinstance(message, Announce):
            if self.announce_handler is not None:
                self.announce_handler(message, rx_ts)

    def __repr__(self) -> str:
        return f"GptpStack({self.nic.name!r}, domains={sorted(self.instances)})"

"""gPTP message types.

Only the fields the architecture consumes are modelled; wire encoding is out
of scope (the simulator passes message objects as packet payloads).

The paper's multi-domain extension rides entirely on standard messages: each
gPTP domain carries its own Sync/FollowUp stream, distinguished by the
``domain`` field, exactly as multiple ptp4l instances bound to distinct
domain numbers would see on a real NIC.

All message types are value objects and must be treated as immutable —
bridges share one instance across every egress port. ``Sync`` and
``FollowUp`` are created on the per-interval hot path (thousands per
simulated second), so they are *not* ``frozen``: the frozen machinery routes
every field through ``object.__setattr__`` and makes construction ~4× more
expensive. The cold control-plane messages keep ``frozen=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._compat import SLOTTED


@dataclass(**SLOTTED)
class Sync:
    """Two-step Sync: an event message carrying no time of its own.

    Attributes
    ----------
    domain:
        gPTP domain number.
    sequence_id:
        Per-(GM, domain) sequence counter.
    gm_identity:
        Sending grandmaster's clock identity (VM name in the testbed).
    """

    domain: int
    sequence_id: int
    gm_identity: str


@dataclass(**SLOTTED)
class FollowUp:
    """FollowUp for a two-step Sync.

    Attributes
    ----------
    domain, sequence_id, gm_identity:
        Match the corresponding :class:`Sync`.
    precise_origin_timestamp:
        GM time when the Sync left the GM's NIC, ns. A *malicious* ptp4l
        (§III-B) shifts this field.
    correction_field:
        Accumulated link delays + bridge residence times since the GM, ns
        (fractional ns kept as float, as the wire format's 2^-16 scaling
        allows).
    rate_ratio:
        Cumulative (GM frequency / sender frequency) product.
    """

    domain: int
    sequence_id: int
    gm_identity: str
    precise_origin_timestamp: int
    correction_field: float
    rate_ratio: float


@dataclass(frozen=True, **SLOTTED)
class PdelayReq:
    """Peer-delay request (event message, timestamped both ends)."""

    sequence_id: int
    requester: str


@dataclass(frozen=True, **SLOTTED)
class PdelayResp:
    """Peer-delay response, carrying the request's receipt time t2."""

    sequence_id: int
    requester: str
    responder: str
    request_receipt_timestamp: int


@dataclass(frozen=True, **SLOTTED)
class PdelayRespFollowUp:
    """Peer-delay response follow-up, carrying the response's origin time t3."""

    sequence_id: int
    requester: str
    responder: str
    response_origin_timestamp: int


@dataclass(frozen=True, **SLOTTED)
class Announce:
    """Announce message (used only by the BMCA extension).

    Field order mirrors the 802.1AS priority vector comparison.
    """

    domain: int
    gm_identity: str
    priority1: int
    clock_class: int
    clock_accuracy: int
    variance: int
    priority2: int
    steps_removed: int

"""Peer-delay measurement (802.1AS pdelay mechanism).

Every link runs the three-message exchange

    initiator --PdelayReq-->  responder        (t1 tx @ initiator, t2 rx @ responder)
    initiator <--PdelayResp-- responder        (t3 tx @ responder, t4 rx @ initiator)
    initiator <--PdelayRespFollowUp--          (carries t3)

and the initiator computes the mean one-way delay

    D = ((t4 - t1) - r * (t3 - t2)) / 2

where ``r`` is the *neighbor rate ratio* (responder frequency / initiator
frequency) estimated from the slopes of successive (t3, t4) pairs. The
estimate feeds two consumers: slaves subtract the access-link delay when
computing GM offsets, and time-aware bridges add the ingress-link delay to
the correction field when regenerating Sync.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.gptp.messages import PdelayReq, PdelayResp, PdelayRespFollowUp
from repro.gptp.transport import GptpTransport
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MILLISECONDS, SECONDS


class PdelayResponder:
    """Answers PdelayReq on one interface."""

    def __init__(self, transport: GptpTransport) -> None:
        self.transport = transport
        self.responses = 0

    def on_request(self, message: PdelayReq, rx_ts: int) -> None:
        """Handle a request: send Resp now, RespFollowUp once t3 is known."""
        self.responses += 1
        resp = PdelayResp(
            sequence_id=message.sequence_id,
            requester=message.requester,
            responder=self.transport.name,
            request_receipt_timestamp=rx_ts,
        )

        def with_t3(t3: Optional[int]) -> None:
            if t3 is None:
                return  # tx timestamp lost; initiator discards the round
            follow = PdelayRespFollowUp(
                sequence_id=message.sequence_id,
                requester=message.requester,
                responder=self.transport.name,
                response_origin_timestamp=t3,
            )
            self.transport.send(follow)

        self.transport.send(resp, on_tx_timestamp=with_t3)


@dataclass
class _Round:
    """In-flight initiator state for one sequence id."""

    sequence_id: int
    t1: Optional[int] = None
    t2: Optional[int] = None
    t3: Optional[int] = None
    t4: Optional[int] = None

    def complete(self) -> bool:
        return None not in (self.t1, self.t2, self.t3, self.t4)


class PdelayInitiator:
    """Periodically measures the delay of one link from one end.

    Attributes
    ----------
    link_delay:
        EMA-smoothed mean one-way delay in ns, ``None`` until the first
        complete exchange.
    neighbor_rate_ratio:
        Latest responder/initiator frequency ratio estimate (1.0 until the
        slope window fills).
    """

    #: EMA weight of a fresh delay sample.
    SMOOTHING = 0.25
    #: (t3, t4) pairs kept for the rate-ratio slope.
    RATIO_WINDOW = 8

    def __init__(
        self,
        sim: Simulator,
        transport: GptpTransport,
        rng: random.Random,
        interval: int = SECONDS,
        phase: int = 20 * MILLISECONDS,
    ) -> None:
        self.sim = sim
        self.transport = transport
        self.link_delay: Optional[float] = None
        self.neighbor_rate_ratio: float = 1.0
        self.completed_rounds = 0
        self.discarded_rounds = 0
        self._seq = 0
        self._round: Optional[_Round] = None
        self._ratio_pairs: Deque[Tuple[int, int]] = deque(maxlen=self.RATIO_WINDOW)
        self._task = PeriodicTask(
            sim,
            period=interval,
            action=self._begin_round,
            phase=phase,
            jitter=interval // 10,
            rng=rng,
            name=f"pdelay.{transport.name}",
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic measurement."""
        self._task.start()

    def stop(self) -> None:
        """Stop measurement (interface going down)."""
        self._task.stop()
        self._round = None

    # ------------------------------------------------------------------
    def _begin_round(self) -> None:
        if self._round is not None:
            self.discarded_rounds += 1  # previous round never completed
        self._seq += 1
        this_round = _Round(sequence_id=self._seq)
        self._round = this_round

        def with_t1(t1: Optional[int]) -> None:
            if t1 is None:
                if self._round is this_round:
                    self._round = None
                    self.discarded_rounds += 1
                return
            this_round.t1 = t1
            self._maybe_finish(this_round)

        self.transport.send(
            PdelayReq(sequence_id=self._seq, requester=self.transport.name),
            on_tx_timestamp=with_t1,
        )

    def on_response(self, message: PdelayResp, rx_ts: int) -> None:
        """Handle PdelayResp addressed to us."""
        r = self._round
        if r is None or message.sequence_id != r.sequence_id:
            return
        r.t2 = message.request_receipt_timestamp
        r.t4 = rx_ts
        self._maybe_finish(r)

    def on_response_follow_up(self, message: PdelayRespFollowUp) -> None:
        """Handle PdelayRespFollowUp addressed to us."""
        r = self._round
        if r is None or message.sequence_id != r.sequence_id:
            return
        r.t3 = message.response_origin_timestamp
        self._maybe_finish(r)

    # ------------------------------------------------------------------
    def _maybe_finish(self, r: _Round) -> None:
        if not r.complete():
            return
        self._round = None
        self.completed_rounds += 1
        assert r.t1 is not None and r.t2 is not None
        assert r.t3 is not None and r.t4 is not None
        self._ratio_pairs.append((r.t3, r.t4))
        self._update_ratio()
        turnaround = (r.t4 - r.t1) - self.neighbor_rate_ratio * (r.t3 - r.t2)
        sample = turnaround / 2.0
        if sample < 0:
            # Timestamp noise can push a tiny delay negative; floor at zero.
            sample = 0.0
        if self.link_delay is None:
            self.link_delay = sample
        else:
            a = self.SMOOTHING
            self.link_delay = (1.0 - a) * self.link_delay + a * sample

    def _update_ratio(self) -> None:
        if len(self._ratio_pairs) < 2:
            return
        t3_first, t4_first = self._ratio_pairs[0]
        t3_last, t4_last = self._ratio_pairs[-1]
        span_local = t4_last - t4_first
        if span_local <= 0:
            return
        self.neighbor_rate_ratio = (t3_last - t3_first) / span_local

    def __repr__(self) -> str:
        return (
            f"PdelayInitiator({self.transport.name!r}, delay={self.link_delay}, "
            f"ratio={self.neighbor_rate_ratio:.9f})"
        )

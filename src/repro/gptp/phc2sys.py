"""phc2sys: publish the disciplined PHC as ``CLOCK_SYNCTIME`` parameters.

LinuxPTP's phc2sys normally slews the system clock toward the PHC. In the
paper's dependent-clock architecture it instead derives the clock parameters
(base, offset, ratio) that map the node's shared raw timebase to the NIC's
fault-tolerant global time, and writes them into the hypervisor's STSHMEM
page (§II-B, last paragraph). Co-located VMs then read ``CLOCK_SYNCTIME``
without further hypercalls.

Two derivations are provided:

* :class:`Phc2Sys` — the paper's implementation: every period the page is
  re-anchored to the *instantaneous* PHC reading. Timestamp noise and servo
  transients propagate straight into CLOCK_SYNCTIME — the feedback-flavored
  behaviour the paper suspects behind the precision spikes of Fig. 4a
  (§III-C's RADclock discussion).
* :class:`FeedForwardPhc2Sys` — the future-work variant the paper explicitly
  leaves open ("to test the hypothesis of a feed-forward CLOCK_SYNCTIME...
  requires a from-scratch prototype"): a windowed least-squares estimate of
  the raw→PHC mapping whose published parameters are additionally continuity
  constrained (no value jump at publication), in the spirit of Ridoux &
  Veitch's RADclock difference clock. The ablation bench compares both.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.clocks.hardware_clock import HardwareClock
from repro.clocks.oscillator import Oscillator
from repro.clocks.synctime import SyncTimeParams
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MILLISECONDS


class Phc2Sys:
    """Periodic PHC → STSHMEM parameter derivation."""

    #: EMA weight of a fresh rate sample.
    SMOOTHING = 0.2

    def __init__(
        self,
        sim: Simulator,
        clock: HardwareClock,
        timebase: Oscillator,
        publish: Callable[[SyncTimeParams], None],
        period: int = 125 * MILLISECONDS,
        name: str = "phc2sys",
    ) -> None:
        self.sim = sim
        self.clock = clock
        self.timebase = timebase
        self.publish = publish
        self.generation = 0
        self.publications = 0
        self._last_raw: Optional[float] = None
        self._last_phc: Optional[float] = None
        self._ratio = 1.0
        self._task = PeriodicTask(sim, period=period, action=self._tick, phase=0, name=name)

    def start(self) -> None:
        """Begin periodic publication (first tick immediately)."""
        if not self._task.running:
            self._task.start()

    def stop(self) -> None:
        """Stop publishing (fail-silent VM: the page goes stale)."""
        self._task.stop()

    def reset(self) -> None:
        """Forget estimation state (VM reboot)."""
        self._last_raw = None
        self._last_phc = None
        self._ratio = 1.0

    def _tick(self) -> None:
        raw = self.timebase.read()
        phc = float(self.clock.time())
        if self._last_raw is not None and self._last_phc is not None:
            d_raw = raw - self._last_raw
            d_phc = phc - self._last_phc
            if d_raw > 0:
                sample = d_phc / d_raw
                a = self.SMOOTHING
                self._ratio = (1.0 - a) * self._ratio + a * sample
        self._last_raw = raw
        self._last_phc = phc
        self.generation += 1
        self.publications += 1
        self.publish(
            SyncTimeParams(
                base=raw, offset=phc, ratio=self._ratio, generation=self.generation
            )
        )


class FeedForwardPhc2Sys(Phc2Sys):
    """Feed-forward CLOCK_SYNCTIME derivation (RADclock-style).

    Instead of re-anchoring the page to each instantaneous PHC reading, the
    raw→PHC relation is fit by least squares over a sliding window of
    reading pairs, and each published tuple is *continuity constrained*:
    its value at the publication instant equals the previous tuple's, so
    co-located readers never observe CLOCK_SYNCTIME jump. Rate errors decay
    through the slope estimate rather than through value re-anchoring.
    """

    #: Reading pairs kept for the regression (window = WINDOW × period).
    WINDOW = 16
    #: Re-anchor (jump) instead of slewing when the page error exceeds this
    #: — initialization and post-step escapes, as RADclock itself performs;
    #: the continuity promise holds in steady state only.
    ESCAPE_THRESHOLD = 10_000.0  # ns

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pairs: Deque[Tuple[float, float]] = deque(maxlen=self.WINDOW)
        self._published: Optional[SyncTimeParams] = None

    def reset(self) -> None:
        """Forget estimation state (VM reboot)."""
        super().reset()
        self._pairs.clear()
        self._published = None

    def _tick(self) -> None:
        raw = self.timebase.read()
        phc = float(self.clock.time())
        self._pairs.append((raw, phc))
        slope, intercept = self._fit()
        self.generation += 1
        self.publications += 1
        error_now = (
            None
            if self._published is None
            else phc - self._published.convert(raw)
        )
        if error_now is None or abs(error_now) > self.ESCAPE_THRESHOLD:
            # Initialization, or the PHC stepped far away (startup servo
            # jumps): re-anchor rather than slewing for minutes.
            params = SyncTimeParams(
                base=raw, offset=phc, ratio=slope, generation=self.generation
            )
            self._pairs.clear()
            self._pairs.append((raw, phc))
        else:
            # Continuity: the new tuple evaluates at `raw` to the previous
            # tuple's prediction, then proceeds at the freshly fitted rate.
            # The predicted-vs-fitted discrepancy is folded in gradually by
            # biasing the slope (a bounded frequency-domain correction, the
            # way RADclock absorbs offset error without stepping).
            previous_value = self._published.convert(raw)
            target_value = slope * raw + intercept
            error = target_value - previous_value
            horizon = self.WINDOW * self._task.period
            correction = max(-5e-6, min(5e-6, error / horizon))
            params = SyncTimeParams(
                base=raw,
                offset=previous_value,
                ratio=slope + correction,
                generation=self.generation,
            )
        self._published = params
        self.publish(params)

    def _fit(self) -> Tuple[float, float]:
        """Least-squares line through the (raw, phc) window."""
        n = len(self._pairs)
        if n == 1:
            raw, phc = self._pairs[0]
            return 1.0, phc - raw
        mean_x = sum(x for x, _ in self._pairs) / n
        mean_y = sum(y for _, y in self._pairs) / n
        sxx = sum((x - mean_x) ** 2 for x, _ in self._pairs)
        if sxx == 0:
            raw, phc = self._pairs[-1]
            return 1.0, phc - raw
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in self._pairs)
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        return slope, intercept

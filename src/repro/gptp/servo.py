"""LinuxPTP-style PI clock servo.

Reimplements the behaviour of LinuxPTP's ``pi.c``:

* the first offset sample only primes the servo; if it exceeds
  ``first_step_threshold`` the clock is *stepped* once, otherwise the servo
  converges by frequency alone;
* afterwards each sample produces a frequency correction
  ``freq = drift + kp * offset`` with ``drift += ki * offset`` (all in ppb,
  offsets in ns);
* the proportional/integral gains scale with the sampling interval using
  LinuxPTP's default scale/exponent rule
  (``kp = kp_scale * interval^kp_exponent`` etc.), so S = 125 ms yields the
  same loop dynamics as the real tool;
* output frequency is clamped to ``max_frequency``.

In the paper's multi-domain design there is exactly **one** servo per clock
synchronization VM, shared by the M ptp4l instances through FTSHMEM; the FTA
aggregate — not any single domain's offset — is what gets sampled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.timebase import MICROSECONDS, to_seconds


class ServoState(enum.Enum):
    """Servo lifecycle, mirroring LinuxPTP's ``servo_state``."""

    UNLOCKED = 0
    JUMP = 1
    LOCKED = 2


@dataclass(frozen=True)
class ServoConfig:
    """PI servo parameters (LinuxPTP defaults).

    Attributes
    ----------
    kp_scale, kp_exponent, kp_norm_max:
        Proportional gain rule: ``kp = min(kp_scale * interval**kp_exponent,
        kp_norm_max / interval)``.
    ki_scale, ki_exponent, ki_norm_max:
        Integral gain rule, analogous.
    first_step_threshold:
        Step (rather than slew) the clock on the first sample when the
        offset magnitude exceeds this, ns. LinuxPTP default 20 µs.
    step_threshold:
        After lock, step again when exceeding this; 0 disables re-stepping
        (LinuxPTP default).
    max_frequency:
        Output clamp, ppb (LinuxPTP default 900 ppm).
    """

    kp_scale: float = 0.7
    kp_exponent: float = -0.3
    kp_norm_max: float = 0.7
    ki_scale: float = 0.3
    ki_exponent: float = 0.4
    ki_norm_max: float = 0.3
    first_step_threshold: int = 20 * MICROSECONDS
    step_threshold: int = 0
    max_frequency: float = 900_000.0


@dataclass
class ServoOutput:
    """Result of one servo sample."""

    state: ServoState
    frequency_ppb: float
    step_ns: int = 0


class PiServo:
    """The PI servo proper. One instance per disciplined clock."""

    def __init__(
        self,
        config: ServoConfig = ServoConfig(),
        interval: int = 125_000_000,
        metrics=None,
    ) -> None:
        self.config = config
        self.interval = interval
        seconds = to_seconds(interval)
        self.kp = min(
            config.kp_scale * seconds ** config.kp_exponent,
            config.kp_norm_max / seconds,
        )
        self.ki = min(
            config.ki_scale * seconds ** config.ki_exponent,
            config.ki_norm_max / seconds,
        )
        self.state = ServoState.UNLOCKED
        self.drift = 0.0  # integrator, ppb
        self.samples = 0
        # Observability (optional MetricsRegistry); instruments are cached
        # here so the enabled path pays dictionary lookups only once.
        self._metrics = metrics
        if metrics is not None:
            from repro.metrics.registry import PPB_BUCKETS

            self._m_steps = metrics.counter("servo.steps")
            self._m_clamps = metrics.counter("servo.clamps")
            self._m_frequency = metrics.histogram(
                "servo.frequency_ppb", edges=PPB_BUCKETS
            )
            self._m_drift = metrics.gauge("servo.drift_ppb")

    def _emit(self, out: ServoOutput) -> ServoOutput:
        """Record one output (guarded; the disabled path never gets here)."""
        if out.step_ns:
            self._m_steps.inc()
        if abs(out.frequency_ppb) >= self.config.max_frequency:
            self._m_clamps.inc()
        self._m_frequency.observe(out.frequency_ppb)
        self._m_drift.set(self.drift)
        return out

    def sample(self, offset_ns: float) -> ServoOutput:
        """Feed one (aggregated) master offset; get the frequency to apply.

        Sign convention follows LinuxPTP: ``offset = slave − master``; a
        positive offset means the local clock is ahead, so the returned
        frequency *reduces* the clock rate (caller applies ``−frequency``
        semantics as LinuxPTP does via ``clockadj_set_freq(-adj)``). To keep
        call sites simple this servo returns the value to pass directly to
        :meth:`repro.clocks.hardware_clock.HardwareClock.adjust_frequency`,
        i.e. already negated.
        """
        self.samples += 1
        cfg = self.config

        if self.state is ServoState.UNLOCKED:
            if abs(offset_ns) > cfg.first_step_threshold:
                # Step the clock by -offset and *stay unlocked*: LinuxPTP's
                # pi.c resets its sample count after a step, so the next
                # sample re-enters the estimation path (priming the
                # integrator, or stepping again if the residual is still
                # gross) instead of slewing a large leftover by PI alone.
                out = ServoOutput(
                    state=ServoState.JUMP,
                    frequency_ppb=self._clamp(-self.drift),
                    step_ns=-round(offset_ns),
                )
                return out if self._metrics is None else self._emit(out)
            # Prime the integrator with the first in-bound observation.
            self.state = ServoState.LOCKED
            self.drift = self._clamp(self.drift + self.ki * offset_ns)
            freq = self.drift + self.kp * offset_ns
            out = ServoOutput(state=ServoState.LOCKED, frequency_ppb=self._clamp(-freq))
            return out if self._metrics is None else self._emit(out)

        if cfg.step_threshold and abs(offset_ns) > cfg.step_threshold:
            # Re-step on gross error (disabled by default, as in LinuxPTP).
            out = ServoOutput(
                state=ServoState.JUMP,
                frequency_ppb=self._clamp(-self.drift),
                step_ns=-round(offset_ns),
            )
            return out if self._metrics is None else self._emit(out)

        self.drift = self._clamp(self.drift + self.ki * offset_ns)
        freq = self.drift + self.kp * offset_ns
        out = ServoOutput(state=ServoState.LOCKED, frequency_ppb=self._clamp(-freq))
        return out if self._metrics is None else self._emit(out)

    def reset(self) -> None:
        """Forget all state (VM reboot)."""
        self.state = ServoState.UNLOCKED
        self.drift = 0.0
        self.samples = 0

    def _clamp(self, ppb: float) -> float:
        m = self.config.max_frequency
        return max(-m, min(m, ppb))

    def __repr__(self) -> str:
        return (
            f"PiServo(state={self.state.name}, kp={self.kp:.3f}, ki={self.ki:.3f}, "
            f"drift={self.drift:+.1f} ppb)"
        )

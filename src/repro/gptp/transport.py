"""Transport adapters binding gPTP logic to NICs and switch ports.

The protocol modules (pdelay, instances, bridge) are written against the
small :class:`GptpTransport` interface — hardware timestamping plus
link-local transmission — so the same code runs on an end-station NIC and on
each port of a time-aware switch.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from repro.network.nic import Nic, TxTimestampCallback
from repro.network.packet import GPTP_MULTICAST, Packet
from repro.network.port import Port
from repro.network.switch import TsnSwitch


class GptpTransport(Protocol):
    """What protocol logic needs from a timestamping interface."""

    name: str

    def timestamp(self) -> int:
        """Read the local PTP hardware clock (with timestamp noise)."""
        ...

    def send(
        self,
        message: Any,
        launch_time: Optional[int] = None,
        on_tx_timestamp: Optional[TxTimestampCallback] = None,
    ) -> None:
        """Transmit a gPTP message out of this interface."""
        ...


class NicTransport:
    """gPTP transport over an end-station NIC."""

    def __init__(self, nic: Nic) -> None:
        self.nic = nic
        self.name = nic.name

    def timestamp(self) -> int:
        return self.nic.timestamp()

    def send(
        self,
        message: Any,
        launch_time: Optional[int] = None,
        on_tx_timestamp: Optional[TxTimestampCallback] = None,
    ) -> None:
        packet = Packet(GPTP_MULTICAST, self.name, message)
        self.nic.send(packet, launch_time=launch_time, on_tx_timestamp=on_tx_timestamp)


class SwitchPortTransport:
    """gPTP transport over one port of a time-aware switch.

    Launch-time transmission is not used on switch ports (only GMs schedule
    launches); the parameter is accepted and ignored for interface parity.
    tx timestamps are taken at the instant the frame hits the wire and
    surface after the same driver latency an end station sees.
    """

    def __init__(self, switch: TsnSwitch, port: Port, tx_timestamp_latency: int = 50_000) -> None:
        self.switch = switch
        self.port = port
        self.name = port.full_name
        self.tx_timestamp_latency = tx_timestamp_latency

    def timestamp(self) -> int:
        return self.switch.timestamp()

    def send(
        self,
        message: Any,
        launch_time: Optional[int] = None,
        on_tx_timestamp: Optional[TxTimestampCallback] = None,
    ) -> None:
        packet = Packet(GPTP_MULTICAST, self.name, message)
        tx_ts = self.switch.timestamp()
        self.port.transmit(packet)
        if on_tx_timestamp is not None:
            self.switch.sim.schedule(self.tx_timestamp_latency, on_tx_timestamp, tx_ts)

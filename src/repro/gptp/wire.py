"""IEEE 1588/802.1AS wire-format encoding of the gPTP messages.

The simulator passes message *objects* between components (encoding adds
nothing to timing fidelity), but a credible 802.1AS implementation must
speak the real frame layout: the 34-byte IEEE 1588-2019 common header, the
10-byte PTP timestamps (48-bit seconds + 32-bit nanoseconds), the 2^16-
scaled correctionField, and 802.1AS's FollowUp information TLV with its
2^41-scaled cumulativeScaledRateOffset. This module implements that layout
with strict round-trip guarantees; the test suite pins golden byte strings
so regressions in the encoding are caught bit-for-bit.

Clock identities on the wire are 8 bytes (EUI-64). The simulator names
clocks with strings (``"c2_1"``), so a :class:`ClockIdentityRegistry` maps
names to deterministic EUI-64s and back — the same job a management layer
does on a real network when it resolves port identities to hostnames.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional, Tuple, Union

from repro.gptp.messages import (
    Announce,
    FollowUp,
    PdelayReq,
    PdelayResp,
    PdelayRespFollowUp,
    Sync,
)

#: IEEE 1588-2019 messageType values.
MSG_SYNC = 0x0
MSG_PDELAY_REQ = 0x2
MSG_PDELAY_RESP = 0x3
MSG_FOLLOW_UP = 0x8
MSG_PDELAY_RESP_FOLLOW_UP = 0xA
MSG_ANNOUNCE = 0xB

#: majorSdoId for gPTP (802.1AS) is 0x1.
GPTP_MAJOR_SDO_ID = 0x1
PTP_VERSION = 0x2

_HEADER = struct.Struct(">BBHBBHq4s8sHHBb")
HEADER_LEN = _HEADER.size  # 34 bytes

assert HEADER_LEN == 34

#: 802.1AS organization extension TLV for FollowUp (type, length, org id,
#: org subtype) followed by cumulativeScaledRateOffset, gmTimeBaseIndicator,
#: lastGmPhaseChange (12 bytes), scaledLastGmFreqChange.
_FOLLOW_UP_TLV = struct.Struct(">HH3s3siH12si")

Message = Union[Sync, FollowUp, PdelayReq, PdelayResp, PdelayRespFollowUp, Announce]


class WireError(ValueError):
    """Raised on malformed frames."""


class ClockIdentityRegistry:
    """Bidirectional mapping between clock names and EUI-64 identities."""

    def __init__(self) -> None:
        self._forward: Dict[str, bytes] = {}
        self._reverse: Dict[bytes, str] = {}

    def identity_of(self, name: str) -> bytes:
        """Deterministic EUI-64 for a clock name (registers on first use)."""
        identity = self._forward.get(name)
        if identity is None:
            identity = hashlib.sha256(name.encode("utf-8")).digest()[:8]
            self._forward[name] = identity
            self._reverse[identity] = name
        return identity

    def name_of(self, identity: bytes) -> str:
        """Resolve an identity back to a name (hex string if unknown)."""
        return self._reverse.get(identity, identity.hex())


def _encode_timestamp(ns_total: int) -> bytes:
    """PTP Timestamp: 48-bit seconds + 32-bit nanoseconds."""
    if ns_total < 0:
        raise WireError(f"timestamps are unsigned on the wire, got {ns_total}")
    seconds, nanoseconds = divmod(ns_total, 1_000_000_000)
    if seconds >= 1 << 48:
        raise WireError(f"timestamp seconds overflow 48 bits: {seconds}")
    return seconds.to_bytes(6, "big") + struct.pack(">I", nanoseconds)


def _decode_timestamp(data: bytes) -> int:
    seconds = int.from_bytes(data[:6], "big")
    nanoseconds = struct.unpack(">I", data[6:10])[0]
    return seconds * 1_000_000_000 + nanoseconds


def _scaled_correction(correction_ns: float) -> int:
    return round(correction_ns * (1 << 16))


def _unscale_correction(raw: int) -> float:
    return raw / (1 << 16)


def _scaled_rate_ratio(rate_ratio: float) -> int:
    """cumulativeScaledRateOffset = (rateRatio − 1) × 2^41 (int32)."""
    scaled = round((rate_ratio - 1.0) * (1 << 41))
    if not -(1 << 31) <= scaled < (1 << 31):
        raise WireError(f"rate ratio {rate_ratio} out of int32 scaled range")
    return scaled


def _unscale_rate_ratio(raw: int) -> float:
    return 1.0 + raw / (1 << 41)


def _header(
    message_type: int,
    length: int,
    domain: int,
    correction_ns: float,
    source_identity: bytes,
    sequence_id: int,
    log_interval: int = -3,  # 125 ms
) -> bytes:
    if not 0 <= domain <= 255:
        raise WireError(f"domain {domain} out of range")
    return _HEADER.pack(
        (GPTP_MAJOR_SDO_ID << 4) | message_type,
        PTP_VERSION,
        length,
        domain,
        0,  # minorSdoId
        0,  # flags (twoStep is bit 9 of octet 0; simplified: set below)
        _scaled_correction(correction_ns),
        b"\x00" * 4,
        source_identity,
        1,  # portNumber
        sequence_id & 0xFFFF,
        0,  # controlField (deprecated)
        log_interval,
    )


def encode(message: Message, registry: ClockIdentityRegistry) -> bytes:
    """Encode a message object into its 802.1AS frame payload."""
    if isinstance(message, Sync):
        identity = registry.identity_of(message.gm_identity)
        body = b"\x00" * 10  # originTimestamp is zero in two-step Sync
        return _header(MSG_SYNC, HEADER_LEN + 10, message.domain, 0.0,
                       identity, message.sequence_id) + body
    if isinstance(message, FollowUp):
        identity = registry.identity_of(message.gm_identity)
        body = _encode_timestamp(message.precise_origin_timestamp)
        tlv = _FOLLOW_UP_TLV.pack(
            0x0003,  # ORGANIZATION_EXTENSION
            28,
            bytes.fromhex("0080C2"),
            bytes.fromhex("000001"),
            _scaled_rate_ratio(message.rate_ratio),
            0,
            b"\x00" * 12,
            0,
        )
        return _header(
            MSG_FOLLOW_UP, HEADER_LEN + 10 + _FOLLOW_UP_TLV.size,
            message.domain, message.correction_field, identity,
            message.sequence_id,
        ) + body + tlv
    if isinstance(message, PdelayReq):
        identity = registry.identity_of(message.requester)
        return _header(MSG_PDELAY_REQ, HEADER_LEN + 20, 0, 0.0, identity,
                       message.sequence_id) + b"\x00" * 20
    if isinstance(message, PdelayResp):
        identity = registry.identity_of(message.responder)
        body = _encode_timestamp(message.request_receipt_timestamp)
        body += registry.identity_of(message.requester) + struct.pack(">H", 1)
        return _header(MSG_PDELAY_RESP, HEADER_LEN + 20, 0, 0.0, identity,
                       message.sequence_id) + body
    if isinstance(message, PdelayRespFollowUp):
        identity = registry.identity_of(message.responder)
        body = _encode_timestamp(message.response_origin_timestamp)
        body += registry.identity_of(message.requester) + struct.pack(">H", 1)
        return _header(MSG_PDELAY_RESP_FOLLOW_UP, HEADER_LEN + 20, 0, 0.0,
                       identity, message.sequence_id) + body
    if isinstance(message, Announce):
        identity = registry.identity_of(message.gm_identity)
        body = b"\x00" * 10  # reserved origin
        body += struct.pack(">hBB", 0, message.priority1, message.clock_class)
        body += struct.pack(">BHB", message.clock_accuracy,
                            message.variance & 0xFFFF, message.priority2)
        body += identity
        body += struct.pack(">HB", message.steps_removed, 0xA0)
        return _header(MSG_ANNOUNCE, HEADER_LEN + len(body), message.domain,
                       0.0, identity, 0) + body
    raise WireError(f"cannot encode {type(message).__name__}")


def decode(
    data: bytes, registry: ClockIdentityRegistry
) -> Message:
    """Decode a frame payload back into a message object."""
    if len(data) < HEADER_LEN:
        raise WireError(f"frame too short: {len(data)} bytes")
    (
        sdo_and_type,
        version,
        length,
        domain,
        _minor_sdo,
        _flags,
        correction_raw,
        _specific,
        source_identity,
        _port,
        sequence_id,
        _control,
        _log_interval,
    ) = _HEADER.unpack_from(data)
    if version != PTP_VERSION:
        raise WireError(f"unsupported PTP version {version}")
    if length != len(data):
        raise WireError(f"length field {length} != frame size {len(data)}")
    message_type = sdo_and_type & 0x0F
    source = registry.name_of(source_identity)
    body = data[HEADER_LEN:]

    if message_type == MSG_SYNC:
        return Sync(domain=domain, sequence_id=sequence_id, gm_identity=source)
    if message_type == MSG_FOLLOW_UP:
        origin = _decode_timestamp(body[:10])
        (_t, _l, _org, _sub, scaled_ratio, _ind, _phase, _freq) = (
            _FOLLOW_UP_TLV.unpack_from(body, 10)
        )
        return FollowUp(
            domain=domain,
            sequence_id=sequence_id,
            gm_identity=source,
            precise_origin_timestamp=origin,
            correction_field=_unscale_correction(correction_raw),
            rate_ratio=_unscale_rate_ratio(scaled_ratio),
        )
    if message_type == MSG_PDELAY_REQ:
        return PdelayReq(sequence_id=sequence_id, requester=source)
    if message_type == MSG_PDELAY_RESP:
        t2 = _decode_timestamp(body[:10])
        requester = registry.name_of(body[10:18])
        return PdelayResp(
            sequence_id=sequence_id,
            requester=requester,
            responder=source,
            request_receipt_timestamp=t2,
        )
    if message_type == MSG_PDELAY_RESP_FOLLOW_UP:
        t3 = _decode_timestamp(body[:10])
        requester = registry.name_of(body[10:18])
        return PdelayRespFollowUp(
            sequence_id=sequence_id,
            requester=requester,
            responder=source,
            response_origin_timestamp=t3,
        )
    if message_type == MSG_ANNOUNCE:
        (_reserved, priority1, clock_class) = struct.unpack_from(">hBB", body, 10)
        (accuracy, variance, priority2) = struct.unpack_from(">BHB", body, 14)
        (steps, _tsource) = struct.unpack_from(">HB", body, 26)
        return Announce(
            domain=domain,
            gm_identity=source,
            priority1=priority1,
            clock_class=clock_class,
            clock_accuracy=accuracy,
            variance=variance,
            priority2=priority2,
            steps_removed=steps,
        )
    raise WireError(f"unknown messageType 0x{message_type:X}")

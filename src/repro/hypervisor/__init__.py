"""ACRN-style hypervisor substrate: the fault-tolerant dependent clock.

Each edge computing device (ECD, :mod:`repro.hypervisor.node`) runs a
hypervisor hosting ``f + 1 = 2`` clock synchronization VMs
(:mod:`repro.hypervisor.clock_sync_vm`) plus a service VM. The *active*
clock synchronization VM maintains the node's ``CLOCK_SYNCTIME`` by writing
clock parameters into the STSHMEM virtual-PCI page
(:mod:`repro.hypervisor.stshmem`); co-located VMs convert raw timebase
readings through those parameters.

A hypervisor-native monitor (:mod:`repro.hypervisor.monitor`, period 125 ms
as in §III-A1) watches the page. Under the fail-silent hypothesis a faulty
VM simply stops publishing, so staleness detection suffices; when detected,
the monitor injects a takeover interrupt into the redundant VM, which starts
maintaining ``CLOCK_SYNCTIME`` without the node ever losing its clock. The
general 2f+1 voting check for the fail-consistent hypothesis (§II-A) is
implemented and tested as well (``vote_faulty``), although the testbed's
two-VM configuration cannot exercise it end-to-end — precisely the NIC-count
limitation the paper describes.
"""

from repro.hypervisor.clock_sync_vm import ClockSyncVm, ClockSyncVmConfig
from repro.hypervisor.monitor import DependentClockMonitor, vote_faulty
from repro.hypervisor.node import EcdNode
from repro.hypervisor.stshmem import StShmem
from repro.hypervisor.vm import Vm, VmState

__all__ = [
    "ClockSyncVm",
    "ClockSyncVmConfig",
    "DependentClockMonitor",
    "vote_faulty",
    "EcdNode",
    "StShmem",
    "Vm",
    "VmState",
]

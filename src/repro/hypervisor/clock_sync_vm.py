"""The clock synchronization VM.

Each instance owns a passthrough NIC (its PHC is the clock being
disciplined), runs M ptp4l instances through a :class:`GptpStack`, the
multi-domain FTA aggregation engine, and phc2sys. One VM per domain is that
domain's grandmaster (``c{x}_1`` on device x in the paper's naming).

Both clock synchronization VMs of a node run the full stack hot; the
hypervisor's STSHMEM arbitration decides whose phc2sys writes actually
maintain ``CLOCK_SYNCTIME``. On a fail-silent fault the whole stack stops —
no gPTP messages, no STSHMEM writes — and the NIC goes dark, exactly the
observable a real VM shutdown produces. On reboot the stack restarts with a
wiped FTSHMEM and re-enters STARTUP (re-integration).

Security model hooks: the VM records its (simulated) OS/kernel version; a
successful exploit (see :mod:`repro.security`) marks the VM compromised and
replaces its GM ptp4l instance's behaviour with the malicious
preciseOriginTimestamp shift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.clocks.synctime import SyncTimeParams
from repro.core.aggregator import AggregatorConfig, MultiDomainAggregator
from repro.gptp.domain import DomainConfig
from repro.gptp.instance import GptpStack
from repro.gptp.phc2sys import FeedForwardPhc2Sys, Phc2Sys
from repro.hypervisor.stshmem import StShmem
from repro.hypervisor.vm import Vm
from repro.network.nic import Nic, NicModel
from repro.sim.kernel import Simulator
from repro.sim.timebase import MILLISECONDS, SECONDS
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class ClockSyncVmConfig:
    """Static configuration of one clock synchronization VM.

    Attributes
    ----------
    gm_domain:
        Domain this VM masters, or ``None`` for a pure redundant VM.
    kernel_version:
        Simulated OS stack label, consumed by the security model
        (e.g. ``"linux-4.19.1"``).
    domains:
        All domain configurations this VM aggregates.
    aggregator:
        FTA aggregation engine parameters.
    nic:
        NIC/PHC model for the passthrough NIC.
    phc2sys_period:
        STSHMEM parameter publication period, ns.
    phc2sys_mode:
        ``"feedback"`` (the paper's implementation) or ``"feedforward"``
        (the §III-C/RADclock future-work variant).
    boot_delay:
        Reboot latency after a fail-silent fault, ns.
    """

    gm_domain: Optional[int] = None
    kernel_version: str = "linux-5.10.0"
    domains: tuple = ()
    aggregator: AggregatorConfig = AggregatorConfig()
    nic: NicModel = NicModel()
    phc2sys_period: int = 125 * MILLISECONDS
    phc2sys_mode: str = "feedback"
    boot_delay: int = 30 * SECONDS


class ClockSyncVm(Vm):
    """A clock synchronization VM with its passthrough NIC and full stack."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        config: ClockSyncVmConfig,
        stshmem: StShmem,
        rng: random.Random,
        trace: Optional[TraceLog] = None,
        metrics=None,
    ) -> None:
        super().__init__(sim, name, trace=trace, boot_delay=config.boot_delay)
        self.config = config
        self.stshmem = stshmem
        self.rng = rng
        self.compromised = False
        #: Latest derived clock parameters, before STSHMEM arbitration —
        #: the candidate value the fail-consistent monitor votes over.
        self.last_params: Optional[SyncTimeParams] = None
        #: Fail-consistent fault injection: ns added to every published
        #: offset (a VM providing *wrong* parameters instead of none).
        self.param_corruption: int = 0
        self.nic = Nic(sim, name, rng, config.nic, trace, metrics=metrics)
        self.nic.set_enabled(False)  # powered with the VM
        self.aggregator = MultiDomainAggregator(
            sim,
            self.nic.clock,
            config.aggregator,
            name=f"{name}.fta",
            trace=trace,
            metrics=metrics,
        )
        self.stack = GptpStack(sim, self.nic, rng, trace)
        for domain_config in config.domains:
            self.stack.add_instance(
                domain_config,
                sink=self.aggregator,
                is_gm=(domain_config.number == config.gm_domain),
            )
        if config.phc2sys_mode not in ("feedback", "feedforward"):
            raise ValueError(f"unknown phc2sys_mode {config.phc2sys_mode!r}")
        phc2sys_cls = (
            FeedForwardPhc2Sys if config.phc2sys_mode == "feedforward" else Phc2Sys
        )
        self.phc2sys = phc2sys_cls(
            sim,
            clock=self.nic.clock,
            timebase=stshmem.synctime.timebase,
            publish=self._publish_params,
            period=config.phc2sys_period,
            name=f"{name}.phc2sys",
        )
        self.takeovers = 0

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    @property
    def is_gm(self) -> bool:
        """Whether this VM masters a domain."""
        return self.config.gm_domain is not None

    @property
    def is_active_writer(self) -> bool:
        """Whether this VM currently maintains CLOCK_SYNCTIME."""
        return self.stshmem.active_writer == self.name

    def takeover_interrupt(self) -> None:
        """Injected by the hypervisor monitor: start maintaining the clock.

        The stack is already hot; publication begins at the next phc2sys
        tick, so takeover latency is bounded by monitor period + phc2sys
        period.
        """
        if not self.running:
            return
        self.takeovers += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "hypervisor.takeover", self.name)
        # Publish immediately rather than waiting a full period.
        self.phc2sys.stop()
        self.phc2sys.start()

    # ------------------------------------------------------------------
    # Attack surface (driven by repro.security)
    # ------------------------------------------------------------------
    def compromise(self, origin_shift: int) -> None:
        """Replace the GM's ptp4l with a malicious instance (§III-B)."""
        self.compromised = True
        if self.config.gm_domain is not None:
            instance = self.stack.instances[self.config.gm_domain]
            instance.malicious_origin_shift = origin_shift
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "attack.ptp4l_replaced", self.name,
                origin_shift=origin_shift,
            )

    # ------------------------------------------------------------------
    # Lifecycle hooks
    # ------------------------------------------------------------------
    def _on_started(self) -> None:
        self.nic.set_enabled(True)
        # Any boot after the first is a re-integration into a running
        # system; the aggregator must rejoin the live ensemble.
        self.aggregator.reset(rejoin=self.boots > 1)
        self.phc2sys.reset()
        self.param_corruption = 0  # a reboot restores the clean image
        self.stack.start()
        self.phc2sys.start()

    def _on_stopped(self) -> None:
        self.stack.stop()
        self.phc2sys.stop()
        self.nic.set_enabled(False)

    def corrupt_clock(self, offset_shift: int) -> None:
        """Inject a fail-consistent fault: publish wrong clock parameters.

        §II-A: with 2f+1 redundant VMs the hypervisor monitor's voting
        detects this; with the testbed's two VMs it cannot — which is why
        the paper restricts itself to the fail-silent hypothesis.
        """
        self.param_corruption = offset_shift
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "fault.fail_consistent", self.name,
                offset_shift=offset_shift,
            )

    # ------------------------------------------------------------------
    def _publish_params(self, params: SyncTimeParams) -> None:
        if not self.running:
            return
        if self.param_corruption:
            params = SyncTimeParams(
                base=params.base,
                offset=params.offset + self.param_corruption,
                ratio=params.ratio,
                generation=params.generation,
            )
        self.last_params = params
        self.stshmem.write(self.name, params)

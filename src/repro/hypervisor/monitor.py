"""The hypervisor-native dependent-clock monitor.

§II-A: "we extend the dependent clock by introducing a periodically
executing monitor in ACRN implementing a voting algorithm to detect clock
synchronization VMs providing faulty clock parameters. If the monitor
detects a faulty clock synchronization VM, the STSHMEM virtual PCI device
injects an interrupt into the redundant clock synchronization VM that is
about to take over."

Two detection mechanisms are implemented:

* **Staleness** (the fail-silent hypothesis the experiments use): the active
  writer's STSHMEM generation must advance within ``stale_ticks`` monitor
  periods; otherwise the VM is declared failed and the redundant VM receives
  the takeover interrupt.
* **Voting** (`vote_faulty`, the fail-consistent extension for 2f+1 VMs):
  compare the synchronized-time value implied by each VM's candidate
  parameters at a common instant; readings farther than a threshold from the
  majority cluster are flagged. The 4-NIC limitation of the testbed keeps
  this out of the end-to-end experiments, exactly as in the paper, but the
  logic ships and is tested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.clocks.synctime import SyncTimeParams
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MICROSECONDS, MILLISECONDS
from repro.sim.trace import TraceLog

if TYPE_CHECKING:
    from repro.hypervisor.clock_sync_vm import ClockSyncVm
    from repro.hypervisor.stshmem import StShmem


def vote_faulty(
    candidates: Dict[str, SyncTimeParams],
    raw_now: float,
    threshold: float = 10 * MICROSECONDS,
) -> Set[str]:
    """Majority vote over candidate clock parameters.

    Each VM's parameters are evaluated at the same raw-timebase instant;
    a VM is faulty if its implied synchronized time differs from the
    majority's median by more than ``threshold`` — and only if a *strict
    majority* of the candidates actually clusters around that median.
    With fewer than three candidates no majority exists and nothing is
    flagged; likewise an even split (e.g. two colluding VMs against two
    honest ones) puts the median between the clusters, leaves no majority
    behind it, and flags nothing — flagging everyone would fail the active
    writer over onto an equally-flagged backup.
    """
    if len(candidates) < 3:
        return set()
    values = {vm: params.convert(raw_now) for vm, params in candidates.items()}
    ordered = sorted(values.values())
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    within = {vm for vm, value in values.items() if abs(value - median) <= threshold}
    if 2 * len(within) <= len(values):
        return set()  # no strict majority cluster: a tie proves nothing
    return set(values) - within


class DependentClockMonitor:
    """Per-node staleness monitor with takeover arbitration."""

    def __init__(
        self,
        sim: Simulator,
        stshmem: "StShmem",
        vms: List["ClockSyncVm"],
        period: int = 125 * MILLISECONDS,
        stale_ticks: int = 3,
        vote_threshold: float = 10 * MICROSECONDS,
        trace: Optional[TraceLog] = None,
        name: str = "monitor",
        metrics=None,
    ) -> None:
        if not vms:
            raise ValueError("monitor needs at least one clock sync VM")
        self.sim = sim
        self.stshmem = stshmem
        self.vms = list(vms)
        self.period = period
        self.stale_ticks = stale_ticks
        self.vote_threshold = vote_threshold
        self.trace = trace
        self.name = name
        self.detections = 0
        self.vote_detections = 0
        self.takeovers_issued = 0
        #: Stalls (outages with no running backup), counted once per stall.
        self.no_backup_events = 0
        #: Monitor ticks spent retrying a failover with no backup available.
        self.no_backup_ticks = 0
        #: Duration of the most recent no-backup stall, ns (first failed
        #: failover attempt to the tick the system recovered).
        self.last_no_backup_recovery_ns: Optional[int] = None
        self._last_generation: Optional[int] = None
        self._stale_count = 0
        self._stale_since: Optional[int] = None
        self._no_backup_since: Optional[int] = None
        # Observability (optional MetricsRegistry), cached instruments.
        self._metrics = metrics
        if metrics is not None:
            self._m_detections = metrics.counter("hypervisor.detections")
            self._m_takeovers = metrics.counter("hypervisor.takeovers")
            self._m_no_backup_events = metrics.counter("hypervisor.no_backup_events")
            self._m_no_backup_ticks = metrics.counter("hypervisor.no_backup_ticks")
            self._m_failover_latency = metrics.histogram(
                "hypervisor.failover_latency_ns"
            )
            self._m_recovery_latency = metrics.histogram(
                "hypervisor.no_backup_recovery_ns"
            )
        self._task = PeriodicTask(sim, period=period, action=self._tick, name=name)

    def start(self) -> None:
        """Begin monitoring; elects the initial active writer."""
        if self.stshmem.active_writer is None:
            first = self._first_running()
            if first is not None:
                self.stshmem.set_active_writer(first.name)
        self._task.start()

    def stop(self) -> None:
        """Halt monitoring (node shutdown)."""
        self._task.stop()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._check_vote():
            return
        generation = self.stshmem.last_generation
        if self._last_generation is None or generation != self._last_generation:
            self._last_generation = generation
            self._stale_count = 0
            if self._no_backup_since is not None:
                # The silent writer resumed on its own mid-stall.
                self._record_recovery(self.sim.now)
            self._stale_since = None
            return
        self._stale_count += 1
        if self._stale_count < self.stale_ticks:
            return
        # The active writer went silent: fail it over. The stale counter is
        # NOT reset here — a failed failover (no running backup) leaves it
        # at/above the detection bound so the very next tick retries,
        # instead of silently waiting another full stale_ticks window while
        # a freshly booted VM sits idle.
        failed = self.stshmem.active_writer
        if self._stale_count == self.stale_ticks:
            # First tick at the staleness bound: one detection per outage.
            self.detections += 1
            if self._metrics is not None:
                self._m_detections.inc()
            self._stale_since = self.sim.now
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "hypervisor.stale_detected", self.name, vm=failed
                )
        self._failover(exclude={failed} if failed else set())

    def _check_vote(self) -> bool:
        """Fail-consistent detection: vote over per-VM candidate parameters.

        Needs 2f+1 ≥ 3 running VMs to form a majority — exactly the NIC-count
        limitation that keeps the paper's testbed on the fail-silent
        hypothesis. Returns True if a failover was triggered.
        """
        # Candidates: running VMs that (a) have published parameters and
        # (b) report synchronized (fault-tolerant) operation — a VM still in
        # startup legitimately disagrees with the others, and voting over it
        # would cause spurious failovers during (re-)integration.
        candidates: Dict[str, SyncTimeParams] = {}
        for vm in self.vms:
            if not vm.running or vm.last_params is None:
                continue
            aggregator = getattr(vm, "aggregator", None)
            if aggregator is not None and not self._synchronized(aggregator):
                continue
            candidates[vm.name] = vm.last_params
        if len(candidates) < 3:
            return False
        raw_now = self.stshmem.synctime.timebase.read()
        flagged = vote_faulty(candidates, raw_now, self.vote_threshold)
        if not flagged:
            return False
        active = self.stshmem.active_writer
        if self.trace is not None:
            for vm_name in sorted(flagged):
                self.trace.emit(
                    self.sim.now, "hypervisor.vote_detected", self.name,
                    vm=vm_name, active=(vm_name == active),
                )
        self.vote_detections += 1
        if active in flagged:
            self.detections += 1
            if self._metrics is not None:
                self._m_detections.inc()
            self._failover(exclude=flagged)
            return True
        return False

    def _failover(self, exclude: set) -> bool:
        backup = self._pick_backup(exclude=exclude)
        now = self.sim.now
        if backup is None:
            self.no_backup_ticks += 1
            if self._metrics is not None:
                self._m_no_backup_ticks.inc()
            if self._no_backup_since is None:
                # Entering a stall: count it once; retries are counted in
                # no_backup_ticks and tried again every monitor period.
                self._no_backup_since = now
                self.no_backup_events += 1
                if self._metrics is not None:
                    self._m_no_backup_events.inc()
                if self.trace is not None:
                    self.trace.emit(now, "hypervisor.no_backup", self.name)
            return False
        self.stshmem.set_active_writer(backup.name)
        self._last_generation = None  # re-arm against the new writer
        self._stale_count = 0
        self.takeovers_issued += 1
        if self._metrics is not None:
            self._m_takeovers.inc()
        if self._no_backup_since is not None:
            self._record_recovery(now)
        if self._stale_since is not None:
            self._observe_failover_latency(now - self._stale_since)
            self._stale_since = None
        backup.takeover_interrupt()
        return True

    def _record_recovery(self, now: int) -> None:
        """Close a no-backup stall and keep its recovery latency."""
        self.last_no_backup_recovery_ns = now - self._no_backup_since
        self._no_backup_since = None
        if self._metrics is not None:
            self._m_recovery_latency.observe(self.last_no_backup_recovery_ns)
        if self.trace is not None:
            self.trace.emit(
                now, "hypervisor.no_backup_recovered", self.name,
                latency_ns=self.last_no_backup_recovery_ns,
            )

    def _observe_failover_latency(self, latency_ns: int) -> None:
        """Record one detection-to-takeover latency (§III's failover time)."""
        if self._metrics is not None:
            self._m_failover_latency.observe(latency_ns)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "hypervisor.failover_latency", self.name,
                latency_ns=latency_ns,
            )

    @staticmethod
    def _synchronized(aggregator) -> bool:
        from repro.core.aggregator import AggregatorMode

        return aggregator.mode is AggregatorMode.FAULT_TOLERANT

    # ------------------------------------------------------------------
    def _first_running(self) -> Optional["ClockSyncVm"]:
        for vm in self.vms:
            if vm.running:
                return vm
        return None

    def _pick_backup(self, exclude: set) -> Optional["ClockSyncVm"]:
        for vm in self.vms:
            if vm.name not in exclude and vm.running:
                return vm
        return None

    def __repr__(self) -> str:
        return f"DependentClockMonitor({self.name!r}, detections={self.detections})"

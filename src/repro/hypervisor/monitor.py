"""The hypervisor-native dependent-clock monitor.

§II-A: "we extend the dependent clock by introducing a periodically
executing monitor in ACRN implementing a voting algorithm to detect clock
synchronization VMs providing faulty clock parameters. If the monitor
detects a faulty clock synchronization VM, the STSHMEM virtual PCI device
injects an interrupt into the redundant clock synchronization VM that is
about to take over."

Two detection mechanisms are implemented:

* **Staleness** (the fail-silent hypothesis the experiments use): the active
  writer's STSHMEM generation must advance within ``stale_ticks`` monitor
  periods; otherwise the VM is declared failed and the redundant VM receives
  the takeover interrupt.
* **Voting** (`vote_faulty`, the fail-consistent extension for 2f+1 VMs):
  compare the synchronized-time value implied by each VM's candidate
  parameters at a common instant; readings farther than a threshold from the
  majority cluster are flagged. The 4-NIC limitation of the testbed keeps
  this out of the end-to-end experiments, exactly as in the paper, but the
  logic ships and is tested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.clocks.synctime import SyncTimeParams
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MICROSECONDS, MILLISECONDS
from repro.sim.trace import TraceLog

if TYPE_CHECKING:
    from repro.hypervisor.clock_sync_vm import ClockSyncVm
    from repro.hypervisor.stshmem import StShmem


def vote_faulty(
    candidates: Dict[str, SyncTimeParams],
    raw_now: float,
    threshold: float = 10 * MICROSECONDS,
) -> Set[str]:
    """Majority vote over candidate clock parameters.

    Each VM's parameters are evaluated at the same raw-timebase instant;
    a VM is faulty if its implied synchronized time differs from the
    majority's median by more than ``threshold``. With fewer than three
    candidates no majority exists and nothing is flagged.
    """
    if len(candidates) < 3:
        return set()
    values = {vm: params.convert(raw_now) for vm, params in candidates.items()}
    ordered = sorted(values.values())
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {vm for vm, value in values.items() if abs(value - median) > threshold}


class DependentClockMonitor:
    """Per-node staleness monitor with takeover arbitration."""

    def __init__(
        self,
        sim: Simulator,
        stshmem: "StShmem",
        vms: List["ClockSyncVm"],
        period: int = 125 * MILLISECONDS,
        stale_ticks: int = 3,
        vote_threshold: float = 10 * MICROSECONDS,
        trace: Optional[TraceLog] = None,
        name: str = "monitor",
    ) -> None:
        if not vms:
            raise ValueError("monitor needs at least one clock sync VM")
        self.sim = sim
        self.stshmem = stshmem
        self.vms = list(vms)
        self.period = period
        self.stale_ticks = stale_ticks
        self.vote_threshold = vote_threshold
        self.trace = trace
        self.name = name
        self.detections = 0
        self.vote_detections = 0
        self.takeovers_issued = 0
        self.no_backup_events = 0
        self._last_generation: Optional[int] = None
        self._stale_count = 0
        self._task = PeriodicTask(sim, period=period, action=self._tick, name=name)

    def start(self) -> None:
        """Begin monitoring; elects the initial active writer."""
        if self.stshmem.active_writer is None:
            first = self._first_running()
            if first is not None:
                self.stshmem.set_active_writer(first.name)
        self._task.start()

    def stop(self) -> None:
        """Halt monitoring (node shutdown)."""
        self._task.stop()

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._check_vote():
            return
        generation = self.stshmem.last_generation
        if self._last_generation is None or generation != self._last_generation:
            self._last_generation = generation
            self._stale_count = 0
            return
        self._stale_count += 1
        if self._stale_count < self.stale_ticks:
            return
        # The active writer went silent: fail it over.
        self._stale_count = 0
        self.detections += 1
        failed = self.stshmem.active_writer
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "hypervisor.stale_detected", self.name, vm=failed
            )
        self._failover(exclude={failed} if failed else set())

    def _check_vote(self) -> bool:
        """Fail-consistent detection: vote over per-VM candidate parameters.

        Needs 2f+1 ≥ 3 running VMs to form a majority — exactly the NIC-count
        limitation that keeps the paper's testbed on the fail-silent
        hypothesis. Returns True if a failover was triggered.
        """
        # Candidates: running VMs that (a) have published parameters and
        # (b) report synchronized (fault-tolerant) operation — a VM still in
        # startup legitimately disagrees with the others, and voting over it
        # would cause spurious failovers during (re-)integration.
        candidates: Dict[str, SyncTimeParams] = {}
        for vm in self.vms:
            if not vm.running or vm.last_params is None:
                continue
            aggregator = getattr(vm, "aggregator", None)
            if aggregator is not None and not self._synchronized(aggregator):
                continue
            candidates[vm.name] = vm.last_params
        if len(candidates) < 3:
            return False
        raw_now = self.stshmem.synctime.timebase.read()
        flagged = vote_faulty(candidates, raw_now, self.vote_threshold)
        if not flagged:
            return False
        active = self.stshmem.active_writer
        if self.trace is not None:
            for vm_name in sorted(flagged):
                self.trace.emit(
                    self.sim.now, "hypervisor.vote_detected", self.name,
                    vm=vm_name, active=(vm_name == active),
                )
        self.vote_detections += 1
        if active in flagged:
            self.detections += 1
            self._failover(exclude=flagged)
            return True
        return False

    def _failover(self, exclude: set) -> None:
        backup = self._pick_backup(exclude=exclude)
        if backup is None:
            self.no_backup_events += 1
            if self.trace is not None:
                self.trace.emit(self.sim.now, "hypervisor.no_backup", self.name)
            return
        self.stshmem.set_active_writer(backup.name)
        self._last_generation = None  # re-arm against the new writer
        self._stale_count = 0
        self.takeovers_issued += 1
        backup.takeover_interrupt()

    @staticmethod
    def _synchronized(aggregator) -> bool:
        from repro.core.aggregator import AggregatorMode

        return aggregator.mode is AggregatorMode.FAULT_TOLERANT

    # ------------------------------------------------------------------
    def _first_running(self) -> Optional["ClockSyncVm"]:
        for vm in self.vms:
            if vm.running:
                return vm
        return None

    def _pick_backup(self, exclude: set) -> Optional["ClockSyncVm"]:
        for vm in self.vms:
            if vm.name not in exclude and vm.running:
                return vm
        return None

    def __repr__(self) -> str:
        return f"DependentClockMonitor({self.name!r}, detections={self.detections})"

"""The edge computing device (ECD): hypervisor, VMs, dependent clock.

An :class:`EcdNode` bundles one node's hypervisor-level state:

* the node-global raw timebase (what the hypervisor exposes to all VMs —
  the invariant-TSC equivalent),
* the STSHMEM page and the node's ``CLOCK_SYNCTIME`` view,
* the (up to) two clock synchronization VMs,
* the dependent-clock monitor.

Co-located application VMs are represented by reading
:meth:`EcdNode.synctime` — the paper's measurement VM does exactly that when
timestamping probe receptions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.clocks.oscillator import Oscillator, OscillatorModel
from repro.clocks.synctime import SyncTimeClock
from repro.hypervisor.clock_sync_vm import ClockSyncVm, ClockSyncVmConfig
from repro.hypervisor.monitor import DependentClockMonitor
from repro.hypervisor.stshmem import StShmem
from repro.sim.kernel import Simulator
from repro.sim.timebase import MILLISECONDS
from repro.sim.trace import TraceLog


class EcdNode:
    """One ACRN-virtualized edge device."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rng: random.Random,
        timebase_model: OscillatorModel = OscillatorModel(),
        monitor_period: int = 125 * MILLISECONDS,
        trace: Optional[TraceLog] = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace
        self.metrics = metrics
        self.timebase = Oscillator(sim, rng, timebase_model, name=f"{name}.tsc")
        self.synctime_clock = SyncTimeClock(self.timebase)
        self.stshmem = StShmem(sim, self.synctime_clock, name=f"{name}.stshmem")
        self.clock_sync_vms: List[ClockSyncVm] = []
        self.monitor_period = monitor_period
        self.monitor: Optional[DependentClockMonitor] = None

    # ------------------------------------------------------------------
    def add_clock_sync_vm(
        self, name: str, config: ClockSyncVmConfig, rng: random.Random
    ) -> ClockSyncVm:
        """Create a clock synchronization VM on this node."""
        vm = ClockSyncVm(
            self.sim, name, config, self.stshmem, rng, self.trace,
            metrics=self.metrics,
        )
        self.clock_sync_vms.append(vm)
        return vm

    def start(self) -> None:
        """Power on: boot all VMs, start the monitor."""
        for vm in self.clock_sync_vms:
            vm.start()
        self.monitor = DependentClockMonitor(
            self.sim,
            self.stshmem,
            self.clock_sync_vms,
            period=self.monitor_period,
            trace=self.trace,
            name=f"{self.name}.monitor",
            metrics=self.metrics,
        )
        self.monitor.start()

    # ------------------------------------------------------------------
    def synctime(self) -> float:
        """Read this node's ``CLOCK_SYNCTIME`` (any co-located VM's view)."""
        return self.synctime_clock.now()

    def synctime_ready(self) -> bool:
        """Whether parameters were ever published."""
        return self.synctime_clock.params is not None

    def vm(self, name: str) -> ClockSyncVm:
        """Fetch a clock sync VM by name."""
        for vm in self.clock_sync_vms:
            if vm.name == name:
                return vm
        raise KeyError(f"no VM {name!r} on {self.name}")

    def active_vm(self) -> Optional[ClockSyncVm]:
        """The VM currently maintaining CLOCK_SYNCTIME, if any."""
        writer = self.stshmem.active_writer
        if writer is None:
            return None
        try:
            return self.vm(writer)
        except KeyError:
            return None

    def __repr__(self) -> str:
        vms = [vm.name for vm in self.clock_sync_vms]
        return f"EcdNode({self.name!r}, vms={vms})"

"""The service VM (ACRN's privileged VM 0).

Fig. 2 shows each device running a privileged *service VM* alongside the
clock synchronization VMs; §III-C runs the Python fault-injection tool in
it. In the simulation the service VM is the management anchor of a node: it
hosts management tasks (like the fault injector's per-node agent), reads
the dependent clock as any co-located VM would, and — being privileged —
is never a fault-injection target.

It subclasses :class:`~repro.hypervisor.vm.Vm` so lifecycle semantics stay
uniform, but its workload is whatever management callables get attached.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.hypervisor.node import EcdNode
from repro.hypervisor.vm import Vm
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import SECONDS
from repro.sim.trace import TraceLog


class ServiceVm(Vm):
    """The privileged management VM of one device."""

    def __init__(
        self,
        sim: Simulator,
        node: EcdNode,
        trace: Optional[TraceLog] = None,
    ) -> None:
        super().__init__(sim, f"{node.name}.service", trace=trace)
        self.node = node
        self._tasks: List[PeriodicTask] = []

    def add_management_task(
        self, action: Callable[[], None], period: int, name: str
    ) -> PeriodicTask:
        """Attach a periodic management job (runs while the VM runs)."""
        task = PeriodicTask(self.sim, period=period, action=action, name=name)
        self._tasks.append(task)
        if self.running:
            task.start()
        return task

    def read_synctime(self) -> float:
        """Read the node's dependent clock like any co-located VM."""
        return self.node.synctime()

    def health_snapshot(self) -> Dict[str, object]:
        """Management view of the node's clock subsystem."""
        return {
            "node": self.node.name,
            "active_writer": self.node.stshmem.active_writer,
            "stshmem_generation": self.node.stshmem.last_generation,
            "stshmem_age_ns": self.node.stshmem.age(),
            "clock_sync_vms": {
                vm.name: {
                    "state": vm.state.value,
                    "mode": vm.aggregator.mode.name,
                    "compromised": vm.compromised,
                }
                for vm in self.node.clock_sync_vms
            },
        }

    # ------------------------------------------------------------------
    def _on_started(self) -> None:
        for task in self._tasks:
            if not task.running:
                task.start()

    def _on_stopped(self) -> None:
        for task in self._tasks:
            task.stop()

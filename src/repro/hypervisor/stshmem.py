"""STSHMEM: the synchronized-time shared memory virtual PCI device.

The hypervisor maps one page per node into every co-located VM. The page
holds the ``CLOCK_SYNCTIME`` parameters; only the currently *active* clock
synchronization VM's writes are accepted (the hypervisor arbitrates the
writer, which is how the MMU-backed design yields fail-consistent behaviour
— all readers always observe one coherent parameter set).

The monitor's observables live here too: the generation counter of the last
accepted write and the (hypervisor) time it happened.
"""

from __future__ import annotations

from typing import Optional

from repro.clocks.synctime import SyncTimeClock, SyncTimeParams
from repro.sim.kernel import Simulator


class StShmem:
    """One node's synchronized-time page."""

    def __init__(self, sim: Simulator, synctime: SyncTimeClock, name: str = "stshmem") -> None:
        self.sim = sim
        self.synctime = synctime
        self.name = name
        self.active_writer: Optional[str] = None
        self.last_write_time: Optional[int] = None
        self.last_generation: int = 0
        self.accepted_writes = 0
        self.rejected_writes = 0

    def set_active_writer(self, vm_name: Optional[str]) -> None:
        """Hypervisor arbitration: choose whose writes land."""
        self.active_writer = vm_name

    def write(self, vm_name: str, params: SyncTimeParams) -> bool:
        """Attempt a parameter write; returns whether it was accepted."""
        if vm_name != self.active_writer:
            self.rejected_writes += 1
            return False
        self.synctime.publish(params)
        self.last_write_time = self.sim.now
        self.last_generation = params.generation
        self.accepted_writes += 1
        return True

    def age(self) -> Optional[int]:
        """Nanoseconds since the last accepted write (``None`` if never)."""
        if self.last_write_time is None:
            return None
        return self.sim.now - self.last_write_time

    def __repr__(self) -> str:
        return (
            f"StShmem({self.name!r}, writer={self.active_writer!r}, "
            f"gen={self.last_generation})"
        )

"""Virtual machine lifecycle.

A :class:`Vm` can be RUNNING, STOPPED (fail-silent), or BOOTING. Fail-silent
injection stops it instantly; a reboot brings it back after ``boot_delay``.
Subclasses hook :meth:`_on_started` / :meth:`_on_stopped` to start/stop
their workloads (the clock synchronization stack, the probe responder, the
fault injection tool).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.timebase import SECONDS
from repro.sim.trace import TraceLog


class VmState(enum.Enum):
    """Lifecycle states."""

    RUNNING = "running"
    STOPPED = "stopped"
    BOOTING = "booting"


class Vm:
    """Base virtual machine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        trace: Optional[TraceLog] = None,
        boot_delay: int = 30 * SECONDS,
    ) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace
        self.boot_delay = boot_delay
        self.state = VmState.STOPPED
        self.fail_silent_count = 0
        self.boots = 0
        self._boot_handle: Optional[EventHandle] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot immediately (initial power-on)."""
        if self.state is VmState.RUNNING:
            return
        if self._boot_handle is not None:
            self._boot_handle.cancel()
            self._boot_handle = None
        self.state = VmState.RUNNING
        self.boots += 1
        self._on_started()

    def fail_silent(self, reboot: bool = True, reason: str = "injected") -> None:
        """Kill the VM now; optionally schedule its reboot.

        This is what the paper's fault injection tool triggers: the VM stops
        producing any output (fail-silent), including STSHMEM updates and
        gPTP messages.
        """
        if self.state is not VmState.RUNNING:
            return
        self.state = VmState.STOPPED
        self.fail_silent_count += 1
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "fault.fail_silent", self.name, reason=reason
            )
        self._on_stopped()
        if reboot:
            self.state = VmState.BOOTING
            self._boot_handle = self.sim.schedule(self.boot_delay, self._finish_boot)

    def _finish_boot(self) -> None:
        self._boot_handle = None
        self.state = VmState.RUNNING
        self.boots += 1
        if self.trace is not None:
            self.trace.emit(self.sim.now, "vm.rebooted", self.name)
        self._on_started()

    @property
    def running(self) -> bool:
        """Whether the VM is currently executing."""
        return self.state is VmState.RUNNING

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _on_started(self) -> None:
        """Workload start hook."""

    def _on_stopped(self) -> None:
        """Workload stop hook."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.state.value})"

"""Clock-synchronization precision measurement (§III-A2/A3).

A dedicated measurement VM (one of the clock synchronization VMs, ``c^m_2``)
multicasts a probe every second on a dedicated VLAN whose static membership
pins the paths. Every other clock synchronization VM timestamps the probe's
arrival with its node's ``CLOCK_SYNCTIME`` and reports the reading; the
measured precision of interval s is (eq. 3.1)

    Π*_s = max over receiver pairs |t_c(rx) − t_c'(rx)|.

The co-located VM ``c^m_1`` is excluded so all measured paths have equal hop
count, minimizing the measurement error γ (eq. 3.2), which we compute from
the per-path latency bounds. The theoretical upper bound Π = u(N,f)(E+Γ)
comes from the latency survey (:mod:`repro.measurement.latency`) through
:mod:`repro.core.convergence`.

Fidelity note: probes travel the real simulated network (so path latency
differences land in the timestamps exactly as on the testbed), while the
*return* of the timestamp readings to the collector is abstracted away — on
the real testbed the response path affects nothing, since the timestamp is
taken at reception.
"""

from repro.measurement.error import measurement_error
from repro.measurement.latency import LatencySurvey, SurveyResult
from repro.measurement.precision import PrecisionRecord, PrecisionSeries
from repro.measurement.probe import (
    MEASUREMENT_VLAN,
    PrecisionProbeService,
    ProbePayload,
    ProbeResponder,
)
from repro.measurement.bounds import ExperimentBounds, derive_bounds

__all__ = [
    "PrecisionProbeService",
    "ProbeResponder",
    "ProbePayload",
    "MEASUREMENT_VLAN",
    "PrecisionSeries",
    "PrecisionRecord",
    "LatencySurvey",
    "SurveyResult",
    "measurement_error",
    "ExperimentBounds",
    "derive_bounds",
]

"""Per-experiment bound derivation (the §III-A3 procedure).

Before each experiment the paper (1) surveys network latencies to get
d_min/d_max, (2) computes E = d_max − d_min, (3) takes Γ = 2 · r_max · S
from the standard's 5 ppm and the 125 ms sync interval, and (4) instantiates
Π = u(N, f)(E + Γ); plus the probe-path measurement error γ. This module
packages those steps so every experiment reports the same tuple the paper
does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.core.convergence import drift_offset, precision_bound
from repro.measurement.error import measurement_error
from repro.measurement.latency import LatencySurvey
from repro.network.topology import MeshTopology
from repro.sim.timebase import MILLISECONDS

if TYPE_CHECKING:  # avoid a measurement ↔ analysis import cycle at runtime
    from repro.analysis.bounds_theory import TheoreticalBounds


@dataclass(frozen=True)
class ExperimentBounds:
    """Everything §III-A3 derives for one experiment."""

    d_min: int
    d_max: int
    reading_error: float  # E
    drift_offset: float  # Γ
    precision_bound: float  # Π
    measurement_error: float  # γ
    #: Closed-form prediction for the same scenario, when the caller
    #: derived one (see :mod:`repro.analysis.bounds_theory`). Excluded
    #: from ``repr`` on purpose: the golden run fingerprints hash the
    #: repr of the *measured* figures, and attaching a prediction must
    #: not change a run's identity.
    predicted: Optional["TheoreticalBounds"] = field(default=None, repr=False)

    @property
    def bound_with_error(self) -> float:
        """Π + γ — the violation threshold used on measured data."""
        return self.precision_bound + self.measurement_error

    def describe(self) -> str:
        """One-line summary in the paper's notation."""
        text = (
            f"d_min={self.d_min}ns d_max={self.d_max}ns "
            f"E={self.reading_error:.0f}ns Γ={self.drift_offset:.0f}ns "
            f"Π={self.precision_bound / 1000:.3f}µs γ={self.measurement_error:.0f}ns"
        )
        if self.predicted is not None:
            text += f" envelope*={self.predicted.envelope / 1000:.3f}µs"
        return text

    def to_dict(self) -> dict:
        """Measured figures (plus the prediction when present) for manifests."""
        doc = {
            "d_min_ns": self.d_min,
            "d_max_ns": self.d_max,
            "reading_error_ns": self.reading_error,
            "drift_offset_ns": self.drift_offset,
            "precision_bound_ns": self.precision_bound,
            "measurement_error_ns": self.measurement_error,
            "bound_with_error_ns": self.bound_with_error,
        }
        if self.predicted is not None:
            doc["predicted"] = self.predicted.to_dict()
        return doc


def derive_bounds(
    topology: MeshTopology,
    measurement_nic: str,
    receiver_nics: Sequence[str],
    n_domains: int = 4,
    f: int = 1,
    max_drift_ppm: float = 5.0,
    sync_interval: int = 125 * MILLISECONDS,
    survey_nics: Sequence[str] = (),
) -> ExperimentBounds:
    """Run the full §III-A3 derivation against the built testbed.

    ``survey_nics`` restricts the latency survey to an explicit pairwise
    scan. By default the survey covers "any two nodes in the network" as
    the paper does, but via the O(switches²) spanning-tree decomposition
    (:meth:`LatencySurvey.global_bounds`) — identical d_min/d_max, without
    the O(NICs²) pair walk that dominates at fleet scale.
    """
    surveyor = LatencySurvey(topology)
    survey = surveyor.survey(survey_nics) if survey_nics else surveyor.global_bounds()
    gamma = measurement_error(topology, measurement_nic, receiver_nics)
    e = float(survey.reading_error)
    g = drift_offset(max_drift_ppm, sync_interval)
    return ExperimentBounds(
        d_min=survey.d_min,
        d_max=survey.d_max,
        reading_error=e,
        drift_offset=g,
        precision_bound=precision_bound(n_domains, f, e, g),
        measurement_error=float(gamma),
    )

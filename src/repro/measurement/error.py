"""Measurement error γ (eq. 3.2).

Asymmetric probe paths inflate the measured precision: if the probe reaches
receiver c over a slower path than receiver c', their CLOCK_SYNCTIME
readings differ by the latency difference even with perfectly synchronized
clocks. With the measurement VLAN pinned to symmetric (equal-hop) paths the
residual error is

    γ = max over measured paths (d_max) − min over measured paths (d_min)

which the paper reports as 1313 ns (experiment 1) and 856 ns (experiment 2)
and adds to the bound when judging violations (Π + γ).
"""

from __future__ import annotations

from typing import Sequence

from repro.measurement.latency import LatencySurvey
from repro.network.topology import MeshTopology


def measurement_error(
    topology: MeshTopology,
    measurement_nic: str,
    receiver_nics: Sequence[str],
) -> int:
    """γ over the probe paths from the measurement VM to each receiver.

    Uses the same observed-or-nominal per-path bounds as the latency survey,
    but restricted to the star of paths the probes actually take.
    """
    if not receiver_nics:
        raise ValueError("need at least one receiver")
    survey = LatencySurvey(topology)
    d_max_over_paths = []
    d_min_over_paths = []
    for receiver in receiver_nics:
        if receiver == measurement_nic:
            continue
        lo, hi = survey.path_bounds(measurement_nic, receiver)
        d_min_over_paths.append(lo)
        d_max_over_paths.append(hi)
    if not d_max_over_paths:
        raise ValueError("receiver set contained only the measurement NIC")
    return max(d_max_over_paths) - min(d_min_over_paths)

"""Latency survey between all node pairs (the paper's ptp4l-based survey).

The paper determines d_min and d_max — and with them the reading error
E = d_max − d_min — by measuring the latency between all nodes with ptp4l
before each experiment. We survey the same quantity from the simulated
testbed: per NIC pair, the one-way path latency bounds assembled from the
traversed links and switches, preferring *observed* per-link delays (what
pdelay/ptp4l would have seen) and falling back to nominal model bounds for
links that have not carried traffic yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.topology import MeshTopology, _switch_key


@dataclass(frozen=True)
class SurveyResult:
    """Outcome of one latency survey.

    Attributes
    ----------
    d_min, d_max:
        Extremes over all surveyed node pairs, ns.
    per_pair:
        (nic_a, nic_b) → (min, max) path latency, ns.
    """

    d_min: int
    d_max: int
    per_pair: Dict[Tuple[str, str], Tuple[int, int]]

    @property
    def reading_error(self) -> int:
        """E = d_max − d_min."""
        return self.d_max - self.d_min


def _observed_link_bounds(link) -> Tuple[int, int]:
    """Per-link (min, max): observed when traffic ran, else nominal model."""
    observed_min = link.min_observed
    observed_max = link.max_observed
    return (
        observed_min if observed_min is not None else link.model.min_delay,
        observed_max if observed_max is not None else link.model.max_delay,
    )


class LatencySurvey:
    """Surveys path-latency bounds over a built topology."""

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology

    # ------------------------------------------------------------------
    def path_bounds(self, nic_a: str, nic_b: str) -> Tuple[int, int]:
        """(min, max) one-way latency between two NICs."""
        links, switches = self.topology.path_links(nic_a, nic_b)
        lo = hi = 0
        for link in links:
            link_lo, link_hi = _observed_link_bounds(link)
            lo += link_lo
            hi += link_hi
        for switch in switches:
            lo += switch.model.residence_base
            hi += switch.model.residence_base + switch.model.residence_jitter
        return lo, hi

    def survey(self, nics: Optional[Sequence[str]] = None) -> SurveyResult:
        """Survey all pairs among ``nics`` (default: every attached NIC)."""
        names = sorted(nics) if nics is not None else sorted(self.topology.nic_switch)
        if len(names) < 2:
            raise ValueError("survey needs at least two NICs")
        per_pair: Dict[Tuple[str, str], Tuple[int, int]] = {}
        d_min: Optional[int] = None
        d_max: Optional[int] = None
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                lo, hi = self.path_bounds(a, b)
                per_pair[(a, b)] = (lo, hi)
                if d_min is None or lo < d_min:
                    d_min = lo
                if d_max is None or hi > d_max:
                    d_max = hi
        assert d_min is not None and d_max is not None
        return SurveyResult(d_min=d_min, d_max=d_max, per_pair=per_pair)

    # ------------------------------------------------------------------
    def _observed_path_sums(self, root: str) -> Dict[str, Tuple[int, int]]:
        """Observed-preferring trunk + residence sums along the BFS tree.

        The observed-preferring analog of ``Topology._path_sums``: same
        canonical shortest paths (the memoized ``spanning_tree``), but each
        trunk contributes what traffic actually exhibited when available.
        Not cached on the topology — observed extremes move as traffic
        flows — but shared across every switch pair of one survey call.
        """
        topo = self.topology
        tree = topo.spanning_tree(root)
        root_model = topo.switches[root].model
        sums: Dict[str, Tuple[int, int]] = {
            root: (
                root_model.residence_base,
                root_model.residence_base + root_model.residence_jitter,
            )
        }
        stack = [root]
        while stack:
            sw = stack.pop()
            base_min, base_max = sums[sw]
            for child in tree.children[sw]:
                t_lo, t_hi = _observed_link_bounds(topo.trunk(sw, child))
                child_model = topo.switches[child].model
                sums[child] = (
                    base_min + t_lo + child_model.residence_base,
                    base_max
                    + t_hi
                    + child_model.residence_base
                    + child_model.residence_jitter,
                )
                stack.append(child)
        return sums

    def global_bounds(self) -> SurveyResult:
        """(d_min, d_max) over every attached pair in O(switches²).

        Equivalent to :meth:`survey` over all NICs but scans switch pairs:
        only the spanning-tree-relevant NICs per switch — the two smallest
        access minima and two largest access maxima — can realize the
        global extremes, so the quadratic-in-NICs pair walk collapses to a
        quadratic-in-switches sum lookup. ``per_pair`` reports just the two
        extreme pairs that realized d_min and d_max.
        """
        topo = self.topology
        per_switch: Dict[str, List[str]] = {}
        for nic, sw in topo.nic_switch.items():
            per_switch.setdefault(sw, []).append(nic)
        total = sum(len(v) for v in per_switch.values())
        if total < 2:
            raise ValueError("survey needs at least two NICs")
        # Per switch: NICs ranked by observed-preferring access extremes.
        acc_min: Dict[str, List[Tuple[int, str]]] = {}
        acc_max: Dict[str, List[Tuple[int, str]]] = {}
        for sw, nics in per_switch.items():
            bounds = {n: _observed_link_bounds(topo.access_links[n]) for n in nics}
            acc_min[sw] = sorted((bounds[n][0], n) for n in nics)[:2]
            acc_max[sw] = sorted(
                ((bounds[n][1], n) for n in nics), reverse=True
            )[:2]
        names = sorted(per_switch, key=_switch_key)
        best_lo: Optional[Tuple[int, str, str]] = None
        best_hi: Optional[Tuple[int, str, str]] = None
        for i, a in enumerate(names):
            sums = self._observed_path_sums(a)
            for b in names[i:]:
                if a == b:
                    if len(acc_min[a]) < 2:
                        continue
                    (lo1, n1), (lo2, n2) = acc_min[a][0], acc_min[a][1]
                    lo = (lo1 + lo2 + sums[a][0], *sorted((n1, n2)))
                    (hi1, m1), (hi2, m2) = acc_max[a][0], acc_max[a][1]
                    hi = (hi1 + hi2 + sums[a][1], *sorted((m1, m2)))
                else:
                    (lo1, n1) = acc_min[a][0]
                    (lo2, n2) = acc_min[b][0]
                    lo = (lo1 + lo2 + sums[b][0], *sorted((n1, n2)))
                    (hi1, m1) = acc_max[a][0]
                    (hi2, m2) = acc_max[b][0]
                    hi = (hi1 + hi2 + sums[b][1], *sorted((m1, m2)))
                if best_lo is None or lo[0] < best_lo[0]:
                    best_lo = lo
                if best_hi is None or hi[0] > best_hi[0]:
                    best_hi = hi
        assert best_lo is not None and best_hi is not None
        per_pair = {
            (best_lo[1], best_lo[2]): self.path_bounds(best_lo[1], best_lo[2]),
            (best_hi[1], best_hi[2]): self.path_bounds(best_hi[1], best_hi[2]),
        }
        return SurveyResult(d_min=best_lo[0], d_max=best_hi[0], per_pair=per_pair)

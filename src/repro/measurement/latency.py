"""Latency survey between all node pairs (the paper's ptp4l-based survey).

The paper determines d_min and d_max — and with them the reading error
E = d_max − d_min — by measuring the latency between all nodes with ptp4l
before each experiment. We survey the same quantity from the simulated
testbed: per NIC pair, the one-way path latency bounds assembled from the
traversed links and switches, preferring *observed* per-link delays (what
pdelay/ptp4l would have seen) and falling back to nominal model bounds for
links that have not carried traffic yet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.topology import MeshTopology


@dataclass(frozen=True)
class SurveyResult:
    """Outcome of one latency survey.

    Attributes
    ----------
    d_min, d_max:
        Extremes over all surveyed node pairs, ns.
    per_pair:
        (nic_a, nic_b) → (min, max) path latency, ns.
    """

    d_min: int
    d_max: int
    per_pair: Dict[Tuple[str, str], Tuple[int, int]]

    @property
    def reading_error(self) -> int:
        """E = d_max − d_min."""
        return self.d_max - self.d_min


class LatencySurvey:
    """Surveys path-latency bounds over a built topology."""

    def __init__(self, topology: MeshTopology) -> None:
        self.topology = topology

    # ------------------------------------------------------------------
    def path_bounds(self, nic_a: str, nic_b: str) -> Tuple[int, int]:
        """(min, max) one-way latency between two NICs."""
        links, switches = self.topology.path_links(nic_a, nic_b)
        lo = hi = 0
        for link in links:
            observed_min = link.min_observed
            observed_max = link.max_observed
            lo += observed_min if observed_min is not None else link.model.min_delay
            hi += observed_max if observed_max is not None else link.model.max_delay
        for switch in switches:
            lo += switch.model.residence_base
            hi += switch.model.residence_base + switch.model.residence_jitter
        return lo, hi

    def survey(self, nics: Optional[Sequence[str]] = None) -> SurveyResult:
        """Survey all pairs among ``nics`` (default: every attached NIC)."""
        names = sorted(nics) if nics is not None else sorted(self.topology.nic_switch)
        if len(names) < 2:
            raise ValueError("survey needs at least two NICs")
        per_pair: Dict[Tuple[str, str], Tuple[int, int]] = {}
        d_min: Optional[int] = None
        d_max: Optional[int] = None
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                lo, hi = self.path_bounds(a, b)
                per_pair[(a, b)] = (lo, hi)
                if d_min is None or lo < d_min:
                    d_min = lo
                if d_max is None or hi > d_max:
                    d_max = hi
        assert d_min is not None and d_max is not None
        return SurveyResult(d_min=d_min, d_max=d_max, per_pair=per_pair)

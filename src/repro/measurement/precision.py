"""Precision series: collecting probe observations into Π*_s values."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PrecisionRecord:
    """One measurement interval's result.

    Attributes
    ----------
    seq:
        Probe sequence number (one per second of runtime).
    time:
        Simulated time the probe was sent, ns.
    precision:
        Π*_s — the maximal pairwise CLOCK_SYNCTIME disagreement, ns.
    n_receivers:
        How many VMs responded (failed VMs simply don't).
    readings:
        Per-VM CLOCK_SYNCTIME readings, kept only when the series was
        created with ``keep_readings=True`` (spike attribution).
    """

    seq: int
    time: int
    precision: float
    n_receivers: int
    readings: Optional[Dict[str, float]] = None

    def extreme_pair(self) -> Optional[tuple]:
        """(slowest VM, fastest VM) — the pair defining Π*_s.

        Requires readings; ``None`` otherwise.
        """
        if not self.readings:
            return None
        low = min(self.readings, key=self.readings.get)
        high = max(self.readings, key=self.readings.get)
        return (low, high)

    def deviations_from_median(self) -> Optional[Dict[str, float]]:
        """Per-VM deviation from the median reading (who is the outlier)."""
        if not self.readings:
            return None
        values = sorted(self.readings.values())
        n = len(values)
        median = (
            values[n // 2]
            if n % 2
            else (values[n // 2 - 1] + values[n // 2]) / 2.0
        )
        return {vm: value - median for vm, value in self.readings.items()}


class PrecisionSeries:
    """Accumulates per-probe timestamps and derives Π* per interval.

    ``keep_readings=True`` retains each interval's per-VM readings for
    spike attribution (see :meth:`PrecisionRecord.extreme_pair`) at the cost
    of a few floats per probe.
    """

    def __init__(self, keep_readings: bool = False) -> None:
        self.keep_readings = keep_readings
        self._pending: Dict[int, Dict[str, float]] = {}
        self._sent_at: Dict[int, int] = {}
        self.records: List[PrecisionRecord] = []

    # ------------------------------------------------------------------
    def probe_sent(self, seq: int, time: int) -> None:
        """Register a probe transmission."""
        self._pending[seq] = {}
        self._sent_at[seq] = time

    def observe(self, seq: int, vm: str, timestamp: float) -> None:
        """Register one receiver's CLOCK_SYNCTIME reading for a probe."""
        bucket = self._pending.get(seq)
        if bucket is not None:
            bucket[vm] = timestamp

    def finalize(self, seq: int) -> Optional[PrecisionRecord]:
        """Close an interval: compute Π*_s over the collected readings.

        Returns ``None`` (and records nothing) when fewer than two VMs
        responded — no pair, no precision value, exactly like a real
        measurement gap.
        """
        readings = self._pending.pop(seq, None)
        sent_at = self._sent_at.pop(seq, 0)
        if readings is None or len(readings) < 2:
            return None
        values = list(readings.values())
        record = PrecisionRecord(
            seq=seq,
            time=sent_at,
            precision=max(values) - min(values),
            n_receivers=len(values),
            readings=dict(readings) if self.keep_readings else None,
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    def precisions(self) -> List[float]:
        """All Π* values in sequence order."""
        return [r.precision for r in self.records]

    def series(self) -> List[tuple]:
        """(time, Π*) pairs — the Fig. 3/4 time series."""
        return [(r.time, r.precision) for r in self.records]

    def max_record(self) -> Optional[PrecisionRecord]:
        """The worst interval (the paper's red-circled 10.08 µs spike)."""
        if not self.records:
            return None
        return max(self.records, key=lambda r: r.precision)

    def violations(self, bound: float) -> List[PrecisionRecord]:
        """Intervals exceeding a bound (Π or Π + γ)."""
        return [r for r in self.records if r.precision > bound]

    def __len__(self) -> int:
        return len(self.records)

"""The measurement VM's probe service and the per-VM probe responders.

The probe is a real multicast packet on the measurement VLAN: it traverses
the simulated switches and links, so each receiver timestamps it after its
own (different) path latency — the source of the measurement error γ that
the paper subtracts analytically rather than physically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.hypervisor.clock_sync_vm import ClockSyncVm
from repro.hypervisor.node import EcdNode
from repro.measurement.precision import PrecisionSeries
from repro.network.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MILLISECONDS, SECONDS

#: VLAN id of the measurement VLAN (static membership pins probe paths).
MEASUREMENT_VLAN = 100

#: Multicast group of the probes.
PROBE_GROUP = "mcast:precision-probe"


@dataclass(frozen=True)
class ProbePayload:
    """Payload of one measurement probe."""

    seq: int


class ProbeResponder:
    """Timestamps probe arrivals with the node's CLOCK_SYNCTIME.

    Attached to a clock synchronization VM's NIC. A failed (fail-silent) VM
    does not respond — its NIC is down anyway — and a node whose STSHMEM was
    never initialized cannot timestamp yet.
    """

    def __init__(
        self,
        vm: ClockSyncVm,
        node: EcdNode,
        series: PrecisionSeries,
        enabled: bool = True,
    ) -> None:
        self.vm = vm
        self.node = node
        self.series = series
        self.enabled = enabled
        self.responses = 0
        vm.nic.attach_rx_handler(self._on_rx)

    def _on_rx(self, packet: Packet, rx_ts: int) -> None:
        if not self.enabled or packet.dst != PROBE_GROUP:
            return
        if not self.vm.running or not self.node.synctime_ready():
            return
        payload = packet.payload
        self.responses += 1
        self.series.observe(payload.seq, self.vm.name, self.node.synctime())


class PrecisionProbeService:
    """The measurement VM side: 1 Hz probes + interval finalization."""

    #: How long after sending a probe its interval closes (all receivers
    #: are a few µs away; 100 ms is generous and keeps ordering simple).
    COLLECTION_WINDOW = 100 * MILLISECONDS

    def __init__(
        self,
        sim: Simulator,
        vm: ClockSyncVm,
        series: Optional[PrecisionSeries] = None,
        period: int = SECONDS,
        vlan: int = MEASUREMENT_VLAN,
    ) -> None:
        self.sim = sim
        self.vm = vm
        self.series = series if series is not None else PrecisionSeries()
        self.vlan = vlan
        self.probes_sent = 0
        self._seq = 0
        self._task = PeriodicTask(
            sim, period=period, action=self._send_probe,
            name=f"probe.{vm.name}",
        )

    def start(self) -> None:
        """Begin probing."""
        self._task.start()

    def stop(self) -> None:
        """Halt probing."""
        self._task.stop()

    def _send_probe(self) -> None:
        if not self.vm.running:
            return  # measurement VM down: a gap in the series
        self._seq += 1
        seq = self._seq
        self.series.probe_sent(seq, self.sim.now)
        packet = Packet(
            dst=PROBE_GROUP,
            src=self.vm.name,
            payload=ProbePayload(seq=seq),
            vlan=self.vlan,
            size_bytes=64,
        )
        self.vm.nic.send(packet)
        self.probes_sent += 1
        self.sim.schedule(self.COLLECTION_WINDOW, self.series.finalize, seq)

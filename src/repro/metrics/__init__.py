"""Run-wide metrics & observability.

Disabled by default: every instrumented component takes ``metrics=None``
and guards each emission, so the cost without a registry is one ``None``
check (the :class:`~repro.sim.trace.TraceLog` pattern). Attach a
:class:`MetricsRegistry` to a testbed or experiment entry point to collect
counters, gauges, and nanosecond histograms, then export them (plus a
:class:`RunManifest`) with :func:`write_metrics_json` /
:func:`write_metrics_csv`.
"""

from repro.metrics.export import (
    load_metrics_json,
    metrics_document,
    write_metrics_csv,
    write_metrics_json,
)
from repro.metrics.manifest import METRICS_SCHEMA_VERSION, RunManifest
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PPB_BUCKETS,
    default_ns_buckets,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PPB_BUCKETS",
    "default_ns_buckets",
    "RunManifest",
    "METRICS_SCHEMA_VERSION",
    "metrics_document",
    "write_metrics_json",
    "write_metrics_csv",
    "load_metrics_json",
]

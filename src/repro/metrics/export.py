"""JSON/CSV export of a metrics registry.

The JSON document is the canonical form: ``{"manifest": {...},
"metrics": {name: snapshot}}``. The CSV form flattens every instrument to
one row per summary statistic — handy for spreadsheet-side comparisons of
nightly runs, lossy for histograms (bucket counts stay JSON-only).
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from typing import Optional

from repro.metrics.manifest import RunManifest
from repro.metrics.registry import MetricsRegistry


def metrics_document(
    registry: MetricsRegistry, manifest: Optional[RunManifest] = None
) -> dict:
    """The canonical export payload."""
    return {
        "manifest": manifest.to_dict() if manifest is not None else None,
        "metrics": registry.snapshot(),
    }


def _atomic_write(path: str, write_body) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="") as fh:
            write_body(fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def write_metrics_json(
    path: str, registry: MetricsRegistry, manifest: Optional[RunManifest] = None
) -> None:
    """Write the canonical JSON document atomically (tmp + rename)."""
    document = metrics_document(registry, manifest)
    _atomic_write(
        path, lambda fh: json.dump(document, fh, indent=2, sort_keys=True)
    )


def write_metrics_csv(
    path: str, registry: MetricsRegistry, manifest: Optional[RunManifest] = None
) -> None:
    """Write one row per instrument statistic: ``name,kind,stat,value``."""
    rows = []
    for name, snap in registry.snapshot().items():
        kind = snap["type"]
        if kind == "histogram":
            for stat in ("n", "sum", "min", "max", "mean", "p50", "p99"):
                rows.append((name, kind, stat, snap[stat]))
        else:
            rows.append((name, kind, "value", snap["value"]))
    if manifest is not None:
        for stat, value in sorted(manifest.to_dict().items()):
            if isinstance(value, (int, float, str)) or value is None:
                rows.append(("manifest", "manifest", stat, value))

    def body(fh):
        writer = csv.writer(fh)
        writer.writerow(("name", "kind", "stat", "value"))
        writer.writerows(rows)

    _atomic_write(path, body)


def load_metrics_json(path: str) -> dict:
    """Read back a document written by :func:`write_metrics_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)

"""Per-run manifest: what ran, with which knobs, how fast.

A manifest travels next to the metric series in every export so a results
file is self-describing: the configuration fingerprint ties it back to the
exact experiment arms (the same SHA-256 the results cache keys on), the
seed list makes the run reproducible, and the wall-time/throughput figures
let regressions in the harness itself show up in dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bump when the exported metrics document shape changes.
METRICS_SCHEMA_VERSION = 2


@dataclass
class RunManifest:
    """Provenance record for one experiment run."""

    experiment: str
    config_fingerprint: str
    seeds: List[int] = field(default_factory=list)
    sim_duration_ns: Optional[int] = None
    wall_time_s: Optional[float] = None
    events_dispatched: Optional[int] = None
    #: Scenario identity (name + canonical-JSON SHA-256) when the run was
    #: driven by a :class:`repro.scenarios.ScenarioSpec`.
    scenario: Optional[str] = None
    scenario_fingerprint: Optional[str] = None
    #: Online invariant-monitor outcome: PASS / DEGRADED / FAIL (None for
    #: runs that attached no monitor).
    verdict: Optional[str] = None
    #: Structured verdict context (first violation, per-invariant counts,
    #: status timeline) — :meth:`repro.monitoring.Verdict.to_dict`.
    verdict_detail: Optional[Dict[str, object]] = None
    schema_version: int = METRICS_SCHEMA_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> Optional[float]:
        if not self.wall_time_s or self.events_dispatched is None:
            return None
        return self.events_dispatched / self.wall_time_s

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "config_fingerprint": self.config_fingerprint,
            "seeds": list(self.seeds),
            "sim_duration_ns": self.sim_duration_ns,
            "wall_time_s": self.wall_time_s,
            "events_dispatched": self.events_dispatched,
            "events_per_sec": self.events_per_sec,
            "scenario": self.scenario,
            "scenario_fingerprint": self.scenario_fingerprint,
            "verdict": self.verdict,
            "verdict_detail": self.verdict_detail,
            "schema_version": self.schema_version,
            "extra": dict(self.extra),
        }

"""Per-run manifest: what ran, with which knobs, how fast.

A manifest travels next to the metric series in every export so a results
file is self-describing: the configuration fingerprint ties it back to the
exact experiment arms (the same SHA-256 the results cache keys on), the
seed list makes the run reproducible, and the wall-time/throughput figures
let regressions in the harness itself show up in dashboards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bump when the exported metrics document shape changes.
#: v3: optional ``bounds`` / ``predicted_bounds`` blocks (measured §III-A3
#: figures and the closed-form prediction from analysis.bounds_theory).
METRICS_SCHEMA_VERSION = 3


@dataclass
class RunManifest:
    """Provenance record for one experiment run."""

    experiment: str
    config_fingerprint: str
    seeds: List[int] = field(default_factory=list)
    sim_duration_ns: Optional[int] = None
    wall_time_s: Optional[float] = None
    events_dispatched: Optional[int] = None
    #: Scenario identity (name + canonical-JSON SHA-256) when the run was
    #: driven by a :class:`repro.scenarios.ScenarioSpec`.
    scenario: Optional[str] = None
    scenario_fingerprint: Optional[str] = None
    #: Online invariant-monitor outcome: PASS / DEGRADED / FAIL (None for
    #: runs that attached no monitor).
    verdict: Optional[str] = None
    #: Structured verdict context (first violation, per-invariant counts,
    #: status timeline) — :meth:`repro.monitoring.Verdict.to_dict`.
    verdict_detail: Optional[Dict[str, object]] = None
    #: Measured §III-A3 bound figures for the run's testbed
    #: (:meth:`repro.measurement.bounds.ExperimentBounds.to_dict`) and the
    #: closed-form prediction for the same scenario
    #: (:meth:`repro.analysis.bounds_theory.TheoreticalBounds.to_dict`).
    #: None for runs that derived no bounds.
    bounds: Optional[Dict[str, object]] = None
    predicted_bounds: Optional[Dict[str, object]] = None
    schema_version: int = METRICS_SCHEMA_VERSION
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> Optional[float]:
        if not self.wall_time_s or self.events_dispatched is None:
            return None
        return self.events_dispatched / self.wall_time_s

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "config_fingerprint": self.config_fingerprint,
            "seeds": list(self.seeds),
            "sim_duration_ns": self.sim_duration_ns,
            "wall_time_s": self.wall_time_s,
            "events_dispatched": self.events_dispatched,
            "events_per_sec": self.events_per_sec,
            "scenario": self.scenario,
            "scenario_fingerprint": self.scenario_fingerprint,
            "verdict": self.verdict,
            "verdict_detail": self.verdict_detail,
            "bounds": self.bounds,
            "predicted_bounds": self.predicted_bounds,
            "schema_version": self.schema_version,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "RunManifest":
        """Rebuild from :meth:`to_dict` output (round-trip pinned in tests)."""
        return cls(
            experiment=str(doc["experiment"]),
            config_fingerprint=str(doc["config_fingerprint"]),
            seeds=[int(s) for s in doc.get("seeds", [])],  # type: ignore[union-attr]
            sim_duration_ns=doc.get("sim_duration_ns"),  # type: ignore[arg-type]
            wall_time_s=doc.get("wall_time_s"),  # type: ignore[arg-type]
            events_dispatched=doc.get("events_dispatched"),  # type: ignore[arg-type]
            scenario=doc.get("scenario"),  # type: ignore[arg-type]
            scenario_fingerprint=doc.get("scenario_fingerprint"),  # type: ignore[arg-type]
            verdict=doc.get("verdict"),  # type: ignore[arg-type]
            verdict_detail=doc.get("verdict_detail"),  # type: ignore[arg-type]
            bounds=doc.get("bounds"),  # type: ignore[arg-type]
            predicted_bounds=doc.get("predicted_bounds"),  # type: ignore[arg-type]
            schema_version=int(doc.get("schema_version", METRICS_SCHEMA_VERSION)),  # type: ignore[arg-type]
            extra=dict(doc.get("extra", {})),  # type: ignore[arg-type]
        )

"""Low-overhead run-wide metrics instruments.

The registry is the observability counterpart of :class:`~repro.sim.trace.
TraceLog`: components accept an optional registry at construction, cache the
instruments they need, and guard every emission with ``if self._metrics is
not None`` — so the disabled path (the default everywhere) costs one
attribute load and a ``None`` comparison, allocates nothing, and never
touches simulation or RNG state. Metrics are *derived* observations only;
attaching a registry must leave traces byte-identical.

Three instrument kinds cover the paper's quantities of interest:

* :class:`Counter` — monotone event counts (gate fires, servo clamps,
  takeovers, FTA drops).
* :class:`Gauge` — last-value-wins scalars (queue high-water mark, cache
  hit rate, events/s).
* :class:`Histogram` — fixed-bucket nanosecond distributions (offset
  error, gate latency, failover latency, servo frequency). Buckets are
  precomputed upper bounds; recording is a ``bisect`` plus one list
  increment, with running n/sum/min/max so means survive coarse buckets.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence


def default_ns_buckets() -> List[float]:
    """1-2-5 per decade from 1 ns to 1e9 ns — wide enough for offsets,
    gate latencies, and failover latencies alike."""
    edges: List[float] = []
    for decade in range(10):  # 1 ns .. 1e9 ns
        for mantissa in (1, 2, 5):
            edges.append(mantissa * 10.0 ** decade)
    return edges


#: Buckets for signed parts-per-billion values (servo frequency).
PPB_BUCKETS = [
    -1e6, -1e5, -1e4, -1e3, -100.0, -10.0, 0.0,
    10.0, 100.0, 1e3, 1e4, 1e5, 1e6,
]


class Counter:
    """A monotone event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-value-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """High-water-mark update."""
        if self.value is None or value > self.value:
            self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with running summary statistics.

    ``edges`` are sorted inclusive upper bounds; one overflow bucket
    catches everything beyond the last edge. Bucket layout is fixed at
    construction so :meth:`observe` never allocates.
    """

    __slots__ = ("name", "edges", "counts", "n", "sum", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        ordered = list(edges)
        if ordered != sorted(ordered):
            raise ValueError("bucket edges must be sorted ascending")
        self.name = name
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.n = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.n += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.n if self.n else None

    def quantile(self, q: float) -> Optional[float]:
        """Approximate quantile: the upper edge of the bucket holding the
        q-th observation (the overflow bucket reports the observed max)."""
        if not self.n:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * (self.n - 1)
        cumulative = 0
        for i, count in enumerate(self.counts):
            cumulative += count
            if cumulative > rank:
                return self.edges[i] if i < len(self.edges) else self.max
        return self.max

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "n": self.n,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "edges": list(self.edges),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Get-or-create registry for one run's instruments.

    Instruments are keyed by dotted name (``aggregator.gate_fires``);
    re-requesting a name returns the existing instrument, so independent
    components can share a series without coordination.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str, edges: Optional[Sequence[float]] = None) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram(
                name, default_ns_buckets() if edges is None else edges
            )
            return h

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument, ready for JSON."""
        out: Dict[str, dict] = {}
        for name, counter in sorted(self.counters.items()):
            out[name] = counter.snapshot()
        for name, gauge in sorted(self.gauges.items()):
            out[name] = gauge.snapshot()
        for name, histogram in sorted(self.histograms.items()):
            out[name] = histogram.snapshot()
        return out

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )

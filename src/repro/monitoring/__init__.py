"""Online run monitoring: invariants checked while the simulation runs."""

from repro.monitoring.invariants import (
    DEGRADED,
    FAIL,
    PASS,
    InvariantMonitor,
    InvariantSpec,
    InvariantViolation,
    Verdict,
    worst_status,
)

__all__ = [
    "DEGRADED",
    "FAIL",
    "PASS",
    "InvariantMonitor",
    "InvariantSpec",
    "InvariantViolation",
    "Verdict",
    "worst_status",
]

"""Online invariant monitor.

Post-hoc analysis tells you a run went wrong; an online monitor tells you
*when*, *which safety property* broke first, and with what margin — while
the run is still going. The monitor is a periodic simulation process
attached to a built testbed that checks, every tick:

``synctime_bound`` (severity FAIL)
    Measured precision Π* must stay within the derived error bound
    Π + γ (:func:`repro.measurement.bounds.derive_bounds`). This is the
    paper's headline safety property; breaking it means an application
    reading ``CLOCK_SYNCTIME`` can observe more error than guaranteed.
``valid_floor`` (severity DEGRADED)
    In fault-tolerant mode each aggregator must see at least M − f valid
    domains — the FTA's operating assumption. Fewer means fault masking
    is running without margin.
``domain_health`` (severity DEGRADED)
    No domain may stay invalid on a majority of fault-tolerant VMs for
    longer than a reboot takes (``domain_unhealthy_ticks`` consecutive
    ticks). Catches a domain knocked out by sustained impairment, which
    the valid floor alone tolerates when M − f domains remain.
``failover_slo`` (severity DEGRADED)
    Dependent-clock failover latency (``hypervisor.failover_latency``
    trace records) must stay under the SLO.

Violations are episodes, not samples: an invariant entering violation
opens one episode (one structured record, one ``invariant.violation``
trace emit, one metrics increment) which closes when the condition
clears, so a sustained outage doesn't flood the log at tick rate. The
:class:`Verdict` aggregates the episodes: ``PASS`` (nothing fired),
``DEGRADED`` (resilience margin consumed, bound still held), or ``FAIL``
(the bound itself broke), with first-violation context and a status
timeline for DEGRADED-then-recovered reporting.

The monitor draws no randomness and mutates no simulation state, so
attaching it never perturbs results — the same passive-observer contract
the metrics registry keeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.aggregator import AggregatorMode
from repro.sim.process import PeriodicTask
from repro.sim.timebase import SECONDS

if TYPE_CHECKING:
    from repro.experiments.testbed import Testbed

#: Verdict statuses, in increasing severity.
PASS = "PASS"
DEGRADED = "DEGRADED"
FAIL = "FAIL"

_SEVERITY_RANK = {PASS: 0, DEGRADED: 1, FAIL: 2}


@dataclass(frozen=True)
class InvariantSpec:
    """Monitor configuration.

    Attributes
    ----------
    period:
        Check interval, ns.
    failover_slo:
        Maximum tolerated dependent-clock failover latency, ns.
    domain_unhealthy_ticks:
        Consecutive ticks a domain may stay invalid on a majority of
        fault-tolerant VMs before ``domain_health`` fires. The default
        (45 ticks at 1 s) sits above a GM reboot (30 s boot delay plus
        staleness detection), so routine fault-injection rotations stay
        PASS while a domain pinned down by sustained impairment does not.
    bound_source:
        Which threshold grades ``synctime_bound``. ``"measured"`` (the
        historical default, so existing verdicts reproduce byte-for-byte)
        uses the surveyed Π + γ; ``"predicted"`` uses the closed-form
        envelope from :mod:`repro.analysis.bounds_theory` — a threshold
        that exists before the run — and demotes the measured Π + γ to a
        secondary, separately-labeled ``synctime_bound_measured`` check
        (severity DEGRADED).
    """

    period: int = 1 * SECONDS
    failover_slo: int = 2 * SECONDS
    domain_unhealthy_ticks: int = 45
    bound_source: str = "measured"

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.failover_slo <= 0:
            raise ValueError("failover_slo must be positive")
        if self.domain_unhealthy_ticks < 1:
            raise ValueError("domain_unhealthy_ticks must be >= 1")
        if self.bound_source not in ("measured", "predicted"):
            raise ValueError(
                f"bound_source must be 'measured' or 'predicted', "
                f"got {self.bound_source!r}"
            )


@dataclass(frozen=True)
class InvariantViolation:
    """One violation episode (opened when the invariant first breaks)."""

    time: int
    invariant: str
    severity: str
    source: str
    observed: float
    bound: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "invariant": self.invariant,
            "severity": self.severity,
            "source": self.source,
            "observed": self.observed,
            "bound": self.bound,
        }


@dataclass
class Verdict:
    """Aggregate run outcome derived from the violation episodes."""

    status: str = PASS
    first_violation: Optional[InvariantViolation] = None
    counts: Dict[str, int] = field(default_factory=dict)
    #: ``(time, status)`` transitions of the *current* status, starting at
    #: PASS; a DEGRADED-then-recovered run reads
    #: ``[(0, PASS), (t1, DEGRADED), (t2, PASS)]`` while ``status`` stays
    #: DEGRADED (worst-ever).
    timeline: List[Tuple[int, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "first_violation": (
                self.first_violation.to_dict()
                if self.first_violation is not None else None
            ),
            "counts": dict(self.counts),
            "timeline": [[t, s] for t, s in self.timeline],
        }

    def describe(self) -> str:
        """One line for text reports and CI job summaries."""
        if self.first_violation is None:
            return f"verdict: {self.status}"
        v = self.first_violation
        return (
            f"verdict: {self.status} — first violation {v.invariant} "
            f"({v.severity}) at t={v.time / SECONDS:.1f}s on {v.source}: "
            f"observed {v.observed:.0f} vs bound {v.bound:.0f}"
        )


def worst_status(statuses) -> str:
    """Fold statuses to the most severe one (empty → PASS)."""
    worst = PASS
    for status in statuses:
        if _SEVERITY_RANK.get(status, 0) > _SEVERITY_RANK[worst]:
            worst = status
    return worst


class InvariantMonitor:
    """Periodic in-run checker of the paper's safety properties."""

    def __init__(
        self,
        testbed: "Testbed",
        spec: Optional[InvariantSpec] = None,
        metrics=None,
        f: Optional[int] = None,
    ) -> None:
        self.testbed = testbed
        self.spec = spec if spec is not None else InvariantSpec()
        self.metrics = metrics
        self.violations: List[InvariantViolation] = []
        self.ticks = 0
        self._bounds = testbed.derive_bounds()
        self._bound_measured = self._bounds.bound_with_error
        if self.spec.bound_source == "predicted":
            if self._bounds.predicted is None:
                raise ValueError(
                    "bound_source='predicted' needs derive_bounds() to carry "
                    "a TheoreticalBounds prediction"
                )
            self._bound = self._bounds.predicted.envelope
        else:
            self._bound = self._bound_measured
        self._m = len(testbed.domains)
        # The fault hypothesis grading the valid floor. Callers driven by a
        # ScenarioSpec pass the scenario's f explicitly; it must agree with
        # what the aggregators actually run, otherwise the floor M − f
        # would silently grade a different hypothesis than the run uses.
        if f is not None and f != testbed.config.aggregator.f:
            raise ValueError(
                f"fault hypothesis mismatch: monitor asked to grade f={f} "
                f"but the testbed aggregates with "
                f"f={testbed.config.aggregator.f}"
            )
        self._f = f if f is not None else testbed.config.aggregator.f
        self._floor = self._m - self._f
        # Episode state: key -> opening violation while the condition holds.
        self._active: Dict[Tuple[str, str], InvariantViolation] = {}
        self._series_cursor = 0
        self._failover_cursor = 0
        self._domain_bad_ticks: Dict[int, int] = {d.number: 0 for d in testbed.domains}
        self._status = PASS
        self._worst = PASS
        self._timeline: List[Tuple[int, str]] = [(testbed.sim.now, PASS)]
        self._task = PeriodicTask(
            testbed.sim, period=self.spec.period, action=self._tick,
            name="invariant-monitor",
        )
        if metrics is not None:
            self._m_violations = metrics.counter("invariant.violations")
            self._m_status = metrics.gauge("invariant.status_code")
        else:
            self._m_violations = None
            self._m_status = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin checking (first tick one period from now)."""
        self._task.start()

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    def verdict(self) -> Verdict:
        """Aggregate outcome so far (callable mid-run or after)."""
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.invariant] = counts.get(v.invariant, 0) + 1
        return Verdict(
            status=self._worst,
            first_violation=self.violations[0] if self.violations else None,
            counts=counts,
            timeline=list(self._timeline),
        )

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self.ticks += 1
        self._check_synctime_bound()
        self._check_aggregators()
        self._check_failover_slo()
        self._update_status()

    def _check_synctime_bound(self) -> None:
        records = self.testbed.series.records
        worst = None
        worst_measured = None
        secondary = self.spec.bound_source == "predicted"
        for record in records[self._series_cursor:]:
            if record.precision > self._bound and (
                worst is None or record.precision > worst.precision
            ):
                worst = record
            if secondary and record.precision > self._bound_measured and (
                worst_measured is None
                or record.precision > worst_measured.precision
            ):
                worst_measured = record
        self._series_cursor = len(records)
        if worst is not None:
            self._open(
                "synctime_bound", FAIL, "measurement",
                observed=float(worst.precision), bound=float(self._bound),
                time=worst.time,
            )
        else:
            self._close("synctime_bound", "measurement")
        if not secondary:
            return
        # Secondary, labeled threshold: the surveyed Π + γ keeps firing
        # (as DEGRADED) under predicted grading, so runs stay comparable
        # with the historical measured-bound verdicts.
        if worst_measured is not None:
            self._open(
                "synctime_bound_measured", DEGRADED, "measurement",
                observed=float(worst_measured.precision),
                bound=float(self._bound_measured),
                time=worst_measured.time,
            )
        else:
            self._close("synctime_bound_measured", "measurement")

    def _check_aggregators(self) -> None:
        # Which domains are invalid on a majority of fault-tolerant VMs?
        ft_vms = 0
        invalid_votes: Dict[int, int] = {d: 0 for d in self._domain_bad_ticks}
        for name in sorted(self.testbed.vms):
            vm = self.testbed.vms[name]
            agg = vm.aggregator
            if not vm.running or agg.mode is not AggregatorMode.FAULT_TOLERANT:
                self._close("valid_floor", name)
                continue
            flags = agg.last_valid_flags
            if not flags:
                # FT mode reached but no aggregation round completed yet —
                # nothing to judge.
                self._close("valid_floor", name)
                continue
            valid = sum(1 for ok in flags.values() if ok)
            ft_vms += 1
            for domain, ok in flags.items():
                if not ok and domain in invalid_votes:
                    invalid_votes[domain] += 1
            if valid < self._floor:
                self._open(
                    "valid_floor", DEGRADED, name,
                    observed=float(valid), bound=float(self._floor),
                )
            else:
                self._close("valid_floor", name)

        threshold = self.spec.domain_unhealthy_ticks
        for domain in self._domain_bad_ticks:
            source = f"domain{domain}"
            unhealthy = ft_vms > 0 and invalid_votes[domain] * 2 > ft_vms
            if unhealthy:
                self._domain_bad_ticks[domain] += 1
                if self._domain_bad_ticks[domain] >= threshold:
                    self._open(
                        "domain_health", DEGRADED, source,
                        observed=float(self._domain_bad_ticks[domain]),
                        bound=float(threshold),
                    )
            else:
                self._domain_bad_ticks[domain] = 0
                self._close("domain_health", source)

    def _check_failover_slo(self) -> None:
        trace = self.testbed.trace
        n = trace.count("hypervisor.failover_latency")
        if n == self._failover_cursor:
            return
        records = trace.query("hypervisor.failover_latency")
        for record in records[self._failover_cursor:]:
            latency = record.fields.get("latency_ns", 0)
            if latency > self.spec.failover_slo:
                # Failovers are point events: each over-SLO one is its own
                # episode (open and immediately closed).
                self._open(
                    "failover_slo", DEGRADED, record.source,
                    observed=float(latency), bound=float(self.spec.failover_slo),
                    time=record.time,
                )
                self._close("failover_slo", record.source)
        self._failover_cursor = n

    # ------------------------------------------------------------------
    def _open(
        self,
        invariant: str,
        severity: str,
        source: str,
        observed: float,
        bound: float,
        time: Optional[int] = None,
    ) -> None:
        key = (invariant, source)
        if key in self._active:
            return
        violation = InvariantViolation(
            time=time if time is not None else self.testbed.sim.now,
            invariant=invariant,
            severity=severity,
            source=source,
            observed=observed,
            bound=bound,
        )
        self._active[key] = violation
        self.violations.append(violation)
        if _SEVERITY_RANK[severity] > _SEVERITY_RANK[self._worst]:
            self._worst = severity
        if self._m_violations is not None:
            self._m_violations.inc()
            self.metrics.counter(f"invariant.{invariant}.violations").inc()
        trace = self.testbed.trace
        if trace is not None:
            trace.emit(
                self.testbed.sim.now, "invariant.violation", source,
                invariant=invariant, severity=severity,
                observed=observed, bound=bound,
            )

    def _close(self, invariant: str, source: str) -> None:
        self._active.pop((invariant, source), None)

    def _update_status(self) -> None:
        status = worst_status(v.severity for v in self._active.values())
        if status != self._status:
            self._status = status
            self._timeline.append((self.testbed.sim.now, status))
            if self._m_status is not None:
                self._m_status.set(_SEVERITY_RANK[status])

"""Network substrate: links, ports, TSN switches, NICs, topology.

The testbed network of the paper (Fig. 2) is four edge devices whose
integrated TSN switches form a full mesh, with each clock synchronization VM
owning a passthrough NIC attached to its device's switch.

Model summary:

* :mod:`repro.network.link` — full-duplex point-to-point links with a fixed
  base propagation+processing delay plus bounded per-packet jitter. The
  min/max delay over all links is what the paper's reading error
  E = d_max − d_min derives from.
* :mod:`repro.network.switch` — store-and-forward switch with static VLAN
  multicast membership (the measurement VLAN) and a hook that terminates
  link-local gPTP traffic at the switch's time-aware bridge logic instead of
  forwarding it (802.1AS frames are never bridged; every hop regenerates).
* :mod:`repro.network.nic` — i210-like endpoint NIC: PTP hardware clock,
  rx/tx hardware timestamping with white jitter, an ETF launch-time transmit
  queue, and the tx-timestamp-timeout fault mode the paper observed in the
  igb driver.
* :mod:`repro.network.topology` — builder for the 4-switch mesh plus path
  enumeration used by the measurement-error analysis.
"""

from repro.network.link import Link, LinkModel
from repro.network.nic import Nic, NicModel, TxRecord
from repro.network.packet import GPTP_MULTICAST, Packet
from repro.network.port import Port
from repro.network.switch import SwitchModel, TsnSwitch
from repro.network.topology import MeshTopology, build_mesh

__all__ = [
    "Link",
    "LinkModel",
    "Nic",
    "NicModel",
    "TxRecord",
    "Packet",
    "GPTP_MULTICAST",
    "Port",
    "TsnSwitch",
    "SwitchModel",
    "MeshTopology",
    "build_mesh",
]

"""Composable per-link network impairments.

The base :class:`~repro.network.link.Link` knows two states: perfect
bounded-jitter delivery and administratively down. Real gPTP deployments
degrade through a richer set of conditions — packet loss (random and
bursty), duplication, reordering, delay asymmetry, congestion — which are
exactly the impairments the resilience-bounds literature shows dominate
achievable synchronization accuracy. This module models them as an optional
per-link attachment:

* **Loss** — independent Bernoulli per-packet loss, or a two-state
  Gilbert–Elliott chain for bursty loss (a "bad" state entered and left
  with per-packet transition probabilities, each state with its own loss
  rate).
* **Duplication** — a second copy of the frame is delivered after an extra
  delay, never earlier than the original.
* **Reordering** — selected packets are held back by a bounded extra
  delay, letting later frames overtake them.
* **Delay asymmetry** — a constant per-direction offset, the classic
  violator of PTP's symmetric-path assumption.
* **Congestion epochs** — timed windows during which every packet picks up
  an extra uniform queueing delay (inflated jitter).

Every impairment draws from its **own dedicated RNG stream** (never the
link's): attaching an impairment cannot perturb the link's jitter sequence,
and a run with no impairment attached — or with the identity spec — is
byte-identical to one that predates this module. The spec is a frozen,
JSON-round-trippable dataclass so chaos plans can carry it declaratively
(see :mod:`repro.chaos.plan`).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

if TYPE_CHECKING:
    from repro.network.link import Link
    from repro.network.packet import Packet
    from repro.network.port import Port
    from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class GilbertElliottSpec:
    """Two-state bursty loss chain.

    Per packet, the chain first transitions (good→bad with ``p_enter_bad``,
    bad→good with ``p_exit_bad``), then the packet is lost with the current
    state's loss rate. The stationary realized loss rate is
    ``π_bad·loss_bad + π_good·loss_good`` with
    ``π_bad = p_enter_bad / (p_enter_bad + p_exit_bad)``.
    """

    p_enter_bad: float = 0.01
    p_exit_bad: float = 0.2
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad", "loss_good", "loss_bad"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.p_enter_bad + self.p_exit_bad <= 0.0:
            raise ValueError(
                "Gilbert-Elliott chain needs at least one positive "
                "transition probability"
            )

    def stationary_loss_rate(self) -> float:
        """Long-run fraction of packets lost."""
        pi_bad = self.p_enter_bad / (self.p_enter_bad + self.p_exit_bad)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


@dataclass(frozen=True)
class CongestionEpoch:
    """A timed window of inflated queueing delay.

    While ``start <= now < end``, every packet picks up an extra uniform
    delay in ``[0, extra_jitter]`` ns.
    """

    start: int
    end: int
    extra_jitter: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(f"bad congestion window [{self.start}, {self.end})")
        if self.extra_jitter < 0:
            raise ValueError("extra_jitter must be nonnegative")


@dataclass(frozen=True)
class ImpairmentSpec:
    """Declarative description of one link's impairments.

    All probabilities are per-packet; all delays are nanoseconds. The
    default instance is the identity (no impairment at all) — attaching it
    leaves runs byte-identical to an unimpaired link.

    Attributes
    ----------
    loss:
        Independent Bernoulli loss probability.
    gilbert_elliott:
        Optional bursty loss chain, applied *instead of* ``loss`` when set.
    duplicate:
        Probability a delivered packet is delivered twice; the copy arrives
        ``U(0, duplicate_delay]`` ns after the original.
    duplicate_delay:
        Upper bound of the duplicate's extra delay.
    reorder:
        Probability a packet is held back by ``U(1, reorder_delay]`` ns,
        allowing later frames to overtake it.
    reorder_delay:
        Upper bound of the hold-back delay.
    delay_a_to_b / delay_b_to_a:
        Constant per-direction delay offsets (asymmetry).
    congestion:
        Tuple of :class:`CongestionEpoch` windows.
    """

    loss: float = 0.0
    gilbert_elliott: Optional[GilbertElliottSpec] = None
    duplicate: float = 0.0
    duplicate_delay: int = 1_000
    reorder: float = 0.0
    reorder_delay: int = 5_000
    delay_a_to_b: int = 0
    delay_b_to_a: int = 0
    congestion: Tuple[CongestionEpoch, ...] = ()

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        for name in ("duplicate_delay", "reorder_delay",
                     "delay_a_to_b", "delay_b_to_a"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be nonnegative")
        if self.duplicate > 0 and self.duplicate_delay < 1:
            raise ValueError("duplication needs duplicate_delay >= 1")
        if self.reorder > 0 and self.reorder_delay < 1:
            raise ValueError("reordering needs reorder_delay >= 1")
        # Normalize to a tuple so specs built from JSON lists stay hashable.
        if not isinstance(self.congestion, tuple):
            object.__setattr__(self, "congestion", tuple(self.congestion))

    @property
    def is_identity(self) -> bool:
        """Whether this spec perturbs nothing."""
        return (
            self.loss == 0.0
            and self.gilbert_elliott is None
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.delay_a_to_b == 0
            and self.delay_b_to_a == 0
            and not self.congestion
        )

    # ------------------------------------------------------------------
    # Serialization (chaos plans carry specs through scenario JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["gilbert_elliott"] = (
            dataclasses.asdict(self.gilbert_elliott)
            if self.gilbert_elliott is not None else None
        )
        doc["congestion"] = [dataclasses.asdict(c) for c in self.congestion]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ImpairmentSpec":
        doc = dict(doc)
        unknown = set(doc) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown impairment keys: {sorted(unknown)}")
        ge = doc.get("gilbert_elliott")
        if isinstance(ge, dict):
            doc["gilbert_elliott"] = GilbertElliottSpec(**ge)
        windows = doc.get("congestion")
        if windows is not None:
            doc["congestion"] = tuple(
                CongestionEpoch(**w) if isinstance(w, dict) else w
                for w in windows
            )
        return cls(**doc)


class LinkImpairment:
    """Runtime state of one link's impairments.

    Attached to a :class:`~repro.network.link.Link` via
    :meth:`Link.attach_impairment`; the link's hot path delegates here only
    when an impairment is present (one ``None`` check otherwise — the same
    guarded pattern the TraceLog and metrics registry use).

    Draw order per packet is fixed and documented so fixed-seed runs are
    reproducible: congestion jitter → loss → reorder → duplication. Each
    draw comes from the impairment's dedicated RNG stream.
    """

    def __init__(
        self,
        spec: ImpairmentSpec,
        rng: random.Random,
        link_name: str = "",
        trace: Optional["TraceLog"] = None,
        metrics=None,
    ) -> None:
        self.spec = spec
        self.rng = rng
        self.link_name = link_name
        self.trace = trace
        self.packets_seen = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.packets_reordered = 0
        self.congestion_delayed = 0
        self._ge_bad = False
        # Hot-path bindings.
        self._random = rng.random
        self._randint = rng.randint
        self._metrics = metrics
        if metrics is not None:
            prefix = f"impairment.{link_name}" if link_name else "impairment"
            self._m_dropped = metrics.counter(f"{prefix}.dropped")
            self._m_duplicated = metrics.counter(f"{prefix}.duplicated")
            self._m_reordered = metrics.counter(f"{prefix}.reordered")
            self._m_total_dropped = metrics.counter("impairment.dropped")
            self._m_total_duplicated = metrics.counter("impairment.duplicated")
            self._m_total_reordered = metrics.counter("impairment.reordered")

    # ------------------------------------------------------------------
    def carry(
        self, link: "Link", from_port: "Port", packet: "Packet", delay: int
    ) -> None:
        """Impaired continuation of :meth:`Link.carry`.

        ``delay`` is the link's already-drawn nominal delay (base + jitter,
        drawn from the link's own stream); this method applies the
        impairments and posts zero, one, or two deliveries.
        """
        spec = self.spec
        self.packets_seen += 1
        to_b = from_port is link.a
        delay += spec.delay_a_to_b if to_b else spec.delay_b_to_a

        if spec.congestion:
            now = link.sim.now
            for window in spec.congestion:
                if window.start <= now < window.end:
                    if window.extra_jitter > 0:
                        delay += self._randint(0, window.extra_jitter)
                    self.congestion_delayed += 1
                    break

        if self._lost():
            self.packets_dropped += 1
            link.packets_dropped += 1
            if self._metrics is not None:
                self._m_dropped.inc()
                self._m_total_dropped.inc()
            return

        held_back = spec.reorder > 0.0 and self._random() < spec.reorder
        if held_back:
            delay += self._randint(1, spec.reorder_delay)
            self.packets_reordered += 1
            if self._metrics is not None:
                self._m_reordered.inc()
                self._m_total_reordered.inc()

        link.deliver_after(delay, packet, to_b)

        if spec.duplicate > 0.0 and self._random() < spec.duplicate:
            # The copy never arrives before the original's own arrival.
            extra = self._randint(0, spec.duplicate_delay)
            self.packets_duplicated += 1
            if self._metrics is not None:
                self._m_duplicated.inc()
                self._m_total_duplicated.inc()
            link.deliver_after(delay + extra, packet, to_b)

    # ------------------------------------------------------------------
    def _lost(self) -> bool:
        ge = self.spec.gilbert_elliott
        if ge is not None:
            if self._ge_bad:
                if self._random() < ge.p_exit_bad:
                    self._ge_bad = False
            elif self._random() < ge.p_enter_bad:
                self._ge_bad = True
            rate = ge.loss_bad if self._ge_bad else ge.loss_good
            if rate <= 0.0:
                return False
            return rate >= 1.0 or self._random() < rate
        loss = self.spec.loss
        return loss > 0.0 and self._random() < loss

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for result reporting."""
        return {
            "seen": self.packets_seen,
            "dropped": self.packets_dropped,
            "duplicated": self.packets_duplicated,
            "reordered": self.packets_reordered,
            "congestion_delayed": self.congestion_delayed,
        }

    def __repr__(self) -> str:
        return (
            f"LinkImpairment({self.link_name!r}, seen={self.packets_seen}, "
            f"dropped={self.packets_dropped})"
        )

"""Point-to-point full-duplex links.

A link's one-way delay per packet is ``base + U(0, jitter)`` where the
uniform jitter term is drawn independently per packet and per direction.
Base delays differ per link (cable length, PHY latency); the spread of
``base .. base + jitter`` across all links of the testbed is precisely what
the paper's reading error E = d_max − d_min captures.

The link records the delays it actually applied, which the latency survey
(:mod:`repro.measurement.latency`) compares against pdelay estimates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.kernel import Simulator

if TYPE_CHECKING:
    from repro.network.impairments import LinkImpairment
    from repro.network.packet import Packet
    from repro.network.port import Port


@dataclass(frozen=True)
class LinkModel:
    """Delay parameters of one link.

    Attributes
    ----------
    base_delay:
        Deterministic one-way latency, ns (propagation + serialization +
        PHY/MAC processing).
    jitter:
        Upper bound of the uniform per-packet jitter, ns.
    """

    base_delay: int = 2_000
    jitter: int = 400

    @property
    def min_delay(self) -> int:
        """Smallest possible one-way delay."""
        return self.base_delay

    @property
    def max_delay(self) -> int:
        """Largest possible one-way delay."""
        return self.base_delay + self.jitter


class Link:
    """A full-duplex link between two ports.

    Construction wires both endpoints; transmission happens through
    :meth:`carry`, invoked by :class:`~repro.network.port.Port`.
    """

    def __init__(
        self,
        sim: Simulator,
        a: "Port",
        b: "Port",
        model: LinkModel,
        rng: random.Random,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.model = model
        self.rng = rng
        self.a = a
        self.b = b
        self.name = name or f"{a.full_name}<->{b.full_name}"
        self.packets_carried = 0
        self.packets_dropped = 0
        self.min_observed: Optional[int] = None
        self.max_observed: Optional[int] = None
        self.up = True
        self.impairment: Optional["LinkImpairment"] = None
        # Deliveries are tagged with the link's flap epoch: taking the
        # link down bumps the epoch, so frames already in flight are
        # discarded on arrival instead of tunnelling through the outage.
        self._epoch = 0
        # Hot-path locals: one delay draw and one kernel post per packet;
        # binding the methods and model scalars once keeps the per-packet
        # cost to the draw itself. The uniform draw is inlined as the same
        # rejection sampling ``randint(0, jitter)`` performs internally
        # (identical getrandbits consumption, identical values), skipping
        # three layers of pure-Python argument checking per packet.
        self._base_delay = model.base_delay
        self._jitter = model.jitter
        self._randint = rng.randint
        self._getrandbits = rng.getrandbits
        self._jitter_n = model.jitter + 1
        self._jitter_bits = self._jitter_n.bit_length()
        self._post = sim.post
        self._deliver_a = a.deliver
        self._deliver_b = b.deliver
        self._arrive_a = self._arrival_a
        self._arrive_b = self._arrival_b
        a._attach(self, b)
        b._attach(self, a)

    # ------------------------------------------------------------------
    def carry(self, from_port: "Port", packet: "Packet") -> None:
        """Deliver ``packet`` to the opposite endpoint after a sampled delay."""
        if not self.up:
            return
        if self._jitter == 0:
            delay = self._base_delay
        else:
            # Inline of randint(0, jitter): rejection-sample jitter_bits
            # until the value falls below jitter + 1. Bit-identical to the
            # library call on the same RNG stream.
            n = self._jitter_n
            getrandbits = self._getrandbits
            r = getrandbits(self._jitter_bits)
            while r >= n:
                r = getrandbits(self._jitter_bits)
            delay = self._base_delay + r
        self.packets_carried += 1
        if self.min_observed is None or delay < self.min_observed:
            self.min_observed = delay
        if self.max_observed is None or delay > self.max_observed:
            self.max_observed = delay
        imp = self.impairment
        if imp is not None:
            imp.carry(self, from_port, packet, delay)
            return
        self._post(
            delay,
            self._arrive_b if from_port is self.a else self._arrive_a,
            packet,
            self._epoch,
        )

    def deliver_after(self, delay: int, packet: "Packet", to_b: bool) -> None:
        """Post an epoch-tagged delivery (impairment layer continuation)."""
        self._post(
            delay, self._arrive_b if to_b else self._arrive_a, packet, self._epoch
        )

    def _arrival_a(self, packet: "Packet", epoch: int) -> None:
        if epoch != self._epoch:
            self.packets_dropped += 1
            return
        self._deliver_a(packet)

    def _arrival_b(self, packet: "Packet", epoch: int) -> None:
        if epoch != self._epoch:
            self.packets_dropped += 1
            return
        self._deliver_b(packet)

    def sample_delay(self) -> int:
        """Draw one one-way delay."""
        if self._jitter == 0:
            return self._base_delay
        return self._base_delay + self._randint(0, self._jitter)

    def set_up(self, up: bool) -> None:
        """Administratively enable/disable the link.

        Taking the link down invalidates every frame still in flight:
        deliveries carry the epoch current at transmit time, a down
        transition bumps it, and stale arrivals are discarded into
        ``packets_dropped``.
        """
        if self.up and not up:
            self._epoch += 1
        self.up = up

    def attach_impairment(self, impairment: "LinkImpairment") -> None:
        """Route subsequent packets through ``impairment``."""
        self.impairment = impairment

    def detach_impairment(self) -> Optional["LinkImpairment"]:
        """Restore unimpaired delivery; returns the detached impairment."""
        imp = self.impairment
        self.impairment = None
        return imp

    def __repr__(self) -> str:
        return f"Link({self.name!r}, base={self.model.base_delay}, jitter={self.model.jitter})"

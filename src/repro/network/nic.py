"""Endpoint NIC model (Intel i210-like).

The NIC owns the PTP hardware clock (PHC) that ptp4l disciplines, performs
hardware rx/tx timestamping with white noise, and supports *launch time*
transmission through an ETF-style queue: the frame leaves the wire when the
PHC reaches the requested launch time, which is how the grandmasters send
their Sync messages quasi-synchronously (§II-B).

Two transient fault modes the paper observed on real i210/igb hardware are
modelled explicitly (§III-C):

* **tx-timestamp timeout** — with a configurable probability the driver
  never surfaces the transmit timestamp; ptp4l gives up after 5 ms and the
  two-step FollowUp for that Sync is lost (2992 occurrences in the paper's
  24 h run).
* **launch deadline miss** — with a configurable probability the frame
  reaches the qdisc after its launch time and is rejected (347 occurrences).

Probabilities default to zero; the fault-injection experiments set them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from math import cos as _cos, log as _log, pi as _pi, sin as _sin, sqrt as _sqrt
from typing import Callable, List, Optional

#: Constants for the inlined ``random.gauss`` draw in :meth:`Nic.timestamp`.
#: ``random.gauss`` keeps its spare Box–Muller variate in the instance
#: attribute ``gauss_next`` (stable across CPython 3.9–3.13); the inline
#: replicates the library algorithm bit-for-bit on the same state, and the
#: import-time check falls back to the library call if the attribute ever
#: disappears.
_TWOPI = 2.0 * _pi
_HAS_GAUSS_NEXT = hasattr(random.Random(0), "gauss_next")

from repro.clocks.hardware_clock import HardwareClock
from repro.clocks.oscillator import Oscillator, OscillatorModel
from repro.network.packet import Packet
from repro.network.port import Port
from repro.sim.kernel import Simulator
from repro.sim.timebase import MICROSECONDS, MILLISECONDS
from repro.sim.trace import TraceLog

RxHandler = Callable[[Packet, int], None]
TxTimestampCallback = Callable[[Optional[int]], None]


@dataclass(frozen=True)
class NicModel:
    """NIC timing and fault parameters.

    Attributes
    ----------
    timestamp_jitter:
        Std-dev of white noise on hardware timestamps, ns.
    tx_timestamp_latency:
        Driver latency until a successful tx timestamp surfaces, ns.
    tx_timestamp_timeout:
        ptp4l's wait before declaring ``tx_timeout`` (5 ms in the paper).
    tx_timestamp_fail_prob:
        Probability a transmit timestamp is never delivered.
    deadline_miss_prob:
        Probability a launch-time frame misses its deadline and is dropped.
    launch_tolerance:
        Scheduling tolerance for launch-time transmission, ns.
    oscillator:
        Oscillator population model for this NIC's PHC.
    """

    timestamp_jitter: float = 8.0
    tx_timestamp_latency: int = 100 * MICROSECONDS
    tx_timestamp_timeout: int = 5 * MILLISECONDS
    tx_timestamp_fail_prob: float = 0.0
    deadline_miss_prob: float = 0.0
    launch_tolerance: int = 50
    oscillator: OscillatorModel = OscillatorModel()


@dataclass
class TxRecord:
    """Outcome bookkeeping for one transmit request."""

    packet: Packet
    launch_time: Optional[int]
    transmitted: bool = False
    tx_timestamp: Optional[int] = None
    timed_out: bool = False
    deadline_missed: bool = False
    extra: dict = field(default_factory=dict)


class Nic:
    """A timestamping NIC with one port, owned by a clock synchronization VM."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rng: random.Random,
        model: NicModel = NicModel(),
        trace: Optional[TraceLog] = None,
        metrics=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rng = rng
        self.model = model
        self.trace = trace
        self._metrics = metrics
        if metrics is not None:
            self._m_deadline_miss = metrics.counter("nic.deadline_misses")
            self._m_tx_timeout = metrics.counter("nic.tx_timestamp_timeouts")
        self.oscillator = Oscillator(sim, rng, model.oscillator, name=f"{name}.osc")
        self.clock = HardwareClock(self.oscillator, name=f"{name}.phc")
        self.port = Port(self, "p0")
        self._rx_handlers: List[RxHandler] = []
        self._rx_snapshot: tuple = ()  # immutable fan-out list for on_receive
        self.enabled = True
        self.tx_count = 0
        self.rx_count = 0
        self.tx_timestamp_timeouts = 0
        self.deadline_misses = 0
        # Hot-path bindings: every rx/tx reads the PHC with gauss noise and
        # posts follow-on events; resolve the methods and model scalars once.
        self._gauss = rng.gauss
        self._random = rng.random
        self._post = sim.post
        self._clock_time = self.clock.time
        self._ts_jitter = model.timestamp_jitter

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def attach_rx_handler(self, handler: RxHandler) -> None:
        """Register a consumer for (packet, hardware rx timestamp)."""
        self._rx_handlers.append(handler)
        self._rx_snapshot = tuple(self._rx_handlers)

    def detach_rx_handler(self, handler: RxHandler) -> None:
        """Remove a previously registered consumer."""
        self._rx_handlers.remove(handler)
        self._rx_snapshot = tuple(self._rx_handlers)

    def on_receive(self, port: Port, packet: Packet) -> None:
        """Port callback: hardware-timestamp and fan out to handlers.

        Iterates an immutable snapshot so handlers may attach/detach during
        delivery without copying the handler list on every packet.
        """
        if not self.enabled:
            return
        self.rx_count += 1
        rx_ts = self.timestamp()
        for handler in self._rx_snapshot:
            handler(packet, rx_ts)

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(
        self,
        packet: Packet,
        launch_time: Optional[int] = None,
        on_tx_timestamp: Optional[TxTimestampCallback] = None,
    ) -> TxRecord:
        """Transmit ``packet``, optionally at a PHC launch time.

        Parameters
        ----------
        packet:
            Frame to send.
        launch_time:
            If given, a PHC-timescale instant; the frame leaves when the PHC
            reaches it (ETF + hardware launch). ``None`` sends immediately.
        on_tx_timestamp:
            If given, called exactly once with the hardware transmit
            timestamp — or with ``None`` after the 5 ms timeout when the
            driver loses it (the paper's ``tx_timeout`` fault).
        """
        record = TxRecord(packet=packet, launch_time=launch_time)
        if not self.enabled:
            return record

        if launch_time is None:
            self._transmit(record, on_tx_timestamp)
            return record

        now_phc = self.clock.time()
        missed = now_phc + self.model.launch_tolerance >= launch_time
        if not missed and self.model.deadline_miss_prob > 0:
            missed = self._random() < self.model.deadline_miss_prob
        if missed:
            record.deadline_missed = True
            self.deadline_misses += 1
            if self._metrics is not None:
                self._m_deadline_miss.inc()
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "ptp4l.deadline_miss", self.name,
                    launch_time=launch_time, phc_now=now_phc,
                )
            if on_tx_timestamp is not None:
                # ptp4l learns synchronously that the qdisc rejected the frame.
                on_tx_timestamp(None)
            return record

        self._schedule_at_phc_time(launch_time, self._transmit, record, on_tx_timestamp)
        return record

    def timestamp(self) -> int:
        """Read the PHC with white timestamp noise applied."""
        jitter = self._ts_jitter
        if jitter > 0:
            # Draw the noise before reading the clock: the PHC read may
            # advance oscillator wander on the same RNG stream, and the
            # draw interleaving is part of the deterministic schedule.
            if _HAS_GAUSS_NEXT:
                # Inline of rng.gauss(0.0, jitter): Box–Muller with the
                # cached second variate, identical draws on the same state.
                rng = self.rng
                z = rng.gauss_next
                rng.gauss_next = None
                if z is None:
                    x2pi = rng.random() * _TWOPI
                    g2rad = _sqrt(-2.0 * _log(1.0 - rng.random()))
                    z = _cos(x2pi) * g2rad
                    rng.gauss_next = _sin(x2pi) * g2rad
                noise = z * jitter
            else:
                noise = self._gauss(0.0, jitter)
            return round(self._clock_time() + noise)
        return self._clock_time()

    def set_enabled(self, enabled: bool) -> None:
        """Power the NIC data path on/off (VM fail-silent / reboot)."""
        self.enabled = enabled

    # ------------------------------------------------------------------
    def _transmit(
        self, record: TxRecord, on_tx_timestamp: Optional[TxTimestampCallback]
    ) -> None:
        if not self.enabled:
            return
        record.transmitted = True
        self.tx_count += 1
        tx_ts = self.timestamp()
        self.port.transmit(record.packet)
        if on_tx_timestamp is None:
            record.tx_timestamp = tx_ts
            return
        if (
            self.model.tx_timestamp_fail_prob > 0
            and self._random() < self.model.tx_timestamp_fail_prob
        ):
            record.timed_out = True
            self.tx_timestamp_timeouts += 1
            if self._metrics is not None:
                self._m_tx_timeout.inc()
            if self.trace is not None:
                self.trace.emit(self.sim.now, "ptp4l.tx_timeout", self.name)
            self._post(self.model.tx_timestamp_timeout, on_tx_timestamp, None)
        else:
            record.tx_timestamp = tx_ts
            self._post(self.model.tx_timestamp_latency, on_tx_timestamp, tx_ts)

    def _schedule_at_phc_time(self, phc_target: int, fn, *args) -> None:
        """Run ``fn`` when this NIC's PHC reads ``phc_target``.

        The PHC runs within ±(5 ppm + trim) of true time, so iterating
        ``sleep(remaining)`` converges geometrically; two hops land within a
        nanosecond for any realistic rate error.
        """

        def attempt(depth: int) -> None:
            remaining = phc_target - self._clock_time()
            if remaining <= self.model.launch_tolerance or depth >= 6:
                fn(*args)
                return
            self._post(max(1, round(remaining)), attempt, depth + 1)

        attempt(0)

    def __repr__(self) -> str:
        return f"Nic({self.name!r}, enabled={self.enabled})"

"""Packet model.

A :class:`Packet` is an L2 frame: destination (unicast name or a multicast
group), optional VLAN tag, and an opaque payload (a gPTP message, a probe, a
probe response). Sizes are carried for completeness; the delay model folds
serialization time into the link delay, as the paper's latency survey does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro._compat import SLOTTED

#: Link-local multicast used by IEEE 802.1AS. Frames to this address are
#: never forwarded by bridges; each hop consumes and regenerates them.
GPTP_MULTICAST = "01:80:C2:00:00:0E"

_packet_ids = itertools.count()


@dataclass(**SLOTTED)
class Packet:
    """One frame in flight.

    Attributes
    ----------
    dst:
        Destination: a device name for unicast, a multicast group name, or
        :data:`GPTP_MULTICAST` for link-local gPTP frames.
    src:
        Name of the originating device.
    payload:
        Opaque upper-layer message.
    vlan:
        Optional VLAN id; switches flood VLAN multicast only to member ports.
    size_bytes:
        Frame size (bookkeeping only).
    packet_id:
        Unique id for tracing.
    hops:
        Incremented at each switch traversal (diagnostics, path assertions).
    """

    dst: str
    src: str
    payload: Any
    vlan: Optional[int] = None
    size_bytes: int = 128
    packet_id: int = field(default_factory=_packet_ids.__next__)
    hops: int = 0

    def is_gptp(self) -> bool:
        """Whether this is a link-local gPTP frame."""
        return self.dst == GPTP_MULTICAST

    def is_multicast(self) -> bool:
        """Whether this frame targets a multicast group (incl. gPTP)."""
        return self.dst == GPTP_MULTICAST or self.dst.startswith("mcast:")

    def copy_for_forwarding(self) -> "Packet":
        """Clone for fan-out so per-branch mutation stays isolated."""
        return Packet(
            dst=self.dst,
            src=self.src,
            payload=self.payload,
            vlan=self.vlan,
            size_bytes=self.size_bytes,
            hops=self.hops,
        )

"""Network ports.

A :class:`Port` is a named attachment point on a device (switch or NIC).
Devices implement ``on_receive(port, packet)``; the port delivers inbound
packets there and pushes outbound packets onto its link.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:
    from repro.network.link import Link
    from repro.network.packet import Packet


class PortOwner(Protocol):
    """Anything that can own ports (switch, NIC)."""

    name: str

    def on_receive(self, port: "Port", packet: "Packet") -> None:
        """Handle a packet arriving on ``port``."""
        ...


class Port:
    """One switch/NIC port."""

    def __init__(self, owner: PortOwner, name: str) -> None:
        self.owner = owner
        self.name = name
        self.link: Optional["Link"] = None
        self.peer: Optional["Port"] = None
        self.rx_packets = 0
        self.tx_packets = 0
        # deliver() runs once per received packet; resolve the handler once.
        self._on_receive = owner.on_receive

    @property
    def full_name(self) -> str:
        """Globally unique ``device.port`` label."""
        return f"{self.owner.name}.{self.name}"

    @property
    def connected(self) -> bool:
        """Whether a link is attached."""
        return self.link is not None

    def _attach(self, link: "Link", peer: "Port") -> None:
        if self.link is not None:
            raise RuntimeError(f"port {self.full_name} already connected")
        self.link = link
        self.peer = peer

    def transmit(self, packet: "Packet") -> None:
        """Send ``packet`` out of this port (no-op if unconnected)."""
        if self.link is None:
            return
        self.tx_packets += 1
        self.link.carry(self, packet)

    def deliver(self, packet: "Packet") -> None:
        """Called by the link when a packet arrives."""
        self.rx_packets += 1
        self._on_receive(self, packet)

    def __repr__(self) -> str:
        peer = self.peer.full_name if self.peer else None
        return f"Port({self.full_name!r}, peer={peer!r})"

"""Store-and-forward TSN switch.

Forwarding behaviour, in order:

1. **gPTP frames** (link-local multicast) are never forwarded. They are
   timestamped on ingress with the switch's own PTP hardware clock and handed
   to the registered gPTP handler — the time-aware bridge logic of
   :mod:`repro.gptp.bridge` — which regenerates per-domain Sync/FollowUp on
   egress ports with updated correction fields, per IEEE 802.1AS.
2. **VLAN multicast** floods to the VLAN's static member ports (minus the
   ingress port) after a sampled residence delay. The experiments configure
   loop-free member sets, mirroring the paper's measurement VLAN; a hop cap
   guards against accidental loops.
3. **Unicast** follows a static forwarding database (no learning — the paper
   uses fully static configuration).

Each switch owns a free-running oscillator + PHC. Per IEEE 802.1AS bridges
do not discipline their clocks; they only timestamp and syntonize via rate
ratios, which is exactly what the bridge logic consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import cos as _cos, log as _log, pi as _pi, sin as _sin, sqrt as _sqrt
from typing import Callable, Dict, List, Optional

#: See :mod:`repro.network.nic` — constants for the inlined ``random.gauss``
#: draw in :meth:`TsnSwitch.timestamp`, with an import-time fallback guard.
_TWOPI = 2.0 * _pi
_HAS_GAUSS_NEXT = hasattr(random.Random(0), "gauss_next")

from repro.clocks.hardware_clock import HardwareClock
from repro.clocks.oscillator import Oscillator, OscillatorModel
from repro.network.packet import GPTP_MULTICAST, Packet
from repro.network.port import Port
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog

#: Defensive bound on switch traversals per packet.
MAX_HOPS = 8

GptpHandler = Callable[[Port, Packet, int], None]


@dataclass(frozen=True)
class SwitchModel:
    """Switch timing parameters.

    Attributes
    ----------
    residence_base:
        Minimum store-and-forward latency, ns.
    residence_jitter:
        Upper bound of uniform extra queueing delay, ns.
    timestamp_jitter:
        Std-dev of white noise on hardware timestamps, ns.
    oscillator:
        Oscillator population model for the switch PHC.
    """

    residence_base: int = 1_200
    residence_jitter: int = 600
    timestamp_jitter: float = 8.0
    oscillator: OscillatorModel = OscillatorModel()


class TsnSwitch:
    """A time-aware store-and-forward switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rng: random.Random,
        model: Optional[SwitchModel] = None,
        trace: Optional[TraceLog] = None,
    ) -> None:
        model = model if model is not None else SwitchModel()
        self.sim = sim
        self.name = name
        self.rng = rng
        self.model = model
        #: Per-switch traversal cap; topologies with long switch paths
        #: (line/ring scenarios) raise it above the defensive default.
        self.hop_limit = MAX_HOPS
        self.trace = trace
        self.oscillator = Oscillator(sim, rng, model.oscillator, name=f"{name}.osc")
        self.clock = HardwareClock(self.oscillator, name=f"{name}.phc")
        self.ports: Dict[str, Port] = {}
        self._vlan_members: Dict[int, List[Port]] = {}
        self._fdb: Dict[str, Port] = {}
        self._gptp_handler: Optional[GptpHandler] = None
        self.dropped_hop_limit = 0
        self.forwarded = 0
        # Hot-path bindings: ingress timestamping and store-and-forward run
        # per packet; bind the RNG methods and model scalars once.
        self._gauss = rng.gauss
        self._randint = rng.randint
        self._getrandbits = rng.getrandbits
        self._post = sim.post
        self._clock_time = self.clock.time
        self._ts_jitter = model.timestamp_jitter
        self._residence_base = model.residence_base
        self._residence_jitter = model.residence_jitter
        # Inlined randint(0, residence_jitter) state: same rejection
        # sampling the library performs, minus the per-call checking.
        self._residence_n = model.residence_jitter + 1
        self._residence_bits = self._residence_n.bit_length()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def new_port(self, name: str) -> Port:
        """Create (or fetch) the port called ``name``."""
        port = self.ports.get(name)
        if port is None:
            port = Port(self, name)
            self.ports[name] = port
        return port

    def set_vlan_members(self, vlan: int, ports: List[Port]) -> None:
        """Install the static member set of a VLAN."""
        for port in ports:
            if port.owner is not self:
                raise ValueError(f"{port.full_name} is not a port of {self.name}")
        self._vlan_members[vlan] = list(ports)

    def add_fdb(self, dst: str, port: Port) -> None:
        """Install a static unicast forwarding entry."""
        if port.owner is not self:
            raise ValueError(f"{port.full_name} is not a port of {self.name}")
        self._fdb[dst] = port

    def set_gptp_handler(self, handler: GptpHandler) -> None:
        """Register the time-aware bridge callback for gPTP ingress."""
        self._gptp_handler = handler

    # ------------------------------------------------------------------
    # Hardware timestamping
    # ------------------------------------------------------------------
    def timestamp(self) -> int:
        """Read the switch PHC with white timestamp noise applied."""
        jitter = self._ts_jitter
        if jitter > 0:
            # Draw the noise before reading the clock: the PHC read may
            # advance oscillator wander on the same RNG stream, and the
            # draw interleaving is part of the deterministic schedule.
            if _HAS_GAUSS_NEXT:
                # Inline of rng.gauss(0.0, jitter): Box–Muller with the
                # cached second variate, identical draws on the same state.
                rng = self.rng
                z = rng.gauss_next
                rng.gauss_next = None
                if z is None:
                    x2pi = rng.random() * _TWOPI
                    g2rad = _sqrt(-2.0 * _log(1.0 - rng.random()))
                    z = _cos(x2pi) * g2rad
                    rng.gauss_next = _sin(x2pi) * g2rad
                noise = z * jitter
            else:
                noise = self._gauss(0.0, jitter)
            return round(self._clock_time() + noise)
        return self._clock_time()

    def residence_delay(self) -> int:
        """Sample one store-and-forward residence delay."""
        if self._residence_jitter > 0:
            # Inline of randint(0, jitter): bit-identical rejection sampling
            # on the same RNG stream, minus three pure-Python call layers.
            n = self._residence_n
            getrandbits = self._getrandbits
            r = getrandbits(self._residence_bits)
            while r >= n:
                r = getrandbits(self._residence_bits)
            return self._residence_base + r
        return self._residence_base

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def on_receive(self, port: Port, packet: Packet) -> None:
        """Dispatch an ingress packet per the forwarding rules above."""
        # Inline of packet.is_gptp(): this runs for every ingress frame.
        if packet.dst == GPTP_MULTICAST:
            rx_ts = self.timestamp()
            if self._gptp_handler is not None:
                self._gptp_handler(port, packet, rx_ts)
            return

        if packet.hops >= self.hop_limit:
            self.dropped_hop_limit += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "switch.drop_hop_limit", self.name,
                    packet_id=packet.packet_id,
                )
            return

        if packet.is_multicast():
            members = self._vlan_members.get(packet.vlan or 0, [])
            for out_port in members:
                if out_port is port:
                    continue
                self._forward(out_port, packet)
            return

        out_port = self._fdb.get(packet.dst)
        if out_port is not None and out_port is not port:
            self._forward(out_port, packet)

    def _forward(self, out_port: Port, packet: Packet) -> None:
        clone = packet.copy_for_forwarding()
        clone.hops += 1
        self.forwarded += 1
        self._post(self.residence_delay(), out_port.transmit, clone)

    def transmit_gptp(self, out_port: Port, packet: Packet, delay: int = 0) -> None:
        """Egress path for bridge-regenerated gPTP frames."""
        if delay > 0:
            self._post(delay, out_port.transmit, packet)
        else:
            out_port.transmit(packet)

    def __repr__(self) -> str:
        return f"TsnSwitch({self.name!r}, ports={sorted(self.ports)})"

"""Network topology layer: pluggable shapes over TSN switches.

The paper's testbed (Fig. 2) is a full mesh of four edge devices; the
reproduction generalizes the shape into a small family of builders — mesh,
ring, line (daisy chain), star — all producing :class:`Topology` objects
with the same contract:

* switches, inter-switch trunks, and NIC access links;
* deterministic BFS **spanning trees** rooted at any switch, from which the
  per-domain slave/master port roles (external port configuration) and the
  measurement-VLAN membership are derived for arbitrary hop counts;
* **path analysis** (`path_links`/`path_bounds`/`global_delay_bounds`) over
  shortest paths, driving the reading error E = d_max − d_min and with it
  the precision bound Π = 2(E + Γ).

Link base delays are drawn per link from configurable ranges so every shape
has the same kind of latency spread the paper's cabling exhibits. For the
mesh the construction order — and therefore every RNG draw — is identical
to the original 4-device builder, keeping fixed-seed runs byte-identical.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.link import Link, LinkModel
from repro.network.nic import Nic
from repro.network.port import Port
from repro.network.switch import SwitchModel, TsnSwitch
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class MeshModel:
    """Parameter ranges for a generated topology (any shape).

    Base delays/jitters are drawn uniformly per link; NIC-to-switch links
    are shorter than inter-switch trunks, as on the real devices (internal
    wiring vs. external cabling). Historically named for the paper's mesh;
    the ring/line/star builders draw from the same ranges.
    """

    n_devices: int = 4
    trunk_base_range: Tuple[int, int] = (1_600, 2_000)
    trunk_jitter_range: Tuple[int, int] = (200, 400)
    access_base_range: Tuple[int, int] = (1_300, 1_700)
    access_jitter_range: Tuple[int, int] = (150, 300)
    switch: SwitchModel = SwitchModel(residence_base=700, residence_jitter=300)


#: Alias for readers arriving from the scenario layer.
TopologyModel = MeshModel


@dataclass
class PathBounds:
    """Nominal min/max one-way latency of a concrete path."""

    min_delay: int
    max_delay: int
    hops: int

    @property
    def spread(self) -> int:
        """max − min."""
        return self.max_delay - self.min_delay


@dataclass(frozen=True)
class SpanningTree:
    """A deterministic BFS tree over the switch graph, rooted anywhere.

    ``children`` preserves the BFS discovery order (neighbors visited in
    natural switch order), which downstream consumers rely on for
    deterministic event schedules.
    """

    root: str
    parent: Dict[str, Optional[str]]
    children: Dict[str, Tuple[str, ...]]
    depth: Dict[str, int]

    def path_to_root(self, sw: str) -> List[str]:
        """Switches from ``sw`` up to (and including) the root."""
        path = [sw]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path


def _switch_key(name: str) -> Tuple[int, str]:
    """Natural sort key: sw2 before sw10 (lexicographic ties broken by name)."""
    return (len(name), name)


class Topology:
    """A built network: switches, trunks, and NIC attachments.

    Shape-agnostic: all path analysis and tree derivation runs over the
    trunk adjacency via deterministic BFS, so it holds for any connected
    shape a builder produces.
    """

    #: Shape tag; builders set it ("mesh", "ring", "line", "star").
    kind = "generic"

    def __init__(self, sim: Simulator, model: Optional[MeshModel] = None) -> None:
        self.sim = sim
        self.model = model if model is not None else MeshModel()
        self.switches: Dict[str, TsnSwitch] = {}
        self.trunks: Dict[Tuple[str, str], Link] = {}
        self.access_links: Dict[str, Link] = {}
        self.nic_switch: Dict[str, str] = {}
        self._adjacency: Optional[Dict[str, List[str]]] = None
        self._trees: Dict[str, SpanningTree] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def switch(self, name: str) -> TsnSwitch:
        """Fetch a switch by name."""
        return self.switches[name]

    def switch_names(self) -> List[str]:
        """Switch names in natural order."""
        return sorted(self.switches, key=_switch_key)

    def trunk(self, a: str, b: str) -> Link:
        """The inter-switch link between switches ``a`` and ``b``."""
        key = (a, b) if (a, b) in self.trunks else (b, a)
        return self.trunks[key]

    def trunk_port(self, a: str, b: str) -> Port:
        """Port on switch ``a`` facing switch ``b``."""
        return self.switches[a].ports[f"to_{b}"]

    def access_port(self, nic_name: str) -> Port:
        """Switch port facing the named NIC."""
        sw = self.switches[self.nic_switch[nic_name]]
        return sw.ports[f"vm_{nic_name}"]

    def add_trunk(self, a: str, b: str, rng: random.Random) -> Link:
        """Wire two switches with a fresh trunk drawn from the model ranges."""
        if (a, b) in self.trunks or (b, a) in self.trunks:
            raise ValueError(f"trunk {a}<->{b} already exists")
        pa = self.switches[a].new_port(f"to_{b}")
        pb = self.switches[b].new_port(f"to_{a}")
        lo, hi = self.model.trunk_base_range
        jlo, jhi = self.model.trunk_jitter_range
        link = Link(
            self.sim,
            pa,
            pb,
            LinkModel(
                base_delay=rng.randint(lo, hi), jitter=rng.randint(jlo, jhi)
            ),
            rng,
            name=f"{a}<->{b}",
        )
        self.trunks[(a, b)] = link
        self._adjacency = None
        self._trees.clear()
        return link

    def attach_nic(
        self, nic: Nic, switch_name: str, rng: random.Random
    ) -> Link:
        """Wire a NIC to a device's switch with a fresh access link."""
        if nic.name in self.nic_switch:
            raise ValueError(f"NIC {nic.name} already attached")
        sw = self.switches[switch_name]
        port = sw.new_port(f"vm_{nic.name}")
        lo, hi = self.model.access_base_range
        jlo, jhi = self.model.access_jitter_range
        link = Link(
            self.sim,
            nic.port,
            port,
            LinkModel(
                base_delay=rng.randint(lo, hi), jitter=rng.randint(jlo, jhi)
            ),
            rng,
            name=f"{nic.name}<->{switch_name}",
        )
        self.access_links[nic.name] = link
        self.nic_switch[nic.name] = switch_name
        return link

    # ------------------------------------------------------------------
    # Graph analysis
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[str, List[str]]:
        """Trunk adjacency, neighbor lists in natural order (cached)."""
        if self._adjacency is None:
            adj: Dict[str, List[str]] = {name: [] for name in self.switches}
            for a, b in self.trunks:
                adj[a].append(b)
                adj[b].append(a)
            for neighbors in adj.values():
                neighbors.sort(key=_switch_key)
            self._adjacency = adj
        return self._adjacency

    def spanning_tree(self, root: str) -> SpanningTree:
        """Deterministic BFS spanning tree rooted at ``root`` (cached).

        Raises if the trunk graph does not reach every switch — every
        supported shape is connected, so a miss means a broken builder or
        hand-written scenario.
        """
        cached = self._trees.get(root)
        if cached is not None:
            return cached
        if root not in self.switches:
            raise KeyError(f"unknown switch {root!r}")
        adj = self.adjacency()
        parent: Dict[str, Optional[str]] = {root: None}
        children: Dict[str, List[str]] = {name: [] for name in self.switches}
        depth: Dict[str, int] = {root: 0}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for sw in frontier:
                for neighbor in adj[sw]:
                    if neighbor in parent:
                        continue
                    parent[neighbor] = sw
                    children[sw].append(neighbor)
                    depth[neighbor] = depth[sw] + 1
                    next_frontier.append(neighbor)
            frontier = next_frontier
        if len(parent) != len(self.switches):
            missing = sorted(set(self.switches) - set(parent), key=_switch_key)
            raise RuntimeError(
                f"switch graph is disconnected: {missing} unreachable from {root}"
            )
        tree = SpanningTree(
            root=root,
            parent=parent,
            children={sw: tuple(kids) for sw, kids in children.items()},
            depth=depth,
        )
        self._trees[root] = tree
        return tree

    def switch_path(self, a: str, b: str) -> List[str]:
        """Shortest switch sequence from ``a`` to ``b`` (deterministic)."""
        tree = self.spanning_tree(a)
        if b not in tree.parent:
            raise KeyError(f"unknown switch {b!r}")
        return list(reversed(tree.path_to_root(b)))

    def max_switch_path(self) -> int:
        """Diameter of the switch graph in switches traversed (≥ 1)."""
        names = self.switch_names()
        if not names:
            return 0
        worst = 1
        for name in names:
            tree = self.spanning_tree(name)
            worst = max(worst, max(tree.depth.values()) + 1)
        return worst

    # ------------------------------------------------------------------
    # Path analysis
    # ------------------------------------------------------------------
    def path_links(self, nic_a: str, nic_b: str) -> Tuple[List[Link], List[TsnSwitch]]:
        """Links and switches traversed from ``nic_a`` to ``nic_b``.

        Access link → trunks along the shortest switch path → access link;
        the switch list covers every store-and-forward traversal.
        """
        sw_a = self.nic_switch[nic_a]
        sw_b = self.nic_switch[nic_b]
        path = self.switch_path(sw_a, sw_b)
        links = [self.access_links[nic_a]]
        switches = [self.switches[path[0]]]
        for prev, here in zip(path, path[1:]):
            links.append(self.trunk(prev, here))
            switches.append(self.switches[here])
        links.append(self.access_links[nic_b])
        return links, switches

    def path_bounds(self, nic_a: str, nic_b: str) -> PathBounds:
        """Nominal min/max one-way latency between two attached NICs."""
        links, switches = self.path_links(nic_a, nic_b)
        min_delay = sum(l.model.min_delay for l in links)
        max_delay = sum(l.model.max_delay for l in links)
        for sw in switches:
            min_delay += sw.model.residence_base
            max_delay += sw.model.residence_base + sw.model.residence_jitter
        return PathBounds(min_delay=min_delay, max_delay=max_delay, hops=len(links))

    def global_delay_bounds(self) -> Tuple[int, int]:
        """(d_min, d_max) over all attached node pairs — the paper's E inputs."""
        nics = sorted(self.nic_switch)
        d_min: Optional[int] = None
        d_max: Optional[int] = None
        for i, a in enumerate(nics):
            for b in nics[i + 1:]:
                bounds = self.path_bounds(a, b)
                if d_min is None or bounds.min_delay < d_min:
                    d_min = bounds.min_delay
                if d_max is None or bounds.max_delay > d_max:
                    d_max = bounds.max_delay
        if d_min is None or d_max is None:
            raise RuntimeError("no NICs attached")
        return d_min, d_max


class MeshTopology(Topology):
    """Full mesh: every switch pair shares a trunk (the paper's Fig. 2)."""

    kind = "mesh"


class RingTopology(Topology):
    """Ring: sw1–sw2–…–swN–sw1. Per-domain trees split the ring both ways."""

    kind = "ring"


class LineTopology(Topology):
    """Line / daisy chain: sw1–sw2–…–swN. Maximal hop spread per device count."""

    kind = "line"


class StarTopology(Topology):
    """Star: a hub switch trunked to every other device's switch."""

    kind = "star"

    def __init__(
        self, sim: Simulator, model: Optional[MeshModel] = None, hub: str = "sw1"
    ) -> None:
        super().__init__(sim, model)
        self.hub = hub


def _make_switches(
    topo: Topology,
    sim: Simulator,
    rng: random.Random,
    trace: Optional[TraceLog],
    switch_rngs: Optional[Dict[str, random.Random]],
) -> List[str]:
    names = [f"sw{i + 1}" for i in range(topo.model.n_devices)]
    for name in names:
        sw_rng = switch_rngs[name] if switch_rngs else rng
        topo.switches[name] = TsnSwitch(sim, name, sw_rng, topo.model.switch, trace)
    return names


def build_mesh(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> MeshTopology:
    """Create ``n_devices`` switches, fully meshed.

    Parameters
    ----------
    sim:
        Simulator to schedule on.
    rng:
        Stream for drawing link parameters (and switch behaviour when
        ``switch_rngs`` is not given).
    model:
        Link/switch parameter ranges (default: :class:`MeshModel`).
    trace:
        Optional trace log handed to every switch.
    switch_rngs:
        Optional per-switch streams (keyed by switch name) so switch noise
        is decoupled from topology generation.
    """
    topo = MeshTopology(sim, model)
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            topo.add_trunk(a, b, rng)
    return topo


def build_ring(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> RingTopology:
    """Create ``n_devices`` switches in a cycle (needs at least 3)."""
    topo = RingTopology(sim, model)
    if topo.model.n_devices < 3:
        raise ValueError("a ring needs at least 3 devices")
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, a in enumerate(names):
        topo.add_trunk(a, names[(i + 1) % len(names)], rng)
    return topo


def build_line(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> LineTopology:
    """Create ``n_devices`` switches daisy-chained (needs at least 2)."""
    topo = LineTopology(sim, model)
    if topo.model.n_devices < 2:
        raise ValueError("a line needs at least 2 devices")
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for a, b in zip(names, names[1:]):
        topo.add_trunk(a, b, rng)
    return topo


def build_star(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    hub_device: int = 1,
) -> StarTopology:
    """Create ``n_devices`` switches, all trunked to device ``hub_device``."""
    topo = StarTopology(sim, model, hub=f"sw{hub_device}")
    if topo.model.n_devices < 2:
        raise ValueError("a star needs at least 2 devices")
    if not 1 <= hub_device <= topo.model.n_devices:
        raise ValueError(f"hub_device={hub_device} outside 1..{topo.model.n_devices}")
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    hub = names[hub_device - 1]
    for name in names:
        if name != hub:
            topo.add_trunk(hub, name, rng)
    return topo


#: Shape name → builder. Scenario specs select by key; new shapes register
#: here and become available to every experiment and the CLI at once.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Topology]] = {
    "mesh": build_mesh,
    "ring": build_ring,
    "line": build_line,
    "star": build_star,
}


def build_topology(
    kind: str,
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    **kwargs: object,
) -> Topology:
    """Build a topology by shape name (see :data:`TOPOLOGY_BUILDERS`)."""
    try:
        builder = TOPOLOGY_BUILDERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown topology kind {kind!r}; "
            f"known: {sorted(TOPOLOGY_BUILDERS)}"
        ) from None
    return builder(sim, rng, model, trace=trace, switch_rngs=switch_rngs, **kwargs)

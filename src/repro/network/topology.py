"""Network topology layer: pluggable shapes over TSN switches.

The paper's testbed (Fig. 2) is a full mesh of four edge devices; the
reproduction generalizes the shape into a small family of builders — mesh,
ring, line (daisy chain), star — all producing :class:`Topology` objects
with the same contract:

* switches, inter-switch trunks, and NIC access links;
* deterministic BFS **spanning trees** rooted at any switch, from which the
  per-domain slave/master port roles (external port configuration) and the
  measurement-VLAN membership are derived for arbitrary hop counts;
* **path analysis** (`path_links`/`path_bounds`/`global_delay_bounds`) over
  shortest paths, driving the reading error E = d_max − d_min and with it
  the precision bound Π = 2(E + Γ).

Link base delays are drawn per link from configurable ranges so every shape
has the same kind of latency spread the paper's cabling exhibits. For the
mesh the construction order — and therefore every RNG draw — is identical
to the original 4-device builder, keeping fixed-seed runs byte-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.link import Link, LinkModel
from repro.network.nic import Nic
from repro.network.port import Port
from repro.network.switch import SwitchModel, TsnSwitch
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class MeshModel:
    """Parameter ranges for a generated topology (any shape).

    Base delays/jitters are drawn uniformly per link; NIC-to-switch links
    are shorter than inter-switch trunks, as on the real devices (internal
    wiring vs. external cabling). Historically named for the paper's mesh;
    the ring/line/star builders draw from the same ranges.
    """

    n_devices: int = 4
    trunk_base_range: Tuple[int, int] = (1_600, 2_000)
    trunk_jitter_range: Tuple[int, int] = (200, 400)
    access_base_range: Tuple[int, int] = (1_300, 1_700)
    access_jitter_range: Tuple[int, int] = (150, 300)
    switch: SwitchModel = SwitchModel(residence_base=700, residence_jitter=300)


#: Alias for readers arriving from the scenario layer.
TopologyModel = MeshModel


@dataclass
class PathBounds:
    """Nominal min/max one-way latency of a concrete path."""

    min_delay: int
    max_delay: int
    hops: int

    @property
    def spread(self) -> int:
        """max − min."""
        return self.max_delay - self.min_delay


@dataclass(frozen=True)
class SpanningTree:
    """A deterministic BFS tree over the switch graph, rooted anywhere.

    ``children`` preserves the BFS discovery order (neighbors visited in
    natural switch order), which downstream consumers rely on for
    deterministic event schedules.
    """

    root: str
    parent: Dict[str, Optional[str]]
    children: Dict[str, Tuple[str, ...]]
    depth: Dict[str, int]

    def path_to_root(self, sw: str) -> List[str]:
        """Switches from ``sw`` up to (and including) the root."""
        path = [sw]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path


def _switch_key(name: str) -> Tuple[int, str]:
    """Natural sort key: sw2 before sw10 (lexicographic ties broken by name)."""
    return (len(name), name)


class Topology:
    """A built network: switches, trunks, and NIC attachments.

    Shape-agnostic: all path analysis and tree derivation runs over the
    trunk adjacency via deterministic BFS, so it holds for any connected
    shape a builder produces.
    """

    #: Shape tag; builders set it ("mesh", "ring", "line", "star").
    kind = "generic"

    def __init__(self, sim: Simulator, model: Optional[MeshModel] = None) -> None:
        self.sim = sim
        self.model = model if model is not None else MeshModel()
        self.switches: Dict[str, TsnSwitch] = {}
        self.trunks: Dict[Tuple[str, str], Link] = {}
        self.access_links: Dict[str, Link] = {}
        self.nic_switch: Dict[str, str] = {}
        self._adjacency: Optional[Dict[str, List[str]]] = None
        self._trees: Dict[str, SpanningTree] = {}
        # Path-analysis memoization: per-root cumulative trunk/residence
        # sums, per-NIC-pair bounds, and the global (d_min, d_max). At
        # N = 1024 the un-memoized forms are recomputed per consumer and
        # turn quadratic; every cache is invalidated when the trunk graph
        # changes (add_trunk) and the global bounds additionally when a NIC
        # is attached.
        self._switch_sums: Dict[str, Dict[str, Tuple[int, int]]] = {}
        self._pair_bounds: Dict[Tuple[str, str], PathBounds] = {}
        self._global_bounds: Optional[Tuple[int, int]] = None
        self.path_cache_hits = 0
        self.path_cache_misses = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def switch(self, name: str) -> TsnSwitch:
        """Fetch a switch by name."""
        return self.switches[name]

    def switch_names(self) -> List[str]:
        """Switch names in natural order."""
        return sorted(self.switches, key=_switch_key)

    def trunk(self, a: str, b: str) -> Link:
        """The inter-switch link between switches ``a`` and ``b``."""
        key = (a, b) if (a, b) in self.trunks else (b, a)
        return self.trunks[key]

    def trunk_port(self, a: str, b: str) -> Port:
        """Port on switch ``a`` facing switch ``b``."""
        return self.switches[a].ports[f"to_{b}"]

    def access_port(self, nic_name: str) -> Port:
        """Switch port facing the named NIC."""
        sw = self.switches[self.nic_switch[nic_name]]
        return sw.ports[f"vm_{nic_name}"]

    def add_trunk(self, a: str, b: str, rng: random.Random) -> Link:
        """Wire two switches with a fresh trunk drawn from the model ranges."""
        if (a, b) in self.trunks or (b, a) in self.trunks:
            raise ValueError(f"trunk {a}<->{b} already exists")
        pa = self.switches[a].new_port(f"to_{b}")
        pb = self.switches[b].new_port(f"to_{a}")
        lo, hi = self.model.trunk_base_range
        jlo, jhi = self.model.trunk_jitter_range
        link = Link(
            self.sim,
            pa,
            pb,
            LinkModel(
                base_delay=rng.randint(lo, hi), jitter=rng.randint(jlo, jhi)
            ),
            rng,
            name=f"{a}<->{b}",
        )
        self.trunks[(a, b)] = link
        self._adjacency = None
        self._trees.clear()
        self._switch_sums.clear()
        self._pair_bounds.clear()
        self._global_bounds = None
        return link

    def attach_nic(
        self, nic: Nic, switch_name: str, rng: random.Random
    ) -> Link:
        """Wire a NIC to a device's switch with a fresh access link."""
        if nic.name in self.nic_switch:
            raise ValueError(f"NIC {nic.name} already attached")
        sw = self.switches[switch_name]
        port = sw.new_port(f"vm_{nic.name}")
        lo, hi = self.model.access_base_range
        jlo, jhi = self.model.access_jitter_range
        link = Link(
            self.sim,
            nic.port,
            port,
            LinkModel(
                base_delay=rng.randint(lo, hi), jitter=rng.randint(jlo, jhi)
            ),
            rng,
            name=f"{nic.name}<->{switch_name}",
        )
        self.access_links[nic.name] = link
        self.nic_switch[nic.name] = switch_name
        # Existing NIC-pair bounds stay valid; the global min/max may move.
        self._global_bounds = None
        return link

    # ------------------------------------------------------------------
    # Graph analysis
    # ------------------------------------------------------------------
    def adjacency(self) -> Dict[str, List[str]]:
        """Trunk adjacency, neighbor lists in natural order (cached)."""
        if self._adjacency is None:
            adj: Dict[str, List[str]] = {name: [] for name in self.switches}
            for a, b in self.trunks:
                adj[a].append(b)
                adj[b].append(a)
            for neighbors in adj.values():
                neighbors.sort(key=_switch_key)
            self._adjacency = adj
        return self._adjacency

    def spanning_tree(self, root: str) -> SpanningTree:
        """Deterministic BFS spanning tree rooted at ``root`` (cached).

        Raises if the trunk graph does not reach every switch — every
        supported shape is connected, so a miss means a broken builder or
        hand-written scenario.
        """
        cached = self._trees.get(root)
        if cached is not None:
            return cached
        if root not in self.switches:
            raise KeyError(f"unknown switch {root!r}")
        adj = self.adjacency()
        parent: Dict[str, Optional[str]] = {root: None}
        children: Dict[str, List[str]] = {name: [] for name in self.switches}
        depth: Dict[str, int] = {root: 0}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for sw in frontier:
                for neighbor in adj[sw]:
                    if neighbor in parent:
                        continue
                    parent[neighbor] = sw
                    children[sw].append(neighbor)
                    depth[neighbor] = depth[sw] + 1
                    next_frontier.append(neighbor)
            frontier = next_frontier
        if len(parent) != len(self.switches):
            missing = sorted(set(self.switches) - set(parent), key=_switch_key)
            raise RuntimeError(
                f"switch graph is disconnected: {missing} unreachable from {root}"
            )
        tree = SpanningTree(
            root=root,
            parent=parent,
            children={sw: tuple(kids) for sw, kids in children.items()},
            depth=depth,
        )
        self._trees[root] = tree
        return tree

    def switch_path(self, a: str, b: str) -> List[str]:
        """Shortest switch sequence from ``a`` to ``b`` (deterministic)."""
        tree = self.spanning_tree(a)
        if b not in tree.parent:
            raise KeyError(f"unknown switch {b!r}")
        return list(reversed(tree.path_to_root(b)))

    def max_switch_path(self) -> int:
        """Diameter of the switch graph in switches traversed (≥ 1)."""
        names = self.switch_names()
        if not names:
            return 0
        worst = 1
        for name in names:
            tree = self.spanning_tree(name)
            worst = max(worst, max(tree.depth.values()) + 1)
        return worst

    # ------------------------------------------------------------------
    # Path analysis
    # ------------------------------------------------------------------
    def path_links(self, nic_a: str, nic_b: str) -> Tuple[List[Link], List[TsnSwitch]]:
        """Links and switches traversed from ``nic_a`` to ``nic_b``.

        Access link → trunks along the shortest switch path → access link;
        the switch list covers every store-and-forward traversal.
        """
        sw_a = self.nic_switch[nic_a]
        sw_b = self.nic_switch[nic_b]
        path = self.switch_path(sw_a, sw_b)
        links = [self.access_links[nic_a]]
        switches = [self.switches[path[0]]]
        for prev, here in zip(path, path[1:]):
            links.append(self.trunk(prev, here))
            switches.append(self.switches[here])
        links.append(self.access_links[nic_b])
        return links, switches

    def _path_sums(self, root: str) -> Dict[str, Tuple[int, int]]:
        """Cumulative (min, max) trunk + residence sums along the BFS tree.

        ``sums[sw]`` covers every trunk on the canonical shortest path from
        ``root`` to ``sw`` plus the residence of every switch on it —
        including both endpoints — so a NIC-pair bound is just the two
        access links on top. Cached per root; O(switches) to build.
        """
        cached = self._switch_sums.get(root)
        if cached is not None:
            return cached
        tree = self.spanning_tree(root)
        root_model = self.switches[root].model
        sums: Dict[str, Tuple[int, int]] = {
            root: (
                root_model.residence_base,
                root_model.residence_base + root_model.residence_jitter,
            )
        }
        stack = [root]
        while stack:
            sw = stack.pop()
            base_min, base_max = sums[sw]
            for child in tree.children[sw]:
                trunk = self.trunk(sw, child).model
                child_model = self.switches[child].model
                sums[child] = (
                    base_min + trunk.min_delay + child_model.residence_base,
                    base_max
                    + trunk.max_delay
                    + child_model.residence_base
                    + child_model.residence_jitter,
                )
                stack.append(child)
        self._switch_sums[root] = sums
        return sums

    def path_bounds(self, nic_a: str, nic_b: str) -> PathBounds:
        """Nominal min/max one-way latency between two attached NICs.

        Memoized per NIC pair. Computed over the canonical shortest path —
        the BFS tree rooted at the smaller switch (natural order) — so the
        bounds are direction-symmetric even in shapes with several equal-hop
        paths (torus, fat tree).
        """
        key = (nic_a, nic_b)
        cached = self._pair_bounds.get(key)
        if cached is not None:
            self.path_cache_hits += 1
            return cached
        self.path_cache_misses += 1
        sw_a = self.nic_switch[nic_a]
        sw_b = self.nic_switch[nic_b]
        root, leaf = (
            (sw_a, sw_b) if _switch_key(sw_a) <= _switch_key(sw_b) else (sw_b, sw_a)
        )
        sw_min, sw_max = self._path_sums(root)[leaf]
        la = self.access_links[nic_a].model
        lb = self.access_links[nic_b].model
        bounds = PathBounds(
            min_delay=la.min_delay + lb.min_delay + sw_min,
            max_delay=la.max_delay + lb.max_delay + sw_max,
            hops=self.spanning_tree(root).depth[leaf] + 2,
        )
        self._pair_bounds[key] = bounds
        self._pair_bounds[(nic_b, nic_a)] = bounds
        return bounds

    def global_delay_bounds(self) -> Tuple[int, int]:
        """(d_min, d_max) over all attached node pairs — the paper's E inputs.

        Cached, and computed per switch pair rather than per NIC pair: for
        every (ordered by natural key) switch pair the extreme NIC pair uses
        the two smallest access-link minima / two largest maxima, so the
        scan is O(switches²) instead of O(NICs²) — the difference between
        seconds and minutes at N = 1024 with two VMs per device.
        """
        if self._global_bounds is not None:
            return self._global_bounds
        per_switch: Dict[str, List[str]] = {}
        for nic, sw in self.nic_switch.items():
            per_switch.setdefault(sw, []).append(nic)
        if not per_switch or (
            len(per_switch) == 1 and len(next(iter(per_switch.values()))) < 2
        ):
            raise RuntimeError("no NICs attached")
        acc_min: Dict[str, List[int]] = {}
        acc_max: Dict[str, List[int]] = {}
        for sw, nics in per_switch.items():
            mins = sorted(self.access_links[n].model.min_delay for n in nics)
            maxs = sorted(
                (self.access_links[n].model.max_delay for n in nics), reverse=True
            )
            acc_min[sw] = mins[:2]
            acc_max[sw] = maxs[:2]
        names = sorted(per_switch, key=_switch_key)
        d_min: Optional[int] = None
        d_max: Optional[int] = None
        for i, a in enumerate(names):
            sums = self._path_sums(a)
            for b in names[i:]:
                if a == b:
                    if len(acc_min[a]) < 2:
                        continue
                    lo = acc_min[a][0] + acc_min[a][1] + sums[a][0]
                    hi = acc_max[a][0] + acc_max[a][1] + sums[a][1]
                else:
                    lo = acc_min[a][0] + acc_min[b][0] + sums[b][0]
                    hi = acc_max[a][0] + acc_max[b][0] + sums[b][1]
                if d_min is None or lo < d_min:
                    d_min = lo
                if d_max is None or hi > d_max:
                    d_max = hi
        if d_min is None or d_max is None:
            raise RuntimeError("no NICs attached")
        self._global_bounds = (d_min, d_max)
        return self._global_bounds


class MeshTopology(Topology):
    """Full mesh: every switch pair shares a trunk (the paper's Fig. 2)."""

    kind = "mesh"


class RingTopology(Topology):
    """Ring: sw1–sw2–…–swN–sw1. Per-domain trees split the ring both ways."""

    kind = "ring"


class LineTopology(Topology):
    """Line / daisy chain: sw1–sw2–…–swN. Maximal hop spread per device count."""

    kind = "line"


class StarTopology(Topology):
    """Star: a hub switch trunked to every other device's switch."""

    kind = "star"

    def __init__(
        self, sim: Simulator, model: Optional[MeshModel] = None, hub: str = "sw1"
    ) -> None:
        super().__init__(sim, model)
        self.hub = hub


class FatTreeTopology(Topology):
    """Complete a-ary tree with redundant sibling uplinks (fleet fabric)."""

    kind = "fat_tree"

    def __init__(
        self, sim: Simulator, model: Optional[MeshModel] = None, arity: int = 2
    ) -> None:
        super().__init__(sim, model)
        self.arity = arity


class TorusTopology(Topology):
    """rows × cols wraparound grid, degree 4 (WALDEN's 2D grid shape)."""

    kind = "torus"

    def __init__(
        self,
        sim: Simulator,
        model: Optional[MeshModel] = None,
        rows: int = 0,
        cols: int = 0,
    ) -> None:
        super().__init__(sim, model)
        self.rows = rows
        self.cols = cols


class RingOfRingsTopology(Topology):
    """Inner rings joined by an outer gateway ring (hierarchical metro)."""

    kind = "ring_of_rings"

    def __init__(
        self,
        sim: Simulator,
        model: Optional[MeshModel] = None,
        groups: int = 0,
        group_size: int = 0,
    ) -> None:
        super().__init__(sim, model)
        self.groups = groups
        self.group_size = group_size


class RandomGeometricTopology(Topology):
    """Seeded random geometric graph on the unit square, repaired connected."""

    kind = "random_geometric"

    def __init__(
        self,
        sim: Simulator,
        model: Optional[MeshModel] = None,
        radius: float = 0.0,
    ) -> None:
        super().__init__(sim, model)
        self.radius = radius
        self.positions: Dict[str, Tuple[float, float]] = {}


# ----------------------------------------------------------------------
# Generated-shape construction plans (shared by builders and ScenarioSpec)
# ----------------------------------------------------------------------
def fat_tree_trunk_indices(n: int, arity: int = 2) -> List[Tuple[int, int]]:
    """0-based trunk index pairs of the ``fat_tree`` shape.

    Switch ``i > 0`` links to its heap parent ``(i − 1) // arity`` and,
    when the parent has a same-level right neighbor, to that neighbor as a
    redundant secondary uplink — so the loss of one aggregation switch
    never partitions its subtree. Degree is bounded by ``2·arity + 2``
    (primary + secondary children, two uplinks).
    """
    if n < 2:
        raise ValueError("a fat tree needs at least 2 devices")
    if arity < 2:
        raise ValueError(f"fat_tree arity must be >= 2, got {arity}")
    depth = [0] * n
    pairs: List[Tuple[int, int]] = []
    for i in range(1, n):
        parent = (i - 1) // arity
        depth[i] = depth[parent] + 1
        pairs.append((parent, i))
        uplink = parent + 1
        if uplink != i and uplink < n and depth[uplink] == depth[parent]:
            pairs.append((uplink, i))
    return pairs


def torus_dims(n: int, rows: Optional[int] = None) -> Tuple[int, int]:
    """Resolve the (rows, cols) of an ``n``-switch torus.

    Default: the most-square factorization with both sides ≥ 3 (proper
    wraparound rings in both directions, so every switch has degree 4).
    """
    if rows is None:
        for cand in range(math.isqrt(n), 2, -1):
            if n % cand == 0 and n // cand >= 3:
                rows = cand
                break
        else:
            raise ValueError(
                f"torus needs n = rows × cols with rows, cols >= 3; got n={n}"
            )
    if rows < 3 or n % rows != 0 or n // rows < 3:
        raise ValueError(
            f"torus rows={rows} invalid for n={n}: need rows >= 3 dividing n "
            f"with cols = n/rows >= 3"
        )
    return rows, n // rows


def torus_trunk_indices(n: int, rows: Optional[int] = None) -> List[Tuple[int, int]]:
    """0-based trunk index pairs of the ``torus`` shape (row-major)."""
    r, c = torus_dims(n, rows)
    pairs: List[Tuple[int, int]] = []
    for i in range(n):
        row, col = divmod(i, c)
        pairs.append((i, row * c + (col + 1) % c))
        pairs.append((i, ((row + 1) % r) * c + col))
    return pairs


def ring_of_rings_dims(n: int, groups: Optional[int] = None) -> Tuple[int, int]:
    """Resolve (groups, group size) of an ``n``-switch ring of rings."""
    if groups is None:
        for cand in range(math.isqrt(n), 2, -1):
            if n % cand == 0 and n // cand >= 3:
                groups = cand
                break
        else:
            raise ValueError(
                f"ring_of_rings needs n = groups × size with both >= 3; got n={n}"
            )
    if groups < 3 or n % groups != 0 or n // groups < 3:
        raise ValueError(
            f"ring_of_rings groups={groups} invalid for n={n}: need groups >= 3 "
            f"dividing n with size = n/groups >= 3"
        )
    return groups, n // groups


def ring_of_rings_trunk_indices(
    n: int, groups: Optional[int] = None
) -> List[Tuple[int, int]]:
    """0-based trunk index pairs: inner rings first, then the gateway ring.

    Switch ``k·size`` is group ``k``'s gateway; gateways form the outer
    ring that stitches the inner rings together.
    """
    g, size = ring_of_rings_dims(n, groups)
    pairs: List[Tuple[int, int]] = []
    for k in range(g):
        base = k * size
        for j in range(size):
            pairs.append((base + j, base + (j + 1) % size))
    for k in range(g):
        pairs.append((k * size, ((k + 1) % g) * size))
    return pairs


def _make_switches(
    topo: Topology,
    sim: Simulator,
    rng: random.Random,
    trace: Optional[TraceLog],
    switch_rngs: Optional[Dict[str, random.Random]],
) -> List[str]:
    names = [f"sw{i + 1}" for i in range(topo.model.n_devices)]
    for name in names:
        sw_rng = switch_rngs[name] if switch_rngs else rng
        topo.switches[name] = TsnSwitch(sim, name, sw_rng, topo.model.switch, trace)
    return names


def build_mesh(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> MeshTopology:
    """Create ``n_devices`` switches, fully meshed.

    Parameters
    ----------
    sim:
        Simulator to schedule on.
    rng:
        Stream for drawing link parameters (and switch behaviour when
        ``switch_rngs`` is not given).
    model:
        Link/switch parameter ranges (default: :class:`MeshModel`).
    trace:
        Optional trace log handed to every switch.
    switch_rngs:
        Optional per-switch streams (keyed by switch name) so switch noise
        is decoupled from topology generation.
    """
    topo = MeshTopology(sim, model)
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            topo.add_trunk(a, b, rng)
    return topo


def build_ring(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> RingTopology:
    """Create ``n_devices`` switches in a cycle (needs at least 3)."""
    topo = RingTopology(sim, model)
    if topo.model.n_devices < 3:
        raise ValueError("a ring needs at least 3 devices")
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, a in enumerate(names):
        topo.add_trunk(a, names[(i + 1) % len(names)], rng)
    return topo


def build_line(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> LineTopology:
    """Create ``n_devices`` switches daisy-chained (needs at least 2)."""
    topo = LineTopology(sim, model)
    if topo.model.n_devices < 2:
        raise ValueError("a line needs at least 2 devices")
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for a, b in zip(names, names[1:]):
        topo.add_trunk(a, b, rng)
    return topo


def build_star(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    hub_device: int = 1,
) -> StarTopology:
    """Create ``n_devices`` switches, all trunked to device ``hub_device``."""
    topo = StarTopology(sim, model, hub=f"sw{hub_device}")
    if topo.model.n_devices < 2:
        raise ValueError("a star needs at least 2 devices")
    if not 1 <= hub_device <= topo.model.n_devices:
        raise ValueError(f"hub_device={hub_device} outside 1..{topo.model.n_devices}")
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    hub = names[hub_device - 1]
    for name in names:
        if name != hub:
            topo.add_trunk(hub, name, rng)
    return topo


def build_fat_tree(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    arity: int = 2,
) -> FatTreeTopology:
    """Create ``n_devices`` switches as an ``arity``-ary fat tree."""
    topo = FatTreeTopology(sim, model, arity=arity)
    pairs = fat_tree_trunk_indices(topo.model.n_devices, arity)
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, j in pairs:
        topo.add_trunk(names[i], names[j], rng)
    return topo


def build_torus(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    rows: Optional[int] = None,
) -> TorusTopology:
    """Create ``n_devices`` switches as a rows × cols wraparound grid."""
    n = (model or MeshModel()).n_devices
    r, c = torus_dims(n, rows)
    topo = TorusTopology(sim, model, rows=r, cols=c)
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, j in torus_trunk_indices(n, r):
        topo.add_trunk(names[i], names[j], rng)
    return topo


def build_ring_of_rings(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    groups: Optional[int] = None,
) -> RingOfRingsTopology:
    """Create ``groups`` inner rings stitched together by a gateway ring."""
    n = (model or MeshModel()).n_devices
    g, size = ring_of_rings_dims(n, groups)
    topo = RingOfRingsTopology(sim, model, groups=g, group_size=size)
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    for i, j in ring_of_rings_trunk_indices(n, g):
        topo.add_trunk(names[i], names[j], rng)
    return topo


def build_random_geometric(
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    radius: Optional[float] = None,
) -> RandomGeometricTopology:
    """Create a seeded random geometric graph on the unit square.

    Switch positions and the resulting edge set depend only on ``rng``
    (drawn up-front, before any link parameters), so a fixed seed gives a
    fixed graph. The default radius is ~1.8× the connectivity threshold
    for uniform RGGs; any residual disconnected components are repaired
    deterministically by bridging each component to the main one at the
    closest switch pair.
    """
    n = (model or MeshModel()).n_devices
    if n < 2:
        raise ValueError("a random geometric graph needs at least 2 devices")
    if radius is None:
        radius = 1.8 * math.sqrt(math.log(n) / (math.pi * n))
    if radius <= 0:
        raise ValueError(f"random_geometric radius must be > 0, got {radius}")
    topo = RandomGeometricTopology(sim, model, radius=radius)
    # Draw every position before any trunk exists so the geometry is a pure
    # function of (seed, n) regardless of link-parameter consumption.
    pos = [(rng.random(), rng.random()) for _ in range(n)]
    names = _make_switches(topo, sim, rng, trace, switch_rngs)
    topo.positions = dict(zip(names, pos))

    def dist2(i: int, j: int) -> float:
        dx = pos[i][0] - pos[j][0]
        dy = pos[i][1] - pos[j][1]
        return dx * dx + dy * dy

    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    r2 = radius * radius
    for i in range(n):
        for j in range(i + 1, n):
            if dist2(i, j) <= r2:
                topo.add_trunk(names[i], names[j], rng)
                parent[find(i)] = find(j)
    # Deterministic connectivity repair: while components remain, bridge
    # the globally-closest cross-component pair (ties break on index).
    while len({find(i) for i in range(n)}) > 1:
        best: Optional[Tuple[float, int, int]] = None
        for i in range(n):
            for j in range(i + 1, n):
                if find(i) != find(j):
                    cand = (dist2(i, j), i, j)
                    if best is None or cand < best:
                        best = cand
        assert best is not None
        _, i, j = best
        topo.add_trunk(names[i], names[j], rng)
        parent[find(i)] = find(j)
    return topo


#: Shape name → builder. Scenario specs select by key; new shapes register
#: here and become available to every experiment and the CLI at once.
TOPOLOGY_BUILDERS: Dict[str, Callable[..., Topology]] = {
    "mesh": build_mesh,
    "ring": build_ring,
    "line": build_line,
    "star": build_star,
    "fat_tree": build_fat_tree,
    "torus": build_torus,
    "ring_of_rings": build_ring_of_rings,
    "random_geometric": build_random_geometric,
}

#: Accepted spellings → canonical builder key. Lookup is case-insensitive
#: and treats ``-`` as ``_``, so ``Fat-Tree`` or ``RINGS`` also resolve.
TOPOLOGY_ALIASES: Dict[str, str] = {
    "fattree": "fat_tree",
    "rings": "ring_of_rings",
    "geo": "random_geometric",
    "geometric": "random_geometric",
    "rgg": "random_geometric",
}


def normalize_topology_kind(kind: str) -> str:
    """Resolve a (possibly aliased, case-insensitive) kind to its canonical key.

    Raises :class:`ValueError` listing the valid canonical kinds when the
    name resolves to nothing.
    """
    folded = kind.lower().replace("-", "_")
    folded = TOPOLOGY_ALIASES.get(folded, folded)
    if folded not in TOPOLOGY_BUILDERS:
        raise ValueError(
            f"unknown topology kind {kind!r}; "
            f"known: {sorted(TOPOLOGY_BUILDERS)}"
        )
    return folded


def build_topology(
    kind: str,
    sim: Simulator,
    rng: random.Random,
    model: Optional[MeshModel] = None,
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
    **kwargs: object,
) -> Topology:
    """Build a topology by shape name (see :data:`TOPOLOGY_BUILDERS`).

    ``kind`` is matched case-insensitively and may use the aliases in
    :data:`TOPOLOGY_ALIASES` (e.g. ``fattree``, ``rings``, ``rgg``).
    """
    builder = TOPOLOGY_BUILDERS[normalize_topology_kind(kind)]
    return builder(sim, rng, model, trace=trace, switch_rngs=switch_rngs, **kwargs)

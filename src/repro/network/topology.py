"""Testbed topology builder (Fig. 2 of the paper).

Four edge devices, each with an integrated TSN switch; the switches form a
full mesh (redundant paths between every pair of devices). Each clock
synchronization VM's passthrough NIC attaches to its device's switch.

Link base delays are drawn per link from a configurable range so the testbed
has the same kind of latency spread the paper's cabling exhibits; the
resulting d_min/d_max over node pairs drive the reading error
E = d_max − d_min and with it the precision bound Π = 2(E + Γ).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.link import Link, LinkModel
from repro.network.nic import Nic
from repro.network.port import Port
from repro.network.switch import SwitchModel, TsnSwitch
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class MeshModel:
    """Parameter ranges for the generated mesh.

    Base delays/jitters are drawn uniformly per link; NIC-to-switch links are
    shorter than inter-switch trunks, as on the real devices (internal wiring
    vs. external cabling).
    """

    n_devices: int = 4
    trunk_base_range: Tuple[int, int] = (1_600, 2_000)
    trunk_jitter_range: Tuple[int, int] = (200, 400)
    access_base_range: Tuple[int, int] = (1_300, 1_700)
    access_jitter_range: Tuple[int, int] = (150, 300)
    switch: SwitchModel = SwitchModel(residence_base=700, residence_jitter=300)


@dataclass
class PathBounds:
    """Nominal min/max one-way latency of a concrete path."""

    min_delay: int
    max_delay: int
    hops: int

    @property
    def spread(self) -> int:
        """max − min."""
        return self.max_delay - self.min_delay


class MeshTopology:
    """The built network: switches, trunks, and NIC attachments."""

    def __init__(self, sim: Simulator, model: MeshModel) -> None:
        self.sim = sim
        self.model = model
        self.switches: Dict[str, TsnSwitch] = {}
        self.trunks: Dict[Tuple[str, str], Link] = {}
        self.access_links: Dict[str, Link] = {}
        self.nic_switch: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def switch(self, name: str) -> TsnSwitch:
        """Fetch a switch by name."""
        return self.switches[name]

    def switch_names(self) -> List[str]:
        """Sorted switch names."""
        return sorted(self.switches)

    def trunk(self, a: str, b: str) -> Link:
        """The inter-switch link between switches ``a`` and ``b``."""
        key = (a, b) if (a, b) in self.trunks else (b, a)
        return self.trunks[key]

    def trunk_port(self, a: str, b: str) -> Port:
        """Port on switch ``a`` facing switch ``b``."""
        return self.switches[a].ports[f"to_{b}"]

    def access_port(self, nic_name: str) -> Port:
        """Switch port facing the named NIC."""
        sw = self.switches[self.nic_switch[nic_name]]
        return sw.ports[f"vm_{nic_name}"]

    def attach_nic(
        self, nic: Nic, switch_name: str, rng: random.Random
    ) -> Link:
        """Wire a NIC to a device's switch with a fresh access link."""
        if nic.name in self.nic_switch:
            raise ValueError(f"NIC {nic.name} already attached")
        sw = self.switches[switch_name]
        port = sw.new_port(f"vm_{nic.name}")
        lo, hi = self.model.access_base_range
        jlo, jhi = self.model.access_jitter_range
        link = Link(
            self.sim,
            nic.port,
            port,
            LinkModel(
                base_delay=rng.randint(lo, hi), jitter=rng.randint(jlo, jhi)
            ),
            rng,
            name=f"{nic.name}<->{switch_name}",
        )
        self.access_links[nic.name] = link
        self.nic_switch[nic.name] = switch_name
        return link

    # ------------------------------------------------------------------
    # Path analysis
    # ------------------------------------------------------------------
    def path_links(self, nic_a: str, nic_b: str) -> Tuple[List[Link], List[TsnSwitch]]:
        """Links and switches traversed from ``nic_a`` to ``nic_b``.

        With a full mesh and static shortest-path configuration this is
        access → (trunk) → access: two or three links, one or two switches.
        """
        sw_a = self.nic_switch[nic_a]
        sw_b = self.nic_switch[nic_b]
        links = [self.access_links[nic_a]]
        switches = [self.switches[sw_a]]
        if sw_a != sw_b:
            links.append(self.trunk(sw_a, sw_b))
            switches.append(self.switches[sw_b])
        links.append(self.access_links[nic_b])
        return links, switches

    def path_bounds(self, nic_a: str, nic_b: str) -> PathBounds:
        """Nominal min/max one-way latency between two attached NICs."""
        links, switches = self.path_links(nic_a, nic_b)
        min_delay = sum(l.model.min_delay for l in links)
        max_delay = sum(l.model.max_delay for l in links)
        for sw in switches:
            min_delay += sw.model.residence_base
            max_delay += sw.model.residence_base + sw.model.residence_jitter
        return PathBounds(min_delay=min_delay, max_delay=max_delay, hops=len(links))

    def global_delay_bounds(self) -> Tuple[int, int]:
        """(d_min, d_max) over all attached node pairs — the paper's E inputs."""
        nics = sorted(self.nic_switch)
        d_min: Optional[int] = None
        d_max: Optional[int] = None
        for i, a in enumerate(nics):
            for b in nics[i + 1:]:
                bounds = self.path_bounds(a, b)
                if d_min is None or bounds.min_delay < d_min:
                    d_min = bounds.min_delay
                if d_max is None or bounds.max_delay > d_max:
                    d_max = bounds.max_delay
        if d_min is None or d_max is None:
            raise RuntimeError("no NICs attached")
        return d_min, d_max


def build_mesh(
    sim: Simulator,
    rng: random.Random,
    model: MeshModel = MeshModel(),
    trace: Optional[TraceLog] = None,
    switch_rngs: Optional[Dict[str, random.Random]] = None,
) -> MeshTopology:
    """Create ``n_devices`` switches, fully meshed.

    Parameters
    ----------
    sim:
        Simulator to schedule on.
    rng:
        Stream for drawing link parameters (and switch behaviour when
        ``switch_rngs`` is not given).
    model:
        Mesh parameter ranges.
    trace:
        Optional trace log handed to every switch.
    switch_rngs:
        Optional per-switch streams (keyed by switch name) so switch noise
        is decoupled from topology generation.
    """
    topo = MeshTopology(sim, model)
    names = [f"sw{i + 1}" for i in range(model.n_devices)]
    for name in names:
        sw_rng = switch_rngs[name] if switch_rngs else rng
        topo.switches[name] = TsnSwitch(sim, name, sw_rng, model.switch, trace)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            pa = topo.switches[a].new_port(f"to_{b}")
            pb = topo.switches[b].new_port(f"to_{a}")
            lo, hi = model.trunk_base_range
            jlo, jhi = model.trunk_jitter_range
            link = Link(
                sim,
                pa,
                pb,
                LinkModel(
                    base_delay=rng.randint(lo, hi), jitter=rng.randint(jlo, jhi)
                ),
                rng,
                name=f"{a}<->{b}",
            )
            topo.trunks[(a, b)] = link
    return topo

"""Parallel execution engine for multi-seed and multi-point studies.

The experiments in :mod:`repro.experiments` are embarrassingly parallel —
every Monte-Carlo seed and every sweep point builds its own testbed with an
independently forked RNG universe — yet the seed runner executed them
strictly serially. This package supplies the missing machinery:

* :class:`~repro.parallel.pool.WorkerPool` — a spawn-safe multiprocessing
  pool with picklable task specs, per-task timeouts, retry-once-on-crash
  robustness, and *ordered* result collection so parallel output is
  bit-identical to the serial path.
* :class:`~repro.parallel.cache.ResultsCache` — an on-disk results cache
  keyed by ``(config-hash, seed)`` under ``.repro_cache/`` so re-running a
  study with one changed parameter only recomputes the changed arms.

``experiments/montecarlo.py`` and ``experiments/sweeps.py`` accept an
``executor=`` strategy (``"serial"`` default, ``"process"`` opt-in) built on
these primitives; the CLI exposes ``--workers`` / ``--no-cache``.
"""

from repro.parallel.cache import (
    QUARANTINE_DIRNAME,
    ResultsCache,
    cache_stats,
    config_fingerprint,
    prune_cache,
    verify_store,
)
from repro.parallel.pool import (
    TaskCrashError,
    TaskFailedError,
    TaskSpec,
    TaskTimeoutError,
    WorkerPool,
    default_chunk_size,
)

__all__ = [
    "QUARANTINE_DIRNAME",
    "ResultsCache",
    "TaskCrashError",
    "TaskFailedError",
    "TaskSpec",
    "TaskTimeoutError",
    "WorkerPool",
    "cache_stats",
    "config_fingerprint",
    "default_chunk_size",
    "prune_cache",
    "verify_store",
]

"""On-disk results cache for experiment arms.

Re-running a sweep with one changed parameter should only recompute the
changed arms. Every cacheable unit (one Monte-Carlo seed, one sweep point)
is keyed by a SHA-256 fingerprint of its *full* configuration — the frozen
dataclass ``repr`` covers every knob, so any parameter change, however
small, produces a new key and a clean miss. Values are JSON documents under
``.repro_cache/`` (two-level fan-out directories, atomic writes), so the
cache survives process crashes and is safe to share between the serial and
process executors.

Invalidation is purely key-based: there is no TTL. Delete the cache root
(or pass ``--no-cache``) after changing *code* rather than configuration —
the fingerprint sees parameters, not simulator source. ``SCHEMA_VERSION``
is baked into every key so cache layout changes never read stale entries.

Integrity: entries are written inside a checksum envelope
(``{"sha256": <hex of the canonical payload JSON>, "payload": ...}``)
and verified on every read. A corrupt, truncated, or checksum-mismatched
entry is *quarantined* — moved to ``<root>/quarantine/`` for forensics —
and counted as a miss, so a bit flip or torn write costs one recompute,
never a poisoned study. Pre-envelope entries (raw payloads) still read
fine. ``repro cache verify`` sweeps the whole store offline.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
from typing import Any, Dict, Optional

#: Bump when the cached payload shape changes; old entries become misses.
SCHEMA_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

#: Root-level file recording the last run's hit/miss/disabled figures
#: (written by the study scheduler; read by ``repro cache stats``).
STATS_FILENAME = "last_run_stats.json"

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIRNAME = "quarantine"

#: The envelope's exact key set — how a versioned entry is recognized.
_ENVELOPE_KEYS = frozenset(("sha256", "payload"))


def _canonical_body(payload: Any) -> str:
    """The canonical JSON serialization the checksum covers.

    ``json.dumps`` with compact separators round-trips exactly
    (``dumps(loads(body)) == body`` for JSON-native types), so the
    digest computed at write time can be recomputed at read time from
    the decoded payload alone.
    """
    return json.dumps(payload, separators=(",", ":"))


def config_fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the ``repr`` of every part, order-sensitive.

    Frozen dataclass reprs are deterministic functions of their field
    values (nested dataclasses included), which makes them a stable,
    dependency-free serialization for hashing:

    >>> a = config_fingerprint(("x", 1.5))
    >>> a == config_fingerprint(("x", 1.5))
    True
    >>> a == config_fingerprint(("x", 1.6))
    False
    """
    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION}".encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return digest.hexdigest()


class ResultsCache:
    """A tiny content-addressed JSON store.

    >>> import tempfile
    >>> cache = ResultsCache(tempfile.mkdtemp())
    >>> key = config_fingerprint("mc", 101)
    >>> cache.get(key) is None
    True
    >>> cache.put(key, {"seed": 101, "bounded": True})
    >>> cache.get(key)["seed"]
    101
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.disabled = False
        self._metrics = None
        self._faults = None

    def attach_metrics(self, registry) -> None:
        """Attach a metrics registry so a mid-run self-disable is *loud*.

        A cache that silently turns itself off looks exactly like a cold
        cache from the outside; with a registry attached the disable event
        increments ``cache.disable_events`` the moment it happens (the
        end-of-study gauges only show the final state). Quarantine events
        likewise increment ``cache.quarantined`` live.
        """
        self._metrics = registry

    def attach_faults(self, injector) -> None:
        """Attach (or with ``None``, detach) a fault injector.

        The hooks in :meth:`get`/:meth:`put` are a single ``is not
        None`` check when no injector is attached — cheap enough to
        live in the production path permanently (bench-gate verified by
        ``benchmarks/bench_faults_overhead.py``).
        """
        self._faults = injector

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (never delete evidence); count it."""
        dest_dir = os.path.join(self.root, QUARANTINE_DIRNAME)
        try:
            os.makedirs(dest_dir, exist_ok=True)
            os.replace(path, os.path.join(dest_dir, os.path.basename(path)))
        except OSError:
            # Quarantine dir unwritable: fall back to removing the entry
            # so the corrupt bytes can never be served again.
            try:
                os.remove(path)
            except OSError:
                pass
        self.quarantined += 1
        if self._metrics is not None:
            self._metrics.counter("cache.quarantined").inc()

    def get(self, key: str) -> Optional[Any]:
        """Return the cached payload, or ``None`` on a miss.

        A corrupt entry — torn write, bit flip, invalid UTF-8, manual
        edit, or a checksum mismatch against the envelope — is
        quarantined to ``<root>/quarantine/`` and reported as a miss
        rather than poisoning (or crashing) the study.
        """
        if self.disabled:
            # Still a miss: hit/miss accounting must stay meaningful (and
            # exportable as metrics) even after the cache disables itself.
            self.misses += 1
            return None
        path = self._path(key)
        if self._faults is not None:
            point = self._faults.pre_op("cache.get")
            if point is not None:
                self._faults.corrupt(point, path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, UnicodeDecodeError, OSError):
            # ValueError covers JSONDecodeError; UnicodeDecodeError is
            # *not* a ValueError subclass path json.load reports — a
            # bit-flipped byte can make the file invalid UTF-8 and used
            # to escape this handler entirely (the pre-envelope bug).
            self._quarantine(path)
            self.misses += 1
            return None
        if isinstance(doc, dict) and set(doc) == _ENVELOPE_KEYS:
            digest = hashlib.sha256(
                _canonical_body(doc["payload"]).encode("utf-8")
            ).hexdigest()
            if digest != doc["sha256"]:
                self._quarantine(path)
                self.misses += 1
                return None
            payload = doc["payload"]
        else:
            payload = doc  # pre-envelope entry: accepted unverified
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        """Store a payload atomically (tmp + rename) inside a checksum
        envelope.

        Caching is an optimization: if the cache root is unwritable (path
        collides with a file, disk full, permissions), the cache disables
        itself with a warning instead of killing a multi-hour study on the
        first write.
        """
        if self.disabled:
            return
        path = self._path(key)
        tmp = None
        try:
            fault_point = None
            if self._faults is not None:
                # Inside the try: an injected OSError/ENOSPC exercises
                # the same self-disable path a real full disk does.
                fault_point = self._faults.pre_op("cache.put")
            body = _canonical_body(payload)
            digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write('{"sha256":"%s","payload":%s}' % (digest, body))
            os.replace(tmp, path)
            if fault_point is not None:
                self._faults.corrupt(fault_point, path)
        except OSError as exc:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            self.disabled = True
            if self._metrics is not None:
                self._metrics.counter("cache.disable_events").inc()
            warnings.warn(
                f"results cache at {self.root!r} is unwritable ({exc}); "
                "caching disabled for this run",
                RuntimeWarning,
                stacklevel=2,
            )

    def write_stats(self) -> None:
        """Persist this run's hit/miss/disabled figures to the cache root.

        Best-effort (an unwritable root is already the *disabled* case);
        ``repro cache stats`` reads the file back as "last run" figures.
        """
        doc = {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (
                self.hits / (self.hits + self.misses)
                if (self.hits + self.misses) else 0.0
            ),
            "quarantined": self.quarantined,
            "disabled": self.disabled,
            "written_at": time.time(),
        }
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1)
            os.replace(tmp, os.path.join(self.root, STATS_FILENAME))
        except OSError:
            pass

    def __repr__(self) -> str:
        return (
            f"ResultsCache(root={self.root!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )


# ----------------------------------------------------------------------
# Store maintenance (the ``repro cache`` CLI)
# ----------------------------------------------------------------------
def _iter_entries(root: str):
    """Yield ``(path, size, mtime)`` for every cache entry under ``root``."""
    try:
        fanouts = sorted(os.listdir(root))
    except OSError:
        return
    for fanout in fanouts:
        directory = os.path.join(root, fanout)
        if len(fanout) != 2 or not os.path.isdir(directory):
            continue  # root-level stats file, stray tmp files
        try:
            names = sorted(os.listdir(directory))
        except OSError:
            continue
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            yield path, stat.st_size, stat.st_mtime


def cache_stats(root: str = DEFAULT_CACHE_DIR) -> Dict[str, Any]:
    """Entry count, total bytes, and the last run's hit/miss figures."""
    entries = 0
    total_bytes = 0
    oldest: Optional[float] = None
    newest: Optional[float] = None
    for _, size, mtime in _iter_entries(root):
        entries += 1
        total_bytes += size
        oldest = mtime if oldest is None else min(oldest, mtime)
        newest = mtime if newest is None else max(newest, mtime)
    last_run = None
    try:
        with open(os.path.join(root, STATS_FILENAME), encoding="utf-8") as fh:
            last_run = json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    quarantine_dir = os.path.join(root, QUARANTINE_DIRNAME)
    try:
        quarantined = len([
            n for n in os.listdir(quarantine_dir) if n.endswith(".json")
        ])
    except OSError:
        quarantined = 0
    return {
        "root": root,
        "entries": entries,
        "bytes": total_bytes,
        "oldest_mtime": oldest,
        "newest_mtime": newest,
        "quarantined": quarantined,
        "last_run": last_run,
    }


def prune_cache(
    root: str = DEFAULT_CACHE_DIR,
    older_than_s: Optional[float] = None,
    max_bytes: Optional[int] = None,
    now: Optional[float] = None,
    dry_run: bool = False,
) -> Dict[str, int]:
    """Garbage-collect the job-result store.

    ``older_than_s`` removes entries whose mtime predates ``now -
    older_than_s``; ``max_bytes`` then evicts oldest-first until the store
    fits the budget. Either criterion may be used alone. Returns a summary
    (``scanned`` / ``removed`` / ``bytes_removed`` / ``bytes_kept``).
    """
    if older_than_s is None and max_bytes is None:
        raise ValueError("prune needs older_than_s and/or max_bytes")
    now = time.time() if now is None else now
    entries = sorted(_iter_entries(root), key=lambda e: e[2])  # oldest first
    keep_bytes = sum(size for _, size, _ in entries)
    removed = 0
    bytes_removed = 0
    for path, size, mtime in entries:
        expired = older_than_s is not None and mtime < now - older_than_s
        over_budget = max_bytes is not None and keep_bytes > max_bytes
        if not (expired or over_budget):
            continue
        if not dry_run:
            try:
                os.remove(path)
            except OSError:
                continue
        removed += 1
        bytes_removed += size
        keep_bytes -= size
    if not dry_run:
        for fanout in sorted(set(os.path.dirname(p) for p, _, _ in entries)):
            try:
                os.rmdir(fanout)  # only succeeds when emptied
            except OSError:
                pass
    return {
        "scanned": len(entries),
        "removed": removed,
        "bytes_removed": bytes_removed,
        "bytes_kept": keep_bytes,
    }


def verify_store(root: str = DEFAULT_CACHE_DIR) -> Dict[str, int]:
    """Offline integrity sweep (the ``repro cache verify`` CLI).

    Re-reads every entry, recomputes the envelope checksum, and
    quarantines anything unreadable or mismatched — the same healing
    :meth:`ResultsCache.get` applies lazily, applied eagerly to the
    whole store. Pre-envelope (legacy) entries are counted but left in
    place: they carry no checksum to verify against.

    Returns ``{"scanned", "ok", "legacy", "quarantined"}``.
    """
    cache = ResultsCache(root)
    scanned = ok = legacy = 0
    for path, _, _ in list(_iter_entries(root)):
        scanned += 1
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (ValueError, UnicodeDecodeError, OSError):
            cache._quarantine(path)
            continue
        if isinstance(doc, dict) and set(doc) == _ENVELOPE_KEYS:
            digest = hashlib.sha256(
                _canonical_body(doc["payload"]).encode("utf-8")
            ).hexdigest()
            if digest != doc["sha256"]:
                cache._quarantine(path)
            else:
                ok += 1
        else:
            legacy += 1
    return {
        "scanned": scanned,
        "ok": ok,
        "legacy": legacy,
        "quarantined": cache.quarantined,
    }

"""On-disk results cache for experiment arms.

Re-running a sweep with one changed parameter should only recompute the
changed arms. Every cacheable unit (one Monte-Carlo seed, one sweep point)
is keyed by a SHA-256 fingerprint of its *full* configuration — the frozen
dataclass ``repr`` covers every knob, so any parameter change, however
small, produces a new key and a clean miss. Values are JSON documents under
``.repro_cache/`` (two-level fan-out directories, atomic writes), so the
cache survives process crashes and is safe to share between the serial and
process executors.

Invalidation is purely key-based: there is no TTL. Delete the cache root
(or pass ``--no-cache``) after changing *code* rather than configuration —
the fingerprint sees parameters, not simulator source. ``SCHEMA_VERSION``
is baked into every key so cache layout changes never read stale entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from typing import Any, Optional

#: Bump when the cached payload shape changes; old entries become misses.
SCHEMA_VERSION = 1

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def config_fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the ``repr`` of every part, order-sensitive.

    Frozen dataclass reprs are deterministic functions of their field
    values (nested dataclasses included), which makes them a stable,
    dependency-free serialization for hashing:

    >>> a = config_fingerprint(("x", 1.5))
    >>> a == config_fingerprint(("x", 1.5))
    True
    >>> a == config_fingerprint(("x", 1.6))
    False
    """
    digest = hashlib.sha256()
    digest.update(f"schema={SCHEMA_VERSION}".encode("utf-8"))
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode("utf-8"))
    return digest.hexdigest()


class ResultsCache:
    """A tiny content-addressed JSON store.

    >>> import tempfile
    >>> cache = ResultsCache(tempfile.mkdtemp())
    >>> key = config_fingerprint("mc", 101)
    >>> cache.get(key) is None
    True
    >>> cache.put(key, {"seed": 101, "bounded": True})
    >>> cache.get(key)["seed"]
    101
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.disabled = False

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def get(self, key: str) -> Optional[Any]:
        """Return the cached payload, or ``None`` on a miss.

        A corrupt entry (interrupted write on an old filesystem, manual
        edit) is deleted and reported as a miss rather than poisoning the
        study.
        """
        if self.disabled:
            # Still a miss: hit/miss accounting must stay meaningful (and
            # exportable as metrics) even after the cache disables itself.
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        """Store a JSON-serializable payload atomically (tmp + rename).

        Caching is an optimization: if the cache root is unwritable (path
        collides with a file, disk full, permissions), the cache disables
        itself with a warning instead of killing a multi-hour study on the
        first write.
        """
        if self.disabled:
            return
        path = self._path(key)
        tmp = None
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError as exc:
            if tmp is not None:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            self.disabled = True
            warnings.warn(
                f"results cache at {self.root!r} is unwritable ({exc}); "
                "caching disabled for this run",
                RuntimeWarning,
                stacklevel=2,
            )

    def __repr__(self) -> str:
        return (
            f"ResultsCache(root={self.root!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

"""A spawn-safe multiprocessing worker pool with ordered result collection.

Design constraints, in order of importance:

1. **Determinism** — :meth:`WorkerPool.map` returns results in *submission
   order*, never completion order, so a parallel study is bit-identical to
   its serial counterpart.
2. **Robustness** — every task runs in its own worker process with a
   per-task timeout; a wedged or crashed worker is terminated and the task
   retried on a fresh process under a configurable
   :class:`repro.resilience.RetryPolicy` (default: retry once, no
   backoff; exponential backoff with deterministic seeded jitter
   opt-in), so one bad arm cannot hang a 1000-seed study. Repeated
   worker-spawn failures (fd/pid exhaustion) degrade the pool to inline
   in-parent execution instead of failing the study. Deterministic
   Python exceptions raised *by the task function* are not retried
   (re-running deterministic code reproduces the same error) and surface
   as :class:`TaskFailedError` with the child traceback attached.
3. **Spawn safety** — task functions and arguments must be picklable
   (module-level functions, dataclass configs). The pool defaults to the
   ``spawn`` start method, which works identically on Linux/macOS/Windows
   and guarantees children never inherit half-built simulator state; pass
   ``start_method="fork"`` to trade that safety for faster startup on
   POSIX.

The implementation deliberately avoids :mod:`concurrent.futures`: a
``ProcessPoolExecutor`` turns any worker crash into a ``BrokenProcessPool``
that poisons every outstanding future, which is exactly the failure mode a
long fault-injection campaign cannot afford.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.retry import RetryPolicy


class TaskFailedError(RuntimeError):
    """The task function raised; the child traceback is in ``args[0]``."""


class TaskTimeoutError(RuntimeError):
    """A task exceeded its timeout on every allowed attempt."""


class TaskCrashError(RuntimeError):
    """A worker process died without reporting a result on every attempt."""


@dataclass(frozen=True)
class TaskSpec:
    """One picklable unit of work: ``fn(*args, **kwargs)``.

    ``fn`` must be importable from the child process (a module-level
    function), which is what makes the spec spawn-safe.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        """Execute in-process (the serial executor and the child both use this)."""
        return self.fn(*self.args, **self.kwargs)


def default_chunk_size(n_tasks: int, workers: int, oversubscribe: int = 4) -> int:
    """The ISSUE's chunking heuristic: ``~n_tasks / (oversubscribe * workers)``.

    Oversubscribing each worker by ~4 chunks keeps the pool busy when arms
    have uneven runtimes (a chunk that finishes early frees its worker for
    the next one) while amortizing process startup over several tasks.

    >>> default_chunk_size(32, 4)
    2
    >>> default_chunk_size(5, 8)
    1
    """
    if n_tasks <= 0:
        return 1
    workers = max(1, workers)
    return max(1, n_tasks // (oversubscribe * workers))


def _child_main(conn: Connection, fn: Callable[..., Any],
                args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> None:
    """Worker entry point: run the task, ship ``(ok, payload)`` back."""
    try:
        value = fn(*args, **kwargs)
        payload: Tuple[bool, Any] = (True, value)
    except BaseException:
        payload = (False, traceback.format_exc())
    try:
        conn.send(payload)
    finally:
        conn.close()


def _child_fault(mode: str, hang_s: float, fn: Callable[..., Any],
                 args: Tuple[Any, ...], kwargs: Dict[str, Any]) -> Any:
    """Child-side ``worker.exec`` fault shim (module-level: must pickle
    under ``spawn``). ``crash`` hard-kills the worker before it can
    report; ``hang`` wedges it past the watchdog. The original spec is
    untouched, so a retry launches the real function."""
    if mode == "crash":
        os._exit(43)
    if mode == "hang":
        time.sleep(hang_s)
    return fn(*args, **kwargs)


@dataclass
class _Running:
    """Bookkeeping for one in-flight attempt."""

    index: int
    spec: TaskSpec
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    deadline: Optional[float]
    started: float


class WorkerPool:
    """Run picklable tasks across worker processes, results in task order.

    Parameters
    ----------
    max_workers:
        Concurrent worker processes; defaults to ``os.cpu_count()``.
    task_timeout:
        Wall-clock seconds one attempt may take before its worker is
        terminated; ``None`` disables the watchdog.
    retries:
        Legacy knob: extra attempts granted after a crash or timeout
        (default 1: "retry once on crash"). Ignored when
        ``retry_policy`` is given. Task-function exceptions never retry.
    retry_policy:
        A :class:`repro.resilience.RetryPolicy` — total attempts plus
        exponential backoff with deterministic seeded jitter. Default:
        ``RetryPolicy.from_retries(retries)`` (no backoff).
    spawn_failure_limit:
        After this many consecutive ``Process.start()`` failures
        (fork/spawn ``OSError``: fd or pid exhaustion, low memory) the
        pool *degrades* to running the remaining tasks inline in the
        parent — slower, but the study finishes.
    start_method:
        ``"spawn"`` (default, portable and state-clean) or ``"fork"``.

    Example (not a doctest: spawn re-imports this module by package name,
    which the doctest runner's bare-module loading breaks)::

        pool = WorkerPool(max_workers=2)
        pool.map([TaskSpec(fn=abs, args=(-n,)) for n in range(4)])
        # -> [0, 1, 2, 3]
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        retries: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        spawn_failure_limit: int = 3,
        start_method: str = "spawn",
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if spawn_failure_limit < 1:
            raise ValueError(
                f"spawn_failure_limit must be >= 1, got {spawn_failure_limit}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.task_timeout = task_timeout
        self.retry_policy = retry_policy or RetryPolicy.from_retries(retries)
        self.spawn_failure_limit = spawn_failure_limit
        #: Wall-clock seconds of every *successful* attempt, in completion
        #: order, accumulated across :meth:`map` calls — the per-arm timing
        #: the metrics layer exports (launch overhead included, so it
        #: reflects what the study actually paid per arm).
        self.task_seconds: List[float] = []
        #: Crash/timeout retries granted so far (``pool.retries`` metric).
        self.retry_count = 0
        #: Total backoff seconds scheduled (``pool.backoff_seconds``).
        self.backoff_total_s = 0.0
        #: Consecutive worker-spawn failures seen so far.
        self.spawn_failures = 0
        #: True once the pool fell back to inline (in-parent) execution.
        self.degraded = False
        #: Parent-side success callback for the current map_partial call.
        self._on_result: Optional[Callable[[int, Any], None]] = None
        self._faults = None
        self._ctx = multiprocessing.get_context(start_method)

    @property
    def retries(self) -> int:
        """Legacy view: extra attempts after the first."""
        return self.retry_policy.retries

    def attach_faults(self, injector) -> None:
        """Attach (or with ``None``, detach) a ``worker.exec`` fault
        injector; a single ``is not None`` check per launch otherwise."""
        self._faults = injector

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def map(self, tasks: Sequence[TaskSpec]) -> List[Any]:
        """Run every task; return values ordered by task position.

        Raises the per-task error (:class:`TaskFailedError`,
        :class:`TaskTimeoutError`, :class:`TaskCrashError`) of the
        lowest-indexed task that exhausted its attempts.
        """
        results, errors = self.map_partial(tasks)
        if errors:
            raise errors[min(errors)]
        return results

    def map_partial(
        self,
        tasks: Sequence[TaskSpec],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> Tuple[List[Any], Dict[int, BaseException]]:
        """Run every task; never raise on task failure.

        Returns ``(results, errors)``: ``results`` ordered by task
        position (``None`` where the task failed), ``errors`` mapping
        failed task indexes to their exhausted-attempt exception. This is
        what lets a resumable study mark one bad arm ``failed`` and keep
        the rest — :meth:`map`'s all-or-nothing raise is a wrapper.

        ``on_result`` (parent-side) is invoked as ``on_result(index,
        value)`` the moment a task succeeds, in *completion* order — the
        hook the study scheduler uses to persist and journal results
        incrementally so a killed run loses only in-flight tasks.
        """
        tasks = list(tasks)
        if not tasks:
            return [], {}
        results: List[Any] = [None] * len(tasks)
        errors: Dict[int, BaseException] = {}
        # (index, spec, attempt, ready_at) queue; retries re-enter at the
        # back carrying their backoff deadline.
        pending: List[Tuple[int, TaskSpec, int, float]] = [
            (i, spec, 0, 0.0) for i, spec in enumerate(tasks)
        ]
        running: List[_Running] = []
        self._on_result = on_result
        try:
            while pending or running:
                now = time.monotonic()
                i = 0
                while i < len(pending) and len(running) < self.max_workers:
                    if pending[i][3] <= now:
                        index, spec, attempt, _ = pending.pop(i)
                        slot = self._launch(index, spec, attempt, pending,
                                            results, errors)
                        if slot is not None:
                            running.append(slot)
                        now = time.monotonic()
                    else:
                        i += 1
                if running:
                    self._collect(running, pending, results, errors)
                elif pending:
                    # Everything queued is waiting out a backoff window.
                    wake = min(entry[3] for entry in pending)
                    time.sleep(max(0.0, wake - time.monotonic()))
        finally:
            self._on_result = None
            for slot in running:  # only non-empty if an error is propagating
                self._terminate(slot)
        return results, errors

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _launch(
        self,
        index: int,
        spec: TaskSpec,
        attempt: int,
        pending: List[Tuple[int, TaskSpec, int, float]],
        results: List[Any],
        errors: Dict[int, BaseException],
    ) -> Optional[_Running]:
        """Start one worker attempt; ``None`` when nothing is in flight
        (spawn failed and the task was re-enqueued, or the pool is
        degraded and the task already ran inline)."""
        fault = None
        if self._faults is not None:
            fault = self._faults.decide("worker.exec")
        if self.degraded:
            self._run_inline(index, spec, results, errors)
            return None
        fn, args, kwargs = spec.fn, spec.args, spec.kwargs
        if fault is not None and fault.mode in ("crash", "hang"):
            # Wrap (never mutate) the spec: the retry relaunches the
            # real function and the injector re-decides.
            fn, args = _child_fault, (
                fault.mode, fault.hang_s, spec.fn, spec.args, spec.kwargs
            )
            kwargs = {}
        parent_conn = None
        try:
            if fault is not None and fault.mode in ("oserror", "enospc"):
                raise OSError(
                    f"injected spawn failure ({fault.mode}) at worker.exec"
                )
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_child_main,
                args=(child_conn, fn, args, kwargs),
                daemon=True,
            )
            process.start()
        except OSError as exc:
            # fork/spawn failure: fd or pid exhaustion, low memory, or an
            # injected fault. The task never ran, so this is not a task
            # attempt — re-enqueue as-is and count the failure.
            if parent_conn is not None:
                parent_conn.close()
                child_conn.close()
            self.spawn_failures += 1
            if (not self.degraded
                    and self.spawn_failures >= self.spawn_failure_limit):
                self.degraded = True
                warnings.warn(
                    f"worker spawn failed {self.spawn_failures} times in a "
                    f"row ({exc}); pool degrading to inline serial "
                    "execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
            pending.append((index, spec, attempt, time.monotonic()))
            return None
        self.spawn_failures = 0  # the limit counts *consecutive* failures
        child_conn.close()  # parent keeps only the receive end
        started = time.monotonic()
        deadline = started + self.task_timeout if self.task_timeout is not None else None
        return _Running(index, spec, attempt, process, parent_conn, deadline, started)

    def _run_inline(
        self,
        index: int,
        spec: TaskSpec,
        results: List[Any],
        errors: Dict[int, BaseException],
    ) -> None:
        """Degraded mode: run the task in the parent process. No
        watchdog, no crash isolation — but the study finishes."""
        started = time.monotonic()
        try:
            value = spec.run()
        except Exception:
            errors[index] = TaskFailedError(
                f"task {index} raised inline (degraded pool):\n"
                f"{traceback.format_exc()}"
            )
            return
        results[index] = value
        errors.pop(index, None)
        self.task_seconds.append(time.monotonic() - started)
        if self._on_result is not None:
            self._on_result(index, value)

    def _collect(
        self,
        running: List[_Running],
        pending: List[Tuple[int, TaskSpec, int, float]],
        results: List[Any],
        errors: Dict[int, BaseException],
    ) -> None:
        """Reap one round of finished / wedged / crashed attempts."""
        if not running:
            return
        poll = 0.25
        if self.task_timeout is not None:
            now = time.monotonic()
            nearest = min(s.deadline for s in running if s.deadline is not None)
            poll = max(0.0, min(poll, nearest - now))
        ready = connection_wait([slot.conn for slot in running], timeout=poll)
        ready_set = set(ready)
        now = time.monotonic()
        still_running: List[_Running] = []
        for slot in running:
            if slot.conn in ready_set:
                self._finish(slot, pending, results, errors)
            elif slot.deadline is not None and now >= slot.deadline:
                self._terminate(slot)
                self._retry_or_fail(
                    slot, pending, errors,
                    TaskTimeoutError(
                        f"task {slot.index} exceeded {self.task_timeout}s "
                        f"on attempt {slot.attempt + 1}"
                    ),
                )
            else:
                still_running.append(slot)
        running[:] = still_running

    def _finish(
        self,
        slot: _Running,
        pending: List[Tuple[int, TaskSpec, int, float]],
        results: List[Any],
        errors: Dict[int, BaseException],
    ) -> None:
        try:
            ok, payload = slot.conn.recv()
        except (EOFError, OSError):
            # Pipe closed with nothing in it: the worker died (OOM-kill,
            # segfault, signal) before reporting. This is the crash case.
            self._terminate(slot)
            self._retry_or_fail(
                slot, pending, errors,
                TaskCrashError(
                    f"worker for task {slot.index} died without a result "
                    f"on attempt {slot.attempt + 1}"
                ),
            )
            return
        slot.conn.close()
        slot.process.join()
        if ok:
            results[slot.index] = payload
            errors.pop(slot.index, None)
            self.task_seconds.append(time.monotonic() - slot.started)
            if self._on_result is not None:
                self._on_result(slot.index, payload)
        else:
            # Deterministic task exception: no retry, keep the child traceback.
            errors[slot.index] = TaskFailedError(
                f"task {slot.index} raised in worker:\n{payload}"
            )

    def _retry_or_fail(
        self,
        slot: _Running,
        pending: List[Tuple[int, TaskSpec, int, float]],
        errors: Dict[int, BaseException],
        error: BaseException,
    ) -> None:
        attempts_done = slot.attempt + 1
        if attempts_done < self.retry_policy.max_attempts:
            delay = self.retry_policy.delay_s(slot.index, attempts_done)
            self.retry_count += 1
            self.backoff_total_s += delay
            pending.append((slot.index, slot.spec, slot.attempt + 1,
                            time.monotonic() + delay))
        else:
            errors[slot.index] = error

    @staticmethod
    def _terminate(slot: _Running) -> None:
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join()
        slot.conn.close()

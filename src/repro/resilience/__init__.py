"""Deterministic infra fault injection + the self-healing it proves out.

The chaos layer (PR 5) and adversary campaigns (PR 6) attack the
*simulated* protocol; this package applies the same discipline to the
experiment harness itself. A seeded, JSON-round-trippable
:class:`FaultPlan` injects crashes, hangs, ``OSError``/ENOSPC, torn
writes, and bit flips at six named seams (``cache.get``, ``cache.put``,
``ledger.flush``, ``ledger.load``, ``worker.exec``, ``job.fn``) via thin
hooks in :class:`repro.parallel.ResultsCache`,
:class:`repro.studies.StudyLedger`, :class:`repro.parallel.WorkerPool`,
and :func:`repro.studies.run_study` — zero-overhead no-ops when no plan
is active.

The healing half: checksummed cache entries with verify-on-read and a
quarantine directory, :class:`RetryPolicy` (exponential backoff,
deterministic seeded jitter), poisoned-job quarantine
(``on_error="quarantine"``), pool→serial degradation after repeated
spawn failures, and ledger salvage (``study resume --salvage``, in
:mod:`repro.resilience.salvage` — imported separately to keep this
package import-light, since the WorkerPool itself imports
:mod:`repro.resilience.retry`).

The acceptance bar (``tests/test_resilience_acceptance.py``): under
randomized fault campaigns, any study that reports success must be
byte-identical to a fault-free run. Healing never changes science.
"""

from repro.resilience.faultplan import (
    FAULT_PLAN_SCHEMA_VERSION,
    MODES,
    SEAMS,
    FaultPlan,
    FaultPoint,
    dump_fault_plan,
    load_fault_plan,
    random_fault_campaign,
)
from repro.resilience.injector import (
    FaultInjector,
    InjectedCrash,
    InjectedJobError,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "FAULT_PLAN_SCHEMA_VERSION",
    "MODES",
    "SEAMS",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "InjectedCrash",
    "InjectedJobError",
    "RetryPolicy",
    "dump_fault_plan",
    "load_fault_plan",
    "random_fault_campaign",
]

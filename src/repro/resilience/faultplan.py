"""Deterministic infra fault plans: *what* breaks, *where*, and *when*.

A :class:`FaultPlan` is a schema-versioned, JSON-round-trippable spec that
injects failures into the experiment *harness* (not the simulated
protocol — chaos plans already cover that). Each :class:`FaultPoint`
names one of the instrumented seams, a failure mode, and a firing rule:
either a seeded-RNG probability per call or a fixed list of 1-based call
numbers. The same plan with the same seed always fires the same faults at
the same calls, which is what makes harness-chaos campaigns reproducible
and their byte-identical acceptance checks meaningful.

Seams (see EXPERIMENTS.md "Infra failure model" for the full table):

``cache.get``     read of one job-result store entry
``cache.put``     atomic write of one store entry
``ledger.flush``  atomic write of the study ledger
``ledger.load``   read of the study ledger
``worker.exec``   launch of one WorkerPool worker attempt
``job.fn``        in-process execution of one job (serial executor)

Modes: ``crash`` (process death, raised as the BaseException
:class:`repro.resilience.injector.InjectedCrash`), ``hang`` (sleep past
the watchdog), ``oserror`` / ``enospc`` (an ``OSError`` with EIO/ENOSPC,
so production error handlers engage), ``torn_write`` (truncate the target
file at a byte offset), ``bit_flip`` (flip one bit of the target file),
and ``error`` (a deterministic task exception, ``job.fn`` only).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Bump when the plan JSON shape changes.
FAULT_PLAN_SCHEMA_VERSION = 1

#: Every instrumented seam, in hook order.
SEAMS = (
    "cache.get",
    "cache.put",
    "ledger.flush",
    "ledger.load",
    "worker.exec",
    "job.fn",
)

#: Every failure mode any seam understands.
MODES = ("crash", "hang", "oserror", "enospc", "torn_write", "bit_flip",
         "error")

#: Which modes make sense at which seam. File-corruption modes need a
#: file under the seam; ``error`` simulates a flaky task function;
#: ``hang`` needs a watchdog (worker) or a caller that tolerates sleep.
SEAM_MODES: Dict[str, Tuple[str, ...]] = {
    "cache.get": ("crash", "oserror", "torn_write", "bit_flip"),
    "cache.put": ("crash", "oserror", "enospc", "torn_write", "bit_flip"),
    "ledger.flush": ("crash", "oserror", "enospc", "torn_write", "bit_flip"),
    "ledger.load": ("crash", "oserror", "torn_write", "bit_flip"),
    "worker.exec": ("crash", "hang", "oserror", "enospc"),
    "job.fn": ("crash", "hang", "error"),
}


@dataclass(frozen=True)
class FaultPoint:
    """One injected failure: a seam, a mode, and a firing rule.

    Fires on call ``n`` (1-based, counted per seam across the injector's
    lifetime) when ``n in trigger_calls``, or — when ``trigger_calls`` is
    empty — when the point's private seeded RNG draws below
    ``probability``. ``max_fires`` bounds total fires (``None`` =
    unbounded).
    """

    seam: str
    mode: str
    probability: float = 0.0
    trigger_calls: Tuple[int, ...] = ()
    max_fires: Optional[int] = None
    #: Byte offset for ``torn_write`` truncation (clamped to the file).
    torn_offset: int = 16
    #: Sleep seconds for ``hang``.
    hang_s: float = 30.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.seam not in SEAMS:
            raise ValueError(
                f"unknown seam {self.seam!r}; expected one of {SEAMS}"
            )
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {MODES}"
            )
        if self.mode not in SEAM_MODES[self.seam]:
            raise ValueError(
                f"mode {self.mode!r} is not valid at seam {self.seam!r} "
                f"(valid: {SEAM_MODES[self.seam]})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if not self.trigger_calls and self.probability == 0.0:
            raise ValueError(
                "a fault point needs trigger_calls or probability > 0"
            )
        if any(n < 1 for n in self.trigger_calls):
            raise ValueError("trigger_calls are 1-based (>= 1)")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires}")
        if self.torn_offset < 0:
            raise ValueError(f"torn_offset must be >= 0, got {self.torn_offset}")
        if self.hang_s < 0:
            raise ValueError(f"hang_s must be >= 0, got {self.hang_s}")
        object.__setattr__(self, "trigger_calls",
                           tuple(sorted(self.trigger_calls)))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seam": self.seam,
            "mode": self.mode,
            "probability": self.probability,
            "trigger_calls": list(self.trigger_calls),
            "max_fires": self.max_fires,
            "torn_offset": self.torn_offset,
            "hang_s": self.hang_s,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultPoint":
        return cls(
            seam=doc["seam"],
            mode=doc["mode"],
            probability=float(doc.get("probability", 0.0)),
            trigger_calls=tuple(doc.get("trigger_calls", ())),
            max_fires=doc.get("max_fires"),
            torn_offset=int(doc.get("torn_offset", 16)),
            hang_s=float(doc.get("hang_s", 30.0)),
            label=doc.get("label", ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault points.

    >>> plan = FaultPlan(name="demo", seed=7, points=(
    ...     FaultPoint(seam="cache.put", mode="torn_write",
    ...                trigger_calls=(1,)),
    ... ))
    >>> FaultPlan.from_dict(plan.to_dict()) == plan
    True
    """

    name: str
    seed: int = 0
    points: Tuple[FaultPoint, ...] = ()
    schema_version: int = FAULT_PLAN_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a fault plan needs a name")
        if self.schema_version != FAULT_PLAN_SCHEMA_VERSION:
            raise ValueError(
                f"fault plan schema {self.schema_version!r} unsupported "
                f"(expected {FAULT_PLAN_SCHEMA_VERSION})"
            )
        object.__setattr__(self, "points", tuple(self.points))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "seed": self.seed,
            "points": [p.to_dict() for p in self.points],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultPlan":
        return cls(
            name=doc["name"],
            seed=int(doc.get("seed", 0)),
            points=tuple(FaultPoint.from_dict(p)
                         for p in doc.get("points", ())),
            schema_version=int(
                doc.get("schema_version", FAULT_PLAN_SCHEMA_VERSION)
            ),
        )


def load_fault_plan(path: str) -> FaultPlan:
    """Read and validate a fault-plan JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"fault plan {path!r} is not a JSON object")
    return FaultPlan.from_dict(doc)


def dump_fault_plan(plan: FaultPlan, path: str) -> None:
    """Write a plan back out (round-trips through ``load_fault_plan``)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(plan.to_dict(), fh, indent=1)
        fh.write("\n")


# ----------------------------------------------------------------------
# Randomized campaigns (the crashmonkey-style acceptance generator)
# ----------------------------------------------------------------------
#: The pool of candidate faults a randomized campaign draws from. Every
#: candidate is safe for a *serial* study loop: no hangs (nothing would
#: time them out in-process) and no ledger.load faults (the scheduler
#: never reloads mid-run). Probabilities are chosen so a handful of
#: resume rounds converges with high likelihood.
_CAMPAIGN_CANDIDATES = (
    ("cache.put", "torn_write", 0.35),
    ("cache.put", "bit_flip", 0.30),
    ("cache.get", "torn_write", 0.25),
    ("cache.get", "bit_flip", 0.25),
    ("ledger.flush", "torn_write", 0.15),
    ("job.fn", "error", 0.30),
    ("job.fn", "crash", 0.20),
)


def random_fault_campaign(seed: int, max_points: int = 4) -> FaultPlan:
    """A seeded random harness-chaos campaign over the safe seam/mode pool.

    Deterministic: the same seed always yields the same plan. Used by the
    crashmonkey acceptance suite (seeds 1/21/42) and the nightly CI
    fault-campaign job.
    """
    rng = random.Random(seed)
    count = rng.randint(2, max(2, max_points))
    picks = rng.sample(_CAMPAIGN_CANDIDATES, k=min(count,
                                                   len(_CAMPAIGN_CANDIDATES)))
    points = []
    for seam, mode, base_p in picks:
        probability = round(base_p * rng.uniform(0.5, 1.0), 3)
        points.append(FaultPoint(
            seam=seam,
            mode=mode,
            probability=max(probability, 0.05),
            torn_offset=rng.randint(4, 64),
            label=f"campaign-{seed}:{seam}:{mode}",
        ))
    return FaultPlan(name=f"campaign-{seed}", seed=seed,
                     points=tuple(points))

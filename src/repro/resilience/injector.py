"""The fault injector: turns a :class:`FaultPlan` into actual failures.

One :class:`FaultInjector` is attached per run (``run_study(faults=...)``
or the ``--fault-plan`` CLI flag); production code calls its two hooks at
the named seams:

``pre_op(seam, ...)``
    Raise the injected failure (crash / OSError / deterministic task
    error), sleep for a hang, or return the fired corruption-mode
    :class:`FaultPoint` for the caller to apply with :meth:`corrupt`.
    Returns ``None`` when nothing fires — the common case, one dict
    lookup and a few integer compares, cheap enough that the hooks stay
    in the production path permanently (bench-gate verified).

``corrupt(point, path)``
    Apply ``torn_write`` (truncate at a byte offset) or ``bit_flip``
    (flip one deterministic bit) to the file at ``path``.

Determinism: every fault point owns a private ``random.Random`` stream
seeded from ``sha256(plan.seed, salt, point_index)`` — never Python's
``hash()``, whose string salting varies per process. Same plan + same
salt ⇒ identical firing pattern, regardless of how many other points
exist or fire. ``salt`` lets a resume loop re-attach the same plan with
fresh (but still deterministic) randomness per round.

:class:`InjectedCrash` subclasses :class:`BaseException` deliberately:
a simulated process death must blow through ``except Exception`` job
handlers exactly like a real SIGKILL unwinds nothing.
"""

from __future__ import annotations

import errno
import hashlib
import os
import random
import time
from typing import Dict, List, Optional, Tuple

from repro.resilience.faultplan import FaultPlan, FaultPoint

#: Modes pre_op handles by raising/sleeping, vs. returning for corrupt().
_RAISING_MODES = ("crash", "hang", "oserror", "enospc", "error")
_CORRUPTION_MODES = ("torn_write", "bit_flip")


class InjectedCrash(BaseException):
    """A simulated process kill. BaseException so ``except Exception``
    job handlers cannot absorb it — the study dies mid-flight exactly
    like a real crash, leaving a resumable ledger behind."""


class InjectedJobError(RuntimeError):
    """A simulated task-function failure (``job.fn`` mode ``error``) —
    an ordinary Exception, so retry/quarantine policy applies."""


def _derive_seed(plan_seed: int, salt: int, index: int) -> int:
    digest = hashlib.sha256(
        f"faults:{plan_seed}:{salt}:{index}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big")


class FaultInjector:
    """Stateful, seeded executor of one fault plan.

    Counts calls per seam, decides which point (if any) fires at each
    call, and records every fire in :attr:`fires` for assertions and
    artifacts.
    """

    def __init__(self, plan: FaultPlan, salt: int = 0) -> None:
        self.plan = plan
        self.salt = salt
        self.calls: Dict[str, int] = {}
        #: Every fire: ``(seam, mode, call_number, label)``.
        self.fires: List[Tuple[str, str, int, str]] = []
        self._rngs = [
            random.Random(_derive_seed(plan.seed, salt, i))
            for i in range(len(plan.points))
        ]
        self._fire_counts = [0] * len(plan.points)

    @property
    def fire_count(self) -> int:
        return len(self.fires)

    def decide(self, seam: str) -> Optional[FaultPoint]:
        """Count one call at ``seam``; return the fired point, if any.

        The first matching point that fires wins; every probability
        point matching the seam draws its RNG on every call so firing
        streams stay independent of other points' outcomes.
        """
        count = self.calls.get(seam, 0) + 1
        self.calls[seam] = count
        fired: Optional[FaultPoint] = None
        for i, point in enumerate(self.plan.points):
            if point.seam != seam:
                continue
            if point.trigger_calls:
                fire = count in point.trigger_calls
            else:
                fire = self._rngs[i].random() < point.probability
            if point.max_fires is not None and \
                    self._fire_counts[i] >= point.max_fires:
                fire = False
            if fire and fired is None:
                self._fire_counts[i] += 1
                fired = point
                self.fires.append((seam, point.mode, count,
                                   point.label or f"{seam}:{point.mode}"))
        return fired

    def pre_op(self, seam: str) -> Optional[FaultPoint]:
        """The seam hook: raise/sleep raising modes, return corruption
        modes for the caller to apply via :meth:`corrupt`."""
        point = self.decide(seam)
        if point is None:
            return None
        call = self.calls[seam]
        if point.mode == "crash":
            raise InjectedCrash(
                f"injected crash at {seam} call {call} "
                f"({point.label or self.plan.name})"
            )
        if point.mode == "error":
            raise InjectedJobError(
                f"injected task error at {seam} call {call} "
                f"({point.label or self.plan.name})"
            )
        if point.mode in ("oserror", "enospc"):
            code = errno.ENOSPC if point.mode == "enospc" else errno.EIO
            raise OSError(
                code,
                f"injected {point.mode} at {seam} call {call} "
                f"({point.label or self.plan.name})",
            )
        if point.mode == "hang":
            time.sleep(point.hang_s)
            return None
        return point  # torn_write / bit_flip

    def corrupt(self, point: FaultPoint, path: str) -> None:
        """Apply a corruption-mode fault to the file at ``path``.

        Best-effort: a missing file is a no-op (the fault already
        "happened" to nothing).
        """
        if point.mode not in _CORRUPTION_MODES:
            raise ValueError(f"{point.mode!r} is not a corruption mode")
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        if size == 0:
            return
        if point.mode == "torn_write":
            # Truncate at the offset, clamped so the file always shrinks.
            offset = min(point.torn_offset, size - 1)
            with open(path, "r+b") as fh:
                fh.truncate(offset)
        else:  # bit_flip
            # Deterministic position from the plan identity, not from the
            # point's firing RNG (corruption must not perturb firing).
            pos_seed = _derive_seed(self.plan.seed, self.salt,
                                    1000 + len(self.fires))
            position = pos_seed % size
            with open(path, "r+b") as fh:
                fh.seek(position)
                byte = fh.read(1)
                fh.seek(position)
                fh.write(bytes([byte[0] ^ (1 << (pos_seed % 8))]))

    def summary(self) -> Dict[str, object]:
        """Compact fire report for manifests and CI artifacts."""
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "salt": self.salt,
            "calls": dict(self.calls),
            "fires": [
                {"seam": seam, "mode": mode, "call": call, "label": label}
                for seam, mode, call, label in self.fires
            ],
        }

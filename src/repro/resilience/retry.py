"""Configurable retry policy with deterministic seeded backoff jitter.

Replaces the hard-coded "retry once on crash" in :class:`WorkerPool`.
The jitter is a pure function of ``(seed, task index, attempt)`` — it is
derived from a SHA-256 digest, never Python's ``hash()`` (whose string
salting varies per process under ``PYTHONHASHSEED``) — so a study that
retries is still byte-for-byte reproducible: the same seed produces the
same backoff schedule on every run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def _unit_interval(*parts: object) -> float:
    """Deterministic uniform draw in [0, 1) from the hashed parts."""
    digest = hashlib.sha256(
        ":".join(str(p) for p in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a task gets and how long to wait between them.

    ``max_attempts`` counts *total* attempts (1 = never retry — the
    historical serial behaviour; the pool's historical default maps to
    2: retry once). Backoff before retry ``k`` (1-based) is
    ``backoff_s * backoff_factor**(k-1)``, capped at ``max_backoff_s``,
    then scaled by ``1 + jitter * u`` where ``u`` is the deterministic
    unit draw for ``(seed, index, k)``.

    >>> p = RetryPolicy(max_attempts=3, backoff_s=0.1, jitter=0.5, seed=7)
    >>> p.delay_s(0, 1) == p.delay_s(0, 1)   # deterministic
    True
    >>> RetryPolicy(max_attempts=2).delay_s(0, 1)
    0.0
    """

    max_attempts: int = 2
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < 0:
            raise ValueError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """Map the legacy ``WorkerPool(retries=N)`` knob: N extra
        attempts, no backoff."""
        return cls(max_attempts=retries + 1)

    @property
    def retries(self) -> int:
        """Extra attempts after the first (the legacy knob)."""
        return self.max_attempts - 1

    def delay_s(self, index: int, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1-based) of task
        ``index``. Deterministic for a fixed seed."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        if self.backoff_s <= 0:
            return 0.0
        delay = self.backoff_s * self.backoff_factor ** (attempt - 1)
        delay = min(delay, self.max_backoff_s)
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * _unit_interval(
                self.seed, index, attempt
            )
        return delay

"""Ledger salvage: recover a resumable study from a torn ledger file.

A kill during a ledger flush on a filesystem without atomic rename (or a
torn write injected by a fault plan) can leave ``*.ledger.json``
truncated mid-document. The ledger's ``to_dict`` deliberately orders the
small identity fields (``study``, ``fingerprint``, ``cache_dir``,
``spec``) *before* the large ``jobs`` map, so a torn tail almost always
still contains the full embedded spec — enough to recompile the exact
study and rebuild a fresh all-pending ledger. The job-result store then
does the rest: ``run_study``'s dedupe stage re-reads every finished job
from ``.repro_cache/`` by content-addressed key, so salvage loses no
completed work, only the journal's bookkeeping.

Surfaced as ``repro-sim study resume LEDGER --salvage``; the corrupt
file is preserved next to the rebuilt one as ``LEDGER.corrupt``.

This module imports the studies layer, so it is *not* re-exported from
``repro.resilience`` (whose ``__init__`` must stay import-light — the
WorkerPool itself imports :mod:`repro.resilience.retry`).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.studies.core import Study
from repro.studies.ledger import StudyLedger


class LedgerSalvageError(RuntimeError):
    """The corrupt ledger held no recoverable spec — nothing to rebuild
    from. Re-run ``study run`` with the original spec file instead."""


def _extract_top_value(text: str, key: str) -> Optional[Any]:
    """Decode the JSON value of the first ``"key":`` occurrence in
    ``text``; ``None`` if the key is absent or its value is itself torn.
    """
    marker = f'"{key}":'
    start = text.find(marker)
    if start < 0:
        return None
    pos = start + len(marker)
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    try:
        value, _ = json.JSONDecoder().raw_decode(text, pos)
    except (ValueError, IndexError):
        return None
    return value


def salvage_fields(text: str) -> Dict[str, Any]:
    """Pull whatever identity fields survived the tear.

    Returns a dict with any of ``study`` / ``fingerprint`` /
    ``cache_dir`` / ``spec`` that decoded cleanly. The identity fields
    are written before the jobs map, so truncation usually spares them.
    """
    recovered: Dict[str, Any] = {}
    for key in ("study", "fingerprint", "cache_dir", "spec"):
        value = _extract_top_value(text, key)
        if value is not None:
            recovered[key] = value
    return recovered


def salvage_study(path: str) -> Dict[str, Any]:
    """Recover the embedded spec (+ identity fields) from a corrupt
    ledger file. Raises :class:`LedgerSalvageError` when no spec
    survived."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    recovered = salvage_fields(text)
    if not isinstance(recovered.get("spec"), dict):
        raise LedgerSalvageError(
            f"ledger {path!r} is corrupt and its embedded spec did not "
            "survive; re-run `study run` with the original spec file "
            "(finished jobs will be served from the result store)"
        )
    return recovered


def rebuild_ledger(
    path: str,
    study: Study,
    spec: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[str] = None,
    recovered_fingerprint: Optional[str] = None,
) -> StudyLedger:
    """Replace the corrupt ledger at ``path`` with a fresh all-pending
    one for ``study``.

    The corrupt file is preserved as ``path + ".corrupt"`` for forensics.
    If the corrupt ledger's fingerprint survived and does *not* match the
    recompiled study, salvage refuses — rebuilding a ledger for a
    different study would silently mix result sets.
    """
    if (recovered_fingerprint is not None
            and recovered_fingerprint != study.fingerprint()):
        raise LedgerSalvageError(
            f"corrupt ledger {path!r} records study fingerprint "
            f"{recovered_fingerprint[:12]} but the recompiled study is "
            f"{study.fingerprint()[:12]}; refusing to rebuild across "
            "studies"
        )
    backup = path + ".corrupt"
    os.replace(path, backup)
    ledger = StudyLedger.for_study(study, path=path, spec=spec,
                                   cache_dir=cache_dir)
    ledger.save()
    return ledger

"""Declarative scenario layer.

A scenario is a frozen, fingerprintable description of one experimental
setup — topology shape/size N, gPTP domain count M, fault hypothesis f, GM
placement, link model, kernel policy, optional fault plan — that every
experiment and the CLI can consume instead of hand-building testbeds.

>>> from repro.scenarios import get_scenario
>>> spec = get_scenario("ring")
>>> config = spec.testbed_config(seed=7)   # → TestbedConfig
>>> spec.fingerprint()[:8]                 # scenario-addressed caching
'...'
"""

from repro.scenarios.spec import (
    SCENARIO_SCHEMA_VERSION,
    FaultPlanSpec,
    LinkSpec,
    ScenarioSpec,
    dump_scenario,
    load_scenario,
)
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    resolve_scenario,
    scenario_names,
)

__all__ = [
    "SCENARIO_SCHEMA_VERSION",
    "FaultPlanSpec",
    "LinkSpec",
    "ScenarioSpec",
    "dump_scenario",
    "load_scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "resolve_scenario",
    "scenario_names",
]

"""Named scenario registry.

Built-ins cover the paper's exact setup (``paper-mesh4``) plus the shapes
the related work motivates: G-SINC's topology diversity (ring, line, star)
and a scaled ``mesh8`` exercising a larger N/M with f = 2 (Jiang et al.'s
resilience bounds frame precision as a function of f against the number of
reference paths).

``resolve_scenario`` accepts either a registered name or a path to a JSON
spec file, so the CLI's ``--scenario`` flag takes both.
"""

from __future__ import annotations

import os
from typing import Dict, List, Union

from repro.scenarios.spec import ScenarioSpec, load_scenario

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a spec under its name; re-registration requires ``replace``."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Fetch a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Sorted registered names."""
    return sorted(_REGISTRY)


def list_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def resolve_scenario(ref: Union[str, ScenarioSpec]) -> ScenarioSpec:
    """A spec from a spec, a registered name, or a JSON file path."""
    if isinstance(ref, ScenarioSpec):
        return ref
    if ref in _REGISTRY:
        return _REGISTRY[ref]
    if ref.endswith(".json") or os.path.sep in ref or os.path.exists(ref):
        return load_scenario(ref)
    raise KeyError(
        f"unknown scenario {ref!r} (not a registered name, and no such "
        f"file); known: {scenario_names()}"
    )


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="paper-mesh4",
    topology="mesh",
    n_devices=4,
    f=1,
    description="the paper's §III-A1 testbed: 4-device full mesh, M=4, f=1",
))

register_scenario(ScenarioSpec(
    name="ring",
    topology="ring",
    n_devices=4,
    f=1,
    description="4-device ring: per-domain trees split the cycle both ways",
))

register_scenario(ScenarioSpec(
    name="line",
    topology="line",
    n_devices=4,
    f=1,
    description="4-device daisy chain: maximal hop spread per device count",
))

register_scenario(ScenarioSpec(
    name="star",
    topology="star",
    n_devices=5,
    hub_device=1,
    f=1,
    description="5-device star: every path crosses the hub switch (sw1)",
))

register_scenario(ScenarioSpec(
    name="mesh8",
    topology="mesh",
    n_devices=8,
    f=2,
    description="scaled full mesh: N=M=8 domains, f=2 fault hypothesis",
))

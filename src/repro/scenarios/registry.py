"""Named scenario registry.

Built-ins cover the paper's exact setup (``paper-mesh4``) plus the shapes
the related work motivates: G-SINC's topology diversity (ring, line, star)
and a scaled ``mesh8`` exercising a larger N/M with f = 2 (Jiang et al.'s
resilience bounds frame precision as a function of f against the number of
reference paths).

``resolve_scenario`` accepts either a registered name or a path to a JSON
spec file, so the CLI's ``--scenario`` flag takes both.
"""

from __future__ import annotations

import os
from typing import Dict, List, Union

from repro.scenarios.spec import ScenarioSpec, load_scenario

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a spec under its name; re-registration requires ``replace``."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Fetch a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Sorted registered names."""
    return sorted(_REGISTRY)


def list_scenarios() -> List[ScenarioSpec]:
    """All registered specs, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


def resolve_scenario(ref: Union[str, ScenarioSpec]) -> ScenarioSpec:
    """A spec from a spec, a registered name, or a JSON file path."""
    if isinstance(ref, ScenarioSpec):
        return ref
    if ref in _REGISTRY:
        return _REGISTRY[ref]
    if ref.endswith(".json") or os.path.sep in ref or os.path.exists(ref):
        return load_scenario(ref)
    raise KeyError(
        f"unknown scenario {ref!r} (not a registered name, and no such "
        f"file); known: {scenario_names()}"
    )


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="paper-mesh4",
    topology="mesh",
    n_devices=4,
    f=1,
    description="the paper's §III-A1 testbed: 4-device full mesh, M=4, f=1",
))

register_scenario(ScenarioSpec(
    name="ring",
    topology="ring",
    n_devices=4,
    f=1,
    description="4-device ring: per-domain trees split the cycle both ways",
))

register_scenario(ScenarioSpec(
    name="line",
    topology="line",
    n_devices=4,
    f=1,
    description="4-device daisy chain: maximal hop spread per device count",
))

register_scenario(ScenarioSpec(
    name="star",
    topology="star",
    n_devices=5,
    hub_device=1,
    f=1,
    description="5-device star: every path crosses the hub switch (sw1)",
))

register_scenario(ScenarioSpec(
    name="mesh8",
    topology="mesh",
    n_devices=8,
    f=2,
    description="scaled full mesh: N=M=8 domains, f=2 fault hypothesis",
))

# ----------------------------------------------------------------------
# Generated fleet-scale scenarios (ROADMAP item 1). M is capped well below
# N — planet-scale deployments don't run a gPTP domain per device — while
# keeping the Byzantine floor M >= 3f+1 with headroom.
# ----------------------------------------------------------------------
register_scenario(ScenarioSpec(
    name="torus-64",
    topology="torus",
    n_devices=64,
    topology_params={"rows": 8},
    n_domains=7,
    f=2,
    description="8x8 wraparound grid (WALDEN-style), N=64, M=7, f=2",
))

register_scenario(ScenarioSpec(
    name="fat-tree-64",
    topology="fat_tree",
    n_devices=64,
    topology_params={"arity": 4},
    n_domains=7,
    f=2,
    description="4-ary fat tree with sibling uplinks, N=64, M=7, f=2",
))

register_scenario(ScenarioSpec(
    name="geo-64",
    topology="random_geometric",
    n_devices=64,
    n_domains=7,
    f=2,
    description="seeded random geometric mesh on the unit square, N=64, M=7, f=2",
))

register_scenario(ScenarioSpec(
    name="torus-256",
    topology="torus",
    n_devices=256,
    topology_params={"rows": 16},
    n_domains=10,
    f=3,
    kernel_policy="unikernel",
    description="16x16 wraparound grid, N=256, M=10, f=3",
))

register_scenario(ScenarioSpec(
    name="fat-tree-256",
    topology="fat_tree",
    n_devices=256,
    topology_params={"arity": 4},
    n_domains=10,
    f=3,
    kernel_policy="unikernel",
    description="4-ary fat tree, N=256, M=10, f=3",
))

register_scenario(ScenarioSpec(
    name="rings-1024",
    topology="ring_of_rings",
    n_devices=1024,
    topology_params={"groups": 32},
    n_domains=13,
    f=4,
    kernel_policy="unikernel",
    description="32 rings of 32 with a gateway ring, N=1024, M=13, f=4",
))

"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, fingerprintable description of one
experimental setup: topology shape and size N, number of gPTP domains M,
fault hypothesis f, GM placement, link/NIC model parameters, the kernel
diversification policy, and an optional transient-fault plan. Experiments
consume specs instead of hand-built testbeds, so "new workload" means "write
a spec" — and because the spec is a frozen dataclass, its repr (and its
canonical-JSON SHA-256 :meth:`ScenarioSpec.fingerprint`) keys the results
cache and the run manifest, making cached results scenario-addressed.

Specs round-trip through JSON (:meth:`to_dict`/:meth:`from_dict`,
:func:`load_scenario`/:func:`dump_scenario`), so scenarios can live in
files next to the experiments they parameterize.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from repro.chaos.plan import ChaosPlan, merge_plans
from repro.network.topology import (
    TOPOLOGY_BUILDERS,
    fat_tree_trunk_indices,
    normalize_topology_kind,
    ring_of_rings_trunk_indices,
    torus_trunk_indices,
)
from repro.security.campaigns import AttackCampaign
from repro.sim.timebase import MILLISECONDS

#: Bump when the JSON document shape changes; old files fail loudly.
SCENARIO_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class LinkSpec:
    """Link/NIC model parameter ranges (ns), shared by every shape.

    Defaults match the paper's calibration: trunks (external cabling) are
    longer than access links (internal wiring), and switches add a
    store-and-forward residence delay.
    """

    trunk_base_range: Tuple[int, int] = (1_600, 2_000)
    trunk_jitter_range: Tuple[int, int] = (200, 400)
    access_base_range: Tuple[int, int] = (1_300, 1_700)
    access_jitter_range: Tuple[int, int] = (150, 300)
    residence_base: int = 700
    residence_jitter: int = 300

    def __post_init__(self) -> None:
        for name in ("trunk_base_range", "trunk_jitter_range",
                     "access_base_range", "access_jitter_range"):
            lo, hi = getattr(self, name)
            if not 0 <= lo <= hi:
                raise ValueError(f"{name} must satisfy 0 <= lo <= hi, got {lo, hi}")
        if self.residence_base < 0 or self.residence_jitter < 0:
            raise ValueError("residence parameters must be nonnegative")


@dataclass(frozen=True)
class FaultPlanSpec:
    """Optional transient software-fault pressure (per-event probabilities).

    ``None`` on a scenario means "use the paper's calibrated pressure" in
    fault-injection experiments and no transients elsewhere — matching the
    historical per-experiment defaults.
    """

    tx_timestamp_fail_prob: float = 0.0
    deadline_miss_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tx_timestamp_fail_prob", "deadline_miss_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, named experimental setup.

    Attributes
    ----------
    name:
        Registry/display name.
    topology:
        Shape key (``mesh``/``ring``/``line``/``star``).
    n_devices:
        N — edge devices, each with an integrated TSN switch.
    n_domains:
        M — gPTP domains (``None`` → one per device).
    f:
        Fault hypothesis of the FTA; needs M ≥ 3f + 1 (the Byzantine
        resilience condition of ``u_factor``).
    vms_per_node:
        Clock synchronization VMs per device (2 = fail-silent pairs).
    gm_placement:
        ``spread`` (domain x's GM on device x) or ``reversed``.
    hub_device:
        Star center (ignored for other shapes).
    measurement_device:
        Index m of the device hosting the measurement VM ``c{m}_2``.
    sync_interval:
        S in ns.
    kernel_policy:
        ``diverse`` / ``identical`` / ``unikernel`` diversification.
    links:
        Link/NIC/switch timing parameter ranges.
    fault_plan:
        Optional transient-fault pressure (see :class:`FaultPlanSpec`).
    chaos_plan:
        Optional declarative chaos schedule (impairments, link flaps,
        steered attacks); see :class:`repro.chaos.plan.ChaosPlan`. Omitted
        from the serialized form when ``None`` so pre-chaos fingerprints
        are unchanged.
    attack_campaign:
        Optional adversary campaign
        (:class:`repro.security.campaigns.AttackCampaign`), compiled into
        the materialized chaos plan — merged with ``chaos_plan`` when both
        are set. Omitted from the serialized form when ``None`` so
        pre-campaign fingerprints are unchanged.
    description:
        One line for ``repro-sim scenarios list``.
    """

    name: str
    topology: str = "mesh"
    n_devices: int = 4
    n_domains: Optional[int] = None
    f: int = 1
    vms_per_node: int = 2
    gm_placement: str = "spread"
    hub_device: int = 1
    measurement_device: int = 2
    sync_interval: int = 125 * MILLISECONDS
    kernel_policy: str = "diverse"
    links: LinkSpec = LinkSpec()
    fault_plan: Optional[FaultPlanSpec] = None
    chaos_plan: Optional[ChaosPlan] = None
    attack_campaign: Optional[AttackCampaign] = None
    topology_params: Tuple[Tuple[str, Any], ...] = ()
    description: str = ""

    #: Builder kwargs each shape accepts via ``topology_params``.
    _SHAPE_PARAMS = {
        "fat_tree": ("arity",),
        "torus": ("rows",),
        "ring_of_rings": ("groups",),
        "random_geometric": ("radius",),
    }

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.topology not in TOPOLOGY_BUILDERS:
            # Accept aliases/case variants but store the canonical key so
            # fingerprints don't depend on spelling.
            object.__setattr__(
                self, "topology", normalize_topology_kind(self.topology)
            )
        if isinstance(self.topology_params, dict):
            object.__setattr__(
                self,
                "topology_params",
                tuple(sorted(self.topology_params.items())),
            )
        else:
            object.__setattr__(
                self,
                "topology_params",
                tuple(sorted((str(k), v) for k, v in self.topology_params)),
            )
        allowed = self._SHAPE_PARAMS.get(self.topology, ())
        unknown = [k for k, _ in self.topology_params if k not in allowed]
        if unknown:
            raise ValueError(
                f"topology {self.topology!r} does not accept params "
                f"{sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.topology == "ring" and self.n_devices < 3:
            raise ValueError("a ring needs at least 3 devices")
        if self.topology in ("line", "star") and self.n_devices < 2:
            raise ValueError(f"a {self.topology} needs at least 2 devices")
        if self.topology == "random_geometric":
            if self.n_devices < 2:
                raise ValueError(
                    "a random geometric graph needs at least 2 devices"
                )
            radius = self.params.get("radius")
            if radius is not None and not (
                isinstance(radius, (int, float)) and radius > 0
            ):
                raise ValueError(
                    f"random_geometric radius must be > 0, got {radius!r}"
                )
        elif self.topology in self._SHAPE_PARAMS:
            # Delegate shape/parameter validation to the shared construction
            # plans — exactly what the builder will do.
            self._shape_trunk_indices()
        m = self.effective_domains
        if not 1 <= m <= self.n_devices:
            raise ValueError(
                f"n_domains={m} must be in [1, {self.n_devices}]"
            )
        if self.f < 0:
            raise ValueError("f must be nonnegative")
        if self.f > 0 and m < 3 * self.f + 1:
            # Matches repro.core.convergence.u_factor's Byzantine
            # resilience condition.
            raise ValueError(
                f"FTA with f={self.f} needs M >= {3 * self.f + 1} domains, "
                f"got M={m}"
            )
        if not 1 <= self.measurement_device <= self.n_devices:
            raise ValueError(
                f"measurement_device={self.measurement_device} outside "
                f"1..{self.n_devices}"
            )
        if not 1 <= self.hub_device <= self.n_devices:
            raise ValueError(
                f"hub_device={self.hub_device} outside 1..{self.n_devices}"
            )
        if self.vms_per_node < 1:
            raise ValueError("vms_per_node must be >= 1")
        if self.sync_interval <= 0:
            raise ValueError("sync_interval must be positive")
        if self.gm_placement not in ("spread", "reversed"):
            raise ValueError(
                f"unknown gm_placement {self.gm_placement!r}"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def effective_domains(self) -> int:
        """M with the one-per-device default resolved."""
        return self.n_domains if self.n_domains is not None else self.n_devices

    @property
    def params(self) -> Dict[str, Any]:
        """``topology_params`` as a plain dict (builder kwargs)."""
        return dict(self.topology_params)

    def _shape_trunk_indices(self) -> List[Tuple[int, int]]:
        """0-based trunk index pairs of a generated shape (validates params)."""
        p = self.params
        if self.topology == "fat_tree":
            return fat_tree_trunk_indices(self.n_devices, p.get("arity", 2))
        if self.topology == "torus":
            return torus_trunk_indices(self.n_devices, p.get("rows"))
        if self.topology == "ring_of_rings":
            return ring_of_rings_trunk_indices(self.n_devices, p.get("groups"))
        raise ValueError(f"no static construction plan for {self.topology!r}")

    def trunk_pairs(self) -> List[Tuple[str, str]]:
        """The static trunk list of this shape, without building anything.

        Mirrors the builders in :mod:`repro.network.topology`; used to pick
        default trunks for link-failure runs and by the property tests.
        Raises for ``random_geometric``, whose edge set is seed-dependent —
        build the topology to enumerate its trunks.
        """
        names = [f"sw{i + 1}" for i in range(self.n_devices)]
        if self.topology == "mesh":
            return [
                (a, b) for i, a in enumerate(names) for b in names[i + 1:]
            ]
        if self.topology == "ring":
            return [
                (a, names[(i + 1) % len(names)]) for i, a in enumerate(names)
            ]
        if self.topology == "line":
            return list(zip(names, names[1:]))
        if self.topology == "star":
            hub = names[self.hub_device - 1]
            return [(hub, name) for name in names if name != hub]
        if self.topology in ("fat_tree", "torus", "ring_of_rings"):
            return [
                (names[i], names[j]) for i, j in self._shape_trunk_indices()
            ]
        if self.topology == "random_geometric":
            raise ValueError(
                "random_geometric trunks are seed-dependent; build the "
                "topology to enumerate them"
            )
        raise ValueError(f"unknown topology {self.topology!r}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict, schema-versioned."""
        doc = dataclasses.asdict(self)
        doc["links"] = dataclasses.asdict(self.links)
        doc["fault_plan"] = (
            dataclasses.asdict(self.fault_plan)
            if self.fault_plan is not None else None
        )
        # Omitted entirely when unset: scenarios that predate the chaos
        # layer keep their historical fingerprints.
        doc.pop("chaos_plan", None)
        if self.chaos_plan is not None:
            doc["chaos_plan"] = self.chaos_plan.to_dict()
        # Same deal for the adversary campaign (pre-campaign fingerprints).
        doc.pop("attack_campaign", None)
        if self.attack_campaign is not None:
            doc["attack_campaign"] = self.attack_campaign.to_dict()
        # And for topology parameters (pre-generated-shape fingerprints);
        # serialized as a plain mapping when present.
        doc.pop("topology_params", None)
        if self.topology_params:
            doc["topology_params"] = dict(self.topology_params)
        doc["schema_version"] = SCENARIO_SCHEMA_VERSION
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        doc = dict(doc)
        version = doc.pop("schema_version", SCENARIO_SCHEMA_VERSION)
        if version != SCENARIO_SCHEMA_VERSION:
            raise ValueError(
                f"scenario schema v{version} not supported "
                f"(this build reads v{SCENARIO_SCHEMA_VERSION})"
            )
        # ``scenarios show --json`` annotates the document with derived
        # keys; tolerate them so a shown document can be edited and passed
        # straight back via ``--scenario path.json``.
        for derived in ("fingerprint", "trunks"):
            doc.pop(derived, None)
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
        links = doc.get("links")
        if isinstance(links, dict):
            links = {
                k: tuple(v) if isinstance(v, list) else v
                for k, v in links.items()
            }
            doc["links"] = LinkSpec(**links)
        plan = doc.get("fault_plan")
        if isinstance(plan, dict):
            doc["fault_plan"] = FaultPlanSpec(**plan)
        chaos = doc.get("chaos_plan")
        if isinstance(chaos, dict):
            doc["chaos_plan"] = ChaosPlan.from_dict(chaos)
        campaign = doc.get("attack_campaign")
        if isinstance(campaign, dict):
            doc["attack_campaign"] = AttackCampaign.from_dict(campaign)
        return cls(**doc)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON form — the scenario's identity.

        Stable across processes and Python versions (sorted keys, no
        whitespace); joins :class:`repro.metrics.RunManifest` and the
        results-cache key so runs are scenario-addressed.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def testbed_config(self, seed: int = 1, **overrides: Any):
        """Materialize a :class:`repro.experiments.testbed.TestbedConfig`.

        ``overrides`` replace testbed fields after the mapping (e.g.
        ``kernel_policy=...`` from a CLI flag, ``transients=...`` from an
        experiment's calibration). For ``paper-mesh4`` the result is
        field-identical to ``TestbedConfig(seed=seed)``, which the golden
        tests pin byte-for-byte.
        """
        from repro.core.aggregator import AggregatorConfig
        from repro.experiments.testbed import TestbedConfig
        from repro.faults.transient import TransientFaultPlan
        from repro.network.topology import MeshModel
        from repro.network.switch import SwitchModel

        chaos = self.chaos_plan
        if self.attack_campaign is not None:
            compiled = self.attack_campaign.compile()
            chaos = compiled if chaos is None else merge_plans(chaos, compiled)
        transients = None
        if self.fault_plan is not None:
            # Expected-rate fields are informational; per-event
            # probabilities are what the NIC model consumes.
            transients = TransientFaultPlan(
                tx_timestamp_fail_prob=self.fault_plan.tx_timestamp_fail_prob,
                deadline_miss_prob=self.fault_plan.deadline_miss_prob,
                expected_tx_timeouts_per_hour=0.0,
                expected_deadline_misses_per_hour=0.0,
            )
        config = TestbedConfig(
            seed=seed,
            n_devices=self.n_devices,
            topology=self.topology,
            topology_params=self.topology_params,
            hub_device=self.hub_device,
            gm_placement=self.gm_placement,
            n_domains=self.n_domains,
            vms_per_node=self.vms_per_node,
            sync_interval=self.sync_interval,
            kernel_policy=self.kernel_policy,
            measurement_device=self.measurement_device,
            transients=transients,
            chaos=chaos,
            aggregator=AggregatorConfig(
                f=self.f, sync_interval=self.sync_interval
            ),
            mesh=MeshModel(
                n_devices=self.n_devices,
                trunk_base_range=self.links.trunk_base_range,
                trunk_jitter_range=self.links.trunk_jitter_range,
                access_base_range=self.links.access_base_range,
                access_jitter_range=self.links.access_jitter_range,
                switch=SwitchModel(
                    residence_base=self.links.residence_base,
                    residence_jitter=self.links.residence_jitter,
                ),
            ),
        )
        if overrides:
            config = dataclasses.replace(config, **overrides)
            # An aggregator override must keep the spec's fault hypothesis:
            # the monitor grades the valid floor with the scenario's f, so
            # a divergent aggregator f would run one hypothesis and grade
            # another. Caught here, at config build time.
            if config.aggregator.f != self.f:
                raise ValueError(
                    f"fault hypothesis mismatch: scenario {self.name!r} "
                    f"declares f={self.f} but the aggregator override "
                    f"carries f={config.aggregator.f}"
                )
        return config


# ----------------------------------------------------------------------
# File round-trip
# ----------------------------------------------------------------------
def load_scenario(path: str) -> ScenarioSpec:
    """Read a :class:`ScenarioSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return ScenarioSpec.from_dict(doc)


def dump_scenario(spec: ScenarioSpec, path: str) -> None:
    """Write a spec as indented JSON (round-trips via :func:`load_scenario`)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

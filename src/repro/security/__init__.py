"""Security model: kernel vulnerabilities, the attacker, OS diversification.

The cyber-resilience experiment (§III-B) assumes an attacker holding
restricted user credentials on two virtual grandmasters who escalates to
root via a kernel exploit (CVE-2018-18955 against Linux v4.19.1) and then
replaces the benign ptp4l instances with malicious ones shifting
``preciseOriginTimestamp`` by −24 µs.

We model the part of that chain the clock synchronization architecture can
actually observe: an exploit attempt **succeeds iff the target VM's kernel
version is affected by the CVE** (:mod:`repro.security.kernels`), in which
case the VM is compromised and its GM instance turns malicious
(:mod:`repro.security.attacker`). Whether the fleet shares exploitable
stacks is decided by the diversification policy
(:mod:`repro.security.diversity`) — the paper's Fig. 3a vs Fig. 3b
difference is exactly ``identical`` vs ``diverse``.

Beyond the paper's static attacker, :mod:`repro.security.attacks` models
steered and on-path adversaries (ramps, in-window collusion, adaptive
retargeting, Sync suppression, asymmetric delay, wormhole replay), and
:mod:`repro.security.campaigns` schedules them declaratively as
serializable multi-stage campaigns graded by the invariant monitor.
"""

from repro.security.attacker import Attacker, AttackerConfig, ExploitAttempt
from repro.security.attacks import (
    AdaptiveAttack,
    CollusionAttack,
    DelayAttack,
    OscillatingAttack,
    RampAttack,
    SyncSuppressionAttack,
    WormholeAttack,
)
from repro.security.campaigns import (
    CAMPAIGN_SCHEMA_VERSION,
    AttackCampaign,
    AttackStage,
    colluder_campaign,
    default_gm_names,
    dump_campaign,
    load_campaign,
)
from repro.security.diversity import assign_kernels, shared_vulnerabilities
from repro.security.kernels import (
    CVE_2018_18955,
    VULNERABILITY_DB,
    Vulnerability,
    is_vulnerable,
    parse_kernel_version,
)

__all__ = [
    "Attacker",
    "AttackerConfig",
    "ExploitAttempt",
    "RampAttack",
    "OscillatingAttack",
    "CollusionAttack",
    "AdaptiveAttack",
    "SyncSuppressionAttack",
    "DelayAttack",
    "WormholeAttack",
    "AttackCampaign",
    "AttackStage",
    "CAMPAIGN_SCHEMA_VERSION",
    "colluder_campaign",
    "default_gm_names",
    "load_campaign",
    "dump_campaign",
    "assign_kernels",
    "shared_vulnerabilities",
    "Vulnerability",
    "VULNERABILITY_DB",
    "CVE_2018_18955",
    "is_vulnerable",
    "parse_kernel_version",
]

"""The attacker of §III-B.

Holds user credentials on a set of virtual grandmasters, runs the root
exploit against each at a scheduled time, and on success replaces the benign
ptp4l with a malicious instance distributing shifted
``preciseOriginTimestamp`` values. Success is decided purely by whether the
target VM's kernel is affected by the chosen CVE — the diversification
experiment's whole point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hypervisor.clock_sync_vm import ClockSyncVm
from repro.security.kernels import is_vulnerable
from repro.sim.kernel import Simulator
from repro.sim.timebase import MICROSECONDS
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class AttackerConfig:
    """The attack plan.

    Attributes
    ----------
    cve:
        Exploit used for privilege escalation.
    origin_shift:
        preciseOriginTimestamp displacement applied by the malicious ptp4l,
        ns (−24 µs in the paper).
    exploit_times:
        VM name → simulated time of the exploit attempt. The paper attacks
        c4_1 at 00:21:42 h and c1_1 at 00:31:52 h.
    """

    cve: str = "CVE-2018-18955"
    origin_shift: int = -24 * MICROSECONDS
    exploit_times: Dict[str, int] = field(default_factory=dict)


@dataclass
class ExploitAttempt:
    """Outcome record of one exploit attempt."""

    time: int
    target: str
    kernel: str
    succeeded: bool


class Attacker:
    """Schedules and executes the exploit attempts."""

    def __init__(
        self,
        sim: Simulator,
        targets: Dict[str, ClockSyncVm],
        config: AttackerConfig,
        trace: Optional[TraceLog] = None,
    ) -> None:
        for name in config.exploit_times:
            if name not in targets:
                raise KeyError(f"attack plan names unknown VM {name!r}")
        self.sim = sim
        self.targets = targets
        self.config = config
        self.trace = trace
        self.attempts: List[ExploitAttempt] = []

    def arm(self) -> None:
        """Schedule every attempt of the plan."""
        for vm_name, at in sorted(self.config.exploit_times.items(), key=lambda kv: kv[1]):
            self.sim.schedule_at(at, self._attempt, vm_name)

    def _attempt(self, vm_name: str) -> None:
        vm = self.targets[vm_name]
        kernel = vm.config.kernel_version
        succeeded = vm.running and is_vulnerable(kernel, self.config.cve)
        self.attempts.append(
            ExploitAttempt(
                time=self.sim.now, target=vm_name, kernel=kernel, succeeded=succeeded
            )
        )
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "attack.exploit_success" if succeeded else "attack.exploit_failed",
                vm_name,
                cve=self.config.cve,
                kernel=kernel,
            )
        if succeeded:
            vm.compromise(self.config.origin_shift)

    @property
    def compromised(self) -> List[str]:
        """Names of successfully compromised VMs so far."""
        return [a.target for a in self.attempts if a.succeeded]

"""Attack variants beyond the paper's static −24 µs shift.

The §III-B malicious ptp4l applies a constant preciseOriginTimestamp
offset — blunt, and (with one compromised GM) cleanly masked. Smarter
adversaries exist and a security evaluation should include them:

* :class:`RampAttack` — the classic *slow time-walk* attempt: the shift
  grows by a small increment per sync interval, staying inside the validity
  threshold at every step. A single ramping GM is bounded by the FTA (its
  reading is trimmed whenever it strays to an extreme). A *colluding pair*
  does **not** achieve a stealthy walk in this architecture: because the
  grandmasters themselves are disciplined toward the mutual FTA, the pull
  compounds — the ensemble accelerates until the servos saturate and the
  measured precision Π* visibly violates the bound. Pull attacks are thus
  converted into detectable divergence (the same signature as Fig. 3a), an
  emergent property of the paper's GM-side aggregation that the
  client-only design (Kyriakakis) lacks.
* :class:`OscillatingAttack` — alternates the shift sign to stress the
  servo; mostly useful to show the PI loop's low-pass behaviour absorbs it.

Both drive the same hook the paper's attack uses
(:attr:`Ptp4lInstance.malicious_origin_shift`), updated per interval by a
simulated process — exactly what a compromised ptp4l binary could do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hypervisor.clock_sync_vm import ClockSyncVm
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MILLISECONDS
from repro.sim.trace import TraceLog


class _SteeredAttack:
    """Base: periodically recompute the origin shift on compromised VMs."""

    def __init__(
        self,
        sim: Simulator,
        victims: List[ClockSyncVm],
        update_interval: int = 125 * MILLISECONDS,
        trace: Optional[TraceLog] = None,
    ) -> None:
        if not victims:
            raise ValueError("attack needs at least one compromised VM")
        self.sim = sim
        self.victims = list(victims)
        self.trace = trace
        self.ticks = 0
        self._task = PeriodicTask(
            sim, period=update_interval, action=self._tick, name=type(self).__name__
        )

    def launch(self) -> None:
        """Compromise the victims and start steering the shift."""
        for vm in self.victims:
            vm.compromise(origin_shift=0)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "attack.steered_launch",
                ",".join(vm.name for vm in self.victims),
                kind=type(self).__name__,
            )
        self._task.start()

    def stop(self) -> None:
        """Stop steering (shift freezes at its last value)."""
        self._task.stop()

    def _tick(self) -> None:
        self.ticks += 1
        shift = self.current_shift()
        for vm in self.victims:
            if vm.running and vm.config.gm_domain is not None:
                vm.stack.instances[vm.config.gm_domain].malicious_origin_shift = shift

    def current_shift(self) -> int:
        """Shift to apply this interval (subclass hook)."""
        raise NotImplementedError


class RampAttack(_SteeredAttack):
    """Slow time-walk: shift grows by ``step_per_update`` each interval."""

    def __init__(self, *args, step_per_update: int = -100, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.step_per_update = step_per_update

    def current_shift(self) -> int:
        return self.ticks * self.step_per_update


class OscillatingAttack(_SteeredAttack):
    """Alternating shift of fixed amplitude (servo stress)."""

    def __init__(self, *args, amplitude: int = 10_000, period_updates: int = 16,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.amplitude = amplitude
        self.period_updates = period_updates

    def current_shift(self) -> int:
        half = self.period_updates // 2
        positive = (self.ticks // half) % 2 == 0
        return self.amplitude if positive else -self.amplitude

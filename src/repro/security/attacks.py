"""Attack variants beyond the paper's static −24 µs shift.

The §III-B malicious ptp4l applies a constant preciseOriginTimestamp
offset — blunt, and (with one compromised GM) cleanly masked. Smarter
adversaries exist and a security evaluation should include them:

* :class:`RampAttack` — the classic *slow time-walk* attempt: the shift
  grows by a small increment per sync interval, staying inside the validity
  threshold at every step. A single ramping GM is bounded by the FTA (its
  reading is trimmed whenever it strays to an extreme). A *colluding pair*
  does **not** achieve a stealthy walk in this architecture: because the
  grandmasters themselves are disciplined toward the mutual FTA, the pull
  compounds — the ensemble accelerates until the servos saturate and the
  measured precision Π* visibly violates the bound. Pull attacks are thus
  converted into detectable divergence (the same signature as Fig. 3a), an
  emergent property of the paper's GM-side aggregation that the
  client-only design (Kyriakakis) lacks.
* :class:`OscillatingAttack` — alternates the shift sign to stress the
  servo; mostly useful to show the PI loop's low-pass behaviour absorbs it.
* :class:`CollusionAttack` — the worst-case adversary of the
  Resilience-Bounds line of work: ``k`` grandmasters apply the *same*
  constant shift chosen just inside the validity window, so the colluders
  keep vouching for each other and are never invalidated. For ``k <= f``
  the FTA trims the whole bloc; for ``k > f`` one colluder always survives
  the trim, the aggregate is biased every gate, the PI integrators have no
  equilibrium and ramp until they saturate — the breaking point the
  ``attackbudget`` sweep measures.
* :class:`AdaptiveAttack` — observes, through a foothold VM, which domains
  the ensemble currently deems valid, and retargets each epoch: victims
  whose domain got invalidated back off to zero shift (to regain trust)
  while the rest keep pushing.

The above drive the hook the paper's attack uses
(:attr:`Ptp4lInstance.malicious_origin_shift`), updated per interval by a
simulated process — exactly what a compromised ptp4l binary could do.

On-path adversaries (a compromised switch or bump-in-the-wire) are modelled
as *link taps* that slot into the link's impairment hook, wrapping whatever
impairment is already attached:

* :class:`SyncSuppressionAttack` — selectively drops Sync/Follow_Up frames
  (optionally per domain) while letting everything else through: the
  starved domain goes stale and is excluded, consuming resilience margin
  without ever forging a timestamp.
* :class:`DelayAttack` — adds a fixed extra latency to Sync/Follow_Up only,
  leaving the pdelay exchange untouched: the asymmetry defeats the delay
  mechanism and shifts the victim domain's readings by the injected amount.
* :class:`WormholeAttack` — copies gPTP frames from one link and replays
  them onto another after a tunnel delay (an out-of-band channel), planting
  stale timestamps on a far network segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Dict, List, Optional, Sequence

from repro.gptp.messages import FollowUp, Sync
from repro.hypervisor.clock_sync_vm import ClockSyncVm
from repro.network.link import Link
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask
from repro.sim.timebase import MILLISECONDS
from repro.sim.trace import TraceLog


class _SteeredAttack:
    """Base: periodically recompute the origin shift on compromised VMs."""

    def __init__(
        self,
        sim: Simulator,
        victims: List[ClockSyncVm],
        update_interval: int = 125 * MILLISECONDS,
        trace: Optional[TraceLog] = None,
        label: Optional[str] = None,
    ) -> None:
        if not victims:
            raise ValueError("attack needs at least one compromised VM")
        self.sim = sim
        self.victims = list(victims)
        self.trace = trace
        self.label = label
        self.ticks = 0
        self._task = PeriodicTask(
            sim, period=update_interval, action=self._tick, name=type(self).__name__
        )

    def launch(self) -> None:
        """Compromise the victims and start steering the shift."""
        for vm in self.victims:
            vm.compromise(origin_shift=0)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "attack.steered_launch",
                ",".join(vm.name for vm in self.victims),
                kind=type(self).__name__,
            )
        self._task.start()

    def stop(self) -> None:
        """Stop steering (shift freezes at its last value)."""
        self._task.stop()

    def _tick(self) -> None:
        self.ticks += 1
        shift = self.current_shift()
        for vm in self.victims:
            if vm.running and vm.config.gm_domain is not None:
                vm.stack.instances[vm.config.gm_domain].malicious_origin_shift = shift

    def current_shift(self) -> int:
        """Shift to apply this interval (subclass hook)."""
        raise NotImplementedError


class RampAttack(_SteeredAttack):
    """Slow time-walk: shift grows by ``step_per_update`` each interval."""

    def __init__(self, *args, step_per_update: int = -100, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.step_per_update = step_per_update

    def current_shift(self) -> int:
        return self.ticks * self.step_per_update


class OscillatingAttack(_SteeredAttack):
    """Alternating shift of fixed amplitude (servo stress)."""

    def __init__(self, *args, amplitude: int = 10_000, period_updates: int = 16,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.amplitude = amplitude
        self.period_updates = period_updates

    def current_shift(self) -> int:
        half = self.period_updates // 2
        positive = (self.ticks // half) % 2 == 0
        return self.amplitude if positive else -self.amplitude


class CollusionAttack(_SteeredAttack):
    """Constant in-window shift on every colluder (worst-case adversary).

    ``shift`` should satisfy ``abs(shift) < ValidityConfig().threshold`` so
    the colluding bloc keeps vouching for itself; the default sits at 80%
    of the 5 µs window.
    """

    def __init__(self, *args, shift: int = -4_000, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.shift = shift

    def current_shift(self) -> int:
        return self.shift


class AdaptiveAttack(_SteeredAttack):
    """Colluders that watch the ensemble and retarget each epoch.

    ``observer`` is any clock-sync VM the adversary has a foothold on; its
    aggregator's per-gate validity flags are the attacker's view of which
    domains the ensemble currently trusts. A victim whose domain has been
    invalidated backs off to zero shift (to look honest again and regain
    its vouchers) while the still-trusted victims keep pushing.
    """

    def __init__(self, *args, observer: ClockSyncVm, shift: int = -4_000,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.observer = observer
        self.shift = shift
        self.retargets = 0
        self._applied: Dict[str, int] = {}

    def _tick(self) -> None:
        self.ticks += 1
        flags = self.observer.aggregator.last_valid_flags
        for vm in self.victims:
            domain = vm.config.gm_domain
            if not (vm.running and domain is not None):
                continue
            shift = self.shift if flags.get(domain, True) else 0
            if self._applied.get(vm.name, self.shift) != shift:
                self.retargets += 1
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now, "attack.retarget", vm.name,
                        domain=domain, shift=shift,
                    )
            self._applied[vm.name] = shift
            vm.stack.instances[domain].malicious_origin_shift = shift

    def current_shift(self) -> int:  # pragma: no cover - _tick overridden
        return self.shift


# ----------------------------------------------------------------------
# On-path (link tap) attacks
# ----------------------------------------------------------------------
class _LinkTapAttack:
    """Base: an on-path adversary occupying the links' impairment slot.

    Implements the ``LinkImpairment`` carry protocol directly. Whatever
    impairment was attached when the tap launches keeps operating *behind*
    the tap (the tap delegates forwarded packets to it), and is restored
    when the tap stops — so a chaos plan's loss model and an attack can
    coexist on the same link.
    """

    def __init__(
        self,
        sim: Simulator,
        links: Sequence[Link],
        domains: Sequence[int] = (),
        trace: Optional[TraceLog] = None,
        label: Optional[str] = None,
    ) -> None:
        if not links:
            raise ValueError("attack needs at least one tapped link")
        self.sim = sim
        self.links = list(links)
        self.domains = tuple(domains)
        self.trace = trace
        self.label = label
        self._inner: Dict[int, object] = {}
        self._launched = False

    def launch(self) -> None:
        """Insert the tap in front of each link's current impairment."""
        if self._launched:
            raise RuntimeError("attack already launched")
        self._launched = True
        for link in self.links:
            self._inner[id(link)] = link.detach_impairment()
            link.attach_impairment(self)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "attack.tap_launch",
                ",".join(link.name for link in self.links),
                kind=type(self).__name__,
            )

    def stop(self) -> None:
        """Remove the tap, restoring the wrapped impairments."""
        for link in self.links:
            if link.impairment is self:
                link.detach_impairment()
                inner = self._inner.get(id(link))
                if inner is not None:
                    link.attach_impairment(inner)
        self._inner.clear()

    # -- LinkImpairment protocol --------------------------------------
    def carry(self, link: Link, from_port, packet, delay: int) -> None:
        raise NotImplementedError

    def _forward(self, link: Link, from_port, packet, delay: int) -> None:
        """Pass a packet on unchanged, through the wrapped impairment."""
        inner = self._inner.get(id(link))
        if inner is not None:
            inner.carry(link, from_port, packet, delay)
        else:
            link.deliver_after(delay, packet, from_port is link.a)

    def _targets(self, packet) -> bool:
        """Whether this frame is a Sync/Follow_Up of a targeted domain."""
        payload = packet.payload
        if not isinstance(payload, (Sync, FollowUp)):
            return False
        return not self.domains or payload.domain in self.domains


class SyncSuppressionAttack(_LinkTapAttack):
    """Selectively drop Sync/Follow_Up frames of the targeted domains."""

    def __init__(
        self,
        sim: Simulator,
        links: Sequence[Link],
        rng: Random,
        drop_prob: float = 1.0,
        domains: Sequence[int] = (),
        trace: Optional[TraceLog] = None,
        label: Optional[str] = None,
    ) -> None:
        if not 0.0 < drop_prob <= 1.0:
            raise ValueError(f"drop_prob must be in (0, 1], got {drop_prob}")
        super().__init__(sim, links, domains=domains, trace=trace, label=label)
        self.rng = rng
        self.drop_prob = drop_prob
        self.packets_suppressed = 0

    def carry(self, link: Link, from_port, packet, delay: int) -> None:
        if self._targets(packet):
            # Deterministic suppression draws nothing from the stream, so
            # an all-drop attack perturbs no other RNG consumer.
            if self.drop_prob >= 1.0 or self.rng.random() < self.drop_prob:
                self.packets_suppressed += 1
                return
        self._forward(link, from_port, packet, delay)


class DelayAttack(_LinkTapAttack):
    """Add ``extra_delay`` to Sync/Follow_Up only (asymmetric latency).

    The pdelay exchange still measures the unimpaired link, so the slaves'
    link-delay correction cannot see the detour: every stored reading for
    the victim domain shifts by ≈ ``extra_delay``.
    """

    def __init__(
        self,
        sim: Simulator,
        links: Sequence[Link],
        extra_delay: int,
        domains: Sequence[int] = (),
        trace: Optional[TraceLog] = None,
        label: Optional[str] = None,
    ) -> None:
        if extra_delay <= 0:
            raise ValueError(f"extra_delay must be positive, got {extra_delay}")
        super().__init__(sim, links, domains=domains, trace=trace, label=label)
        self.extra_delay = extra_delay
        self.packets_delayed = 0

    def carry(self, link: Link, from_port, packet, delay: int) -> None:
        if self._targets(packet):
            self.packets_delayed += 1
            delay += self.extra_delay
        self._forward(link, from_port, packet, delay)


class WormholeAttack(_LinkTapAttack):
    """Copy gPTP frames off tapped links and replay them elsewhere.

    Tapped traffic is forwarded untouched; matching Sync/Follow_Up frames
    are additionally cloned onto ``dest`` (both directions) after
    ``tunnel_delay`` — stale timestamps surface on a segment they were
    never sent to.

    To have any effect, ``dest`` must lie on the victim domain's
    distribution tree: 802.1AS bridges terminate and regenerate Sync
    rather than forwarding it, accepting ingress only on the domain's
    configured slave port, so off-tree injection is silently dropped by
    the relay (a defence the architecture gets from the standard itself).
    """

    def __init__(
        self,
        sim: Simulator,
        links: Sequence[Link],
        dest: Link,
        tunnel_delay: int = 0,
        domains: Sequence[int] = (),
        trace: Optional[TraceLog] = None,
        label: Optional[str] = None,
    ) -> None:
        if tunnel_delay < 0:
            raise ValueError(f"tunnel_delay must be >= 0, got {tunnel_delay}")
        super().__init__(sim, links, domains=domains, trace=trace, label=label)
        self.dest = dest
        self.tunnel_delay = tunnel_delay
        self.packets_tunneled = 0

    def carry(self, link: Link, from_port, packet, delay: int) -> None:
        if self._targets(packet) and self.dest.up:
            self.packets_tunneled += 1
            replay = delay + self.tunnel_delay
            self.dest.deliver_after(replay, packet.copy_for_forwarding(), True)
            self.dest.deliver_after(replay, packet.copy_for_forwarding(), False)
        self._forward(link, from_port, packet, delay)

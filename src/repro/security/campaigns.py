"""Declarative, schema-versioned adversary campaigns.

An :class:`AttackCampaign` is the attack-side sibling of
:class:`~repro.chaos.plan.ChaosPlan`: a named, serializable schedule of
:class:`AttackStage` entries — each one attack primitive from
:mod:`repro.security.attacks` with a start time, an optional stop time, and
declarative targets (victim VM names for the GM-side attacks; the chaos
plan's link selector grammar for the on-path taps).

Campaigns do not execute themselves. :meth:`AttackCampaign.compile` lowers
a campaign to plain chaos-plan ``attack`` / ``attack_stop`` stages, which
the existing :class:`~repro.chaos.orchestrator.ChaosOrchestrator` runs —
so campaigns compose with impairment schedules (via
:func:`~repro.chaos.plan.merge_plans`), ride on
:class:`~repro.scenarios.spec.ScenarioSpec` (entering the scenario
fingerprint and every cache key), and are graded by the same invariant
monitor as everything else.

:func:`colluder_campaign` builds the worst-case adversary of the
``attackbudget`` breaking-point sweep: ``k`` grandmasters steering a
common constant shift chosen *inside* the FTA/validity drop window, so
they are never invalidated and only the trim can mask them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.chaos.plan import (
    ATTACK_KINDS,
    GM_ATTACK_KINDS,
    ChaosPlan,
    ChaosStage,
    _check_vm_names,
)
from repro.core.validity import ValidityConfig
from repro.sim.timebase import SECONDS

CAMPAIGN_SCHEMA_VERSION = 1

#: Stage parameters that stay out of the serialized form at their default
#: value, keeping campaign JSON (and fingerprints) minimal and stable.
_STAGE_DEFAULTS: Dict[str, Any] = {
    "stop": None,
    "victims": (),
    "links": (),
    "label": None,
    "step_per_update": -100,
    "amplitude": 10_000,
    "period_updates": 16,
    "shift": -4_000,
    "observer": None,
    "domains": (),
    "drop_prob": 1.0,
    "extra_delay": 20_000,
    "tunnel_delay": 0,
    "dest": None,
}


@dataclass(frozen=True)
class AttackStage:
    """One attack of a campaign: a primitive, a window, and its targets.

    Attributes
    ----------
    start:
        Simulation time (ns) the attack launches.
    stop:
        Optional time the attack is stopped (``None`` = runs to the end).
    kind:
        One of :data:`~repro.chaos.plan.ATTACK_KINDS`.
    victims:
        Clock-sync VM names to compromise (GM-side kinds).
    links:
        Link selectors to tap (on-path kinds; chaos-plan grammar).
    label:
        Handle used to stop exactly this attack; defaults to
        ``"<kind>@<index>"`` at compile time.
    step_per_update / amplitude / period_updates:
        Ramp / oscillation steering parameters.
    shift:
        Constant origin shift of collude/adaptive, ns (default 80% of the
        validity window — in-window by construction).
    observer:
        Foothold VM of the adaptive attack (default: first victim).
    domains:
        gPTP domains an on-path tap targets (empty = all).
    drop_prob:
        Suppression probability of the ``suppress`` kind.
    extra_delay:
        Added Sync/Follow_Up latency of the ``delay`` kind, ns.
    tunnel_delay / dest:
        Replay latency and destination link selector of the ``wormhole``.
    """

    start: int
    kind: str
    stop: Optional[int] = None
    victims: Tuple[str, ...] = ()
    links: Tuple[str, ...] = ()
    label: Optional[str] = None
    step_per_update: int = -100
    amplitude: int = 10_000
    period_updates: int = 16
    shift: int = -4_000
    observer: Optional[str] = None
    domains: Tuple[int, ...] = ()
    drop_prob: float = 1.0
    extra_delay: int = 20_000
    tunnel_delay: int = 0
    dest: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("victims", "links", "domains"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if self.start < 0:
            raise ValueError(
                f"stage start must be nonnegative, got {self.start}"
            )
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"stage stop ({self.stop}) must come after start "
                f"({self.start})"
            )
        if self.kind not in ATTACK_KINDS:
            raise ValueError(
                f"unknown attack kind {self.kind!r}; "
                f"expected one of {ATTACK_KINDS}"
            )
        # Delegate parameter validation to the chaos-stage schema so the
        # campaign and plan layers can never drift apart; this also
        # validates victim/observer names at load time.
        self._chaos_stage(self.label)

    def _chaos_stage(self, label: Optional[str]) -> ChaosStage:
        """The ``attack`` chaos stage this campaign stage lowers to."""
        return ChaosStage(
            at=self.start,
            action="attack",
            attack=self.kind,
            victims=self.victims,
            links=self.links,
            label=label,
            step_per_update=self.step_per_update,
            amplitude=self.amplitude,
            period_updates=self.period_updates,
            shift=self.shift,
            observer=self.observer,
            domains=self.domains,
            drop_prob=self.drop_prob,
            extra_delay=self.extra_delay if self.kind == "delay" else 0,
            tunnel_delay=self.tunnel_delay,
            dest=self.dest,
        )

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"start": self.start, "kind": self.kind}
        for name, default in _STAGE_DEFAULTS.items():
            value = getattr(self, name)
            if value != default:
                doc[name] = list(value) if isinstance(value, tuple) else value
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AttackStage":
        doc = dict(doc)
        unknown = set(doc) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(f"unknown attack stage keys: {sorted(unknown)}")
        for name in ("victims", "links", "domains"):
            if name in doc:
                doc[name] = tuple(doc[name])
        return cls(**doc)


@dataclass(frozen=True)
class AttackCampaign:
    """A named, ordered, serializable schedule of attack stages."""

    name: str
    stages: Tuple[AttackStage, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attack campaign needs a name")
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "name": self.name,
            "stages": [s.to_dict() for s in self.stages],
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "AttackCampaign":
        doc = dict(doc)
        version = doc.pop("schema_version", CAMPAIGN_SCHEMA_VERSION)
        if version != CAMPAIGN_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported attack campaign schema_version {version} "
                f"(this build reads {CAMPAIGN_SCHEMA_VERSION})"
            )
        unknown = set(doc) - {"name", "stages"}
        if unknown:
            raise ValueError(f"unknown attack campaign keys: {sorted(unknown)}")
        stages = tuple(
            AttackStage.from_dict(s) if isinstance(s, dict) else s
            for s in doc.get("stages", ())
        )
        return cls(name=doc["name"], stages=stages)

    def compile(self) -> ChaosPlan:
        """Lower to a chaos plan the orchestrator can execute.

        Each stage becomes a labelled ``attack`` stage at its start time
        plus, when it has a stop time, a matching labelled ``attack_stop``.
        Stages come out time-ordered (stable on ties), so merging the
        result with an impairment plan keeps both deterministic.
        """
        lowered: List[ChaosStage] = []
        for i, stage in enumerate(self.stages):
            label = stage.label or f"{stage.kind}@{i}"
            lowered.append(stage._chaos_stage(label))
            if stage.stop is not None:
                lowered.append(
                    ChaosStage(at=stage.stop, action="attack_stop",
                               label=label)
                )
        lowered.sort(key=lambda s: s.at)
        return ChaosPlan(name=f"campaign:{self.name}", stages=tuple(lowered))


def load_campaign(path: Union[str, Path]) -> AttackCampaign:
    """Read an attack campaign from a JSON file."""
    with open(path, encoding="utf-8") as fh:
        return AttackCampaign.from_dict(json.load(fh))


def dump_campaign(campaign: AttackCampaign, path: Union[str, Path]) -> None:
    """Write an attack campaign to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(campaign.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def default_gm_names(
    n_devices: int,
    n_domains: Optional[int] = None,
    gm_placement: str = "spread",
) -> List[str]:
    """The grandmaster VM names a testbed assigns, in domain order.

    Mirrors the placement rule of
    :class:`~repro.experiments.testbed.Testbed`: domain ``x`` is mastered
    by ``c<x>_1`` under ``"spread"`` and by ``c<N+1-x>_1`` under
    ``"reversed"``.
    """
    domains = n_domains if n_domains is not None else n_devices
    if not 1 <= domains <= n_devices:
        raise ValueError(
            f"need 1 <= n_domains <= n_devices, got {domains}/{n_devices}"
        )
    if gm_placement == "spread":
        devices = range(1, domains + 1)
    elif gm_placement == "reversed":
        devices = range(n_devices, n_devices - domains, -1)
    else:
        raise ValueError(f"unknown gm_placement {gm_placement!r}")
    return [f"c{d}_1" for d in devices]


def colluder_campaign(
    colluders: int,
    gm_names: List[str],
    margin: float = 0.8,
    start: int = 60 * SECONDS,
    stop: Optional[int] = None,
    threshold: Optional[int] = None,
    name: Optional[str] = None,
) -> AttackCampaign:
    """The worst-case adversary: ``colluders`` GMs steering in-window.

    The common shift is ``-round(margin * threshold)`` — strictly inside
    the validity window for ``margin < 1``, so the colluding bloc keeps
    vouching for itself and is never excluded; only the FTA trim stands
    between it and the aggregate. Victims are taken from the *end* of
    ``gm_names`` (mirroring the paper's §III-B, which compromises ``c4_1``
    first).
    """
    if threshold is None:
        threshold = ValidityConfig().threshold
    if not 0 < margin < 1:
        raise ValueError(f"margin must be in (0, 1), got {margin}")
    if not 1 <= colluders <= len(gm_names):
        raise ValueError(
            f"need 1 <= colluders <= {len(gm_names)} GMs, got {colluders}"
        )
    victims = tuple(gm_names[-colluders:])
    _check_vm_names("colluder campaign", "victim", victims)
    return AttackCampaign(
        name=name or f"colluders-{colluders}",
        stages=(
            AttackStage(
                start=start, stop=stop, kind="collude", victims=victims,
                shift=-round(margin * threshold),
            ),
        ),
    )

"""OS diversification policies and shared-vulnerability analysis.

The paper argues (citing Garcia et al.) that the number of vulnerabilities
*shared* between two OS stacks is far smaller than each stack's total, so
giving every grandmaster a distinct kernel keeps a single exploit from
crossing the f = 1 Byzantine budget. ``assign_kernels`` implements the two
policies compared in Fig. 3 and ``shared_vulnerabilities`` quantifies the
overlap argument against the bundled CVE database.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.security.kernels import VULNERABILITY_DB, parse_kernel_version

#: Kernels used when diversifying; first entry is the exploitable v4.19.1
#: the paper deliberately leaves on one GM in the diverse setup. Longer than
#: the paper's 4 so domain-count sweeps keep distinct stacks.
DEFAULT_KERNEL_POOL = (
    "linux-4.19.1",
    "linux-5.4.0",
    "linux-5.10.0",
    "linux-5.15.0",
    "linux-5.19.0",
    "linux-6.1.0",
    "linux-6.5.0",
    "linux-6.8.0",
)

#: The §IV outlook stack: a Unikraft-style unikernel. Outside the Linux CVE
#: surface and, on real hardware, booting in milliseconds rather than tens
#: of seconds — which is what the recovery benchmark exercises.
UNIKERNEL_STACK = "unikraft-0.16"

#: Simulated boot latencies per stack family (order-of-magnitude figures:
#: a full GNU/Linux guest vs. Unikraft's millisecond boots, Kuenzer et al.).
BOOT_DELAY_NS = {
    "linux": 30_000_000_000,
    "unikraft": 250_000_000,
}


def boot_delay_of(kernel_label: str) -> int:
    """Simulated boot delay for a stack label, ns."""
    family = kernel_label.split("-", 1)[0]
    return BOOT_DELAY_NS.get(family, BOOT_DELAY_NS["linux"])


def assign_kernels(
    vm_names: Sequence[str],
    policy: str,
    pool: Sequence[str] = DEFAULT_KERNEL_POOL,
) -> Dict[str, str]:
    """Map VM names to kernel versions per diversification policy.

    ``identical``
        Everyone runs ``pool[0]`` — the Fig. 3a setup (all GMs on the
        exploitable v4.19.1).
    ``diverse``
        Round-robin distinct kernels from the pool — the Fig. 3b setup
        (only the VM landing on ``pool[0]`` stays exploitable).
    ``unikernel``
        Everyone runs the Unikraft-style minimal stack — the paper's §IV
        outlook: a tiny code base outside the Linux CVE surface entirely.

    >>> assign_kernels(["a", "b"], "identical")
    {'a': 'linux-4.19.1', 'b': 'linux-4.19.1'}
    >>> assign_kernels(["a"], "unikernel")
    {'a': 'unikraft-0.16'}
    """
    if policy == "identical":
        return {name: pool[0] for name in vm_names}
    if policy == "diverse":
        if len(pool) < len(vm_names):
            raise ValueError(
                f"need {len(vm_names)} distinct kernels, pool has {len(pool)}"
            )
        return {name: pool[i] for i, name in enumerate(vm_names)}
    if policy == "unikernel":
        return {name: UNIKERNEL_STACK for name in vm_names}
    raise ValueError(f"unknown diversification policy {policy!r}")


def vulnerabilities_of(kernel_label: str) -> List[str]:
    """All database CVEs affecting one kernel."""
    version = parse_kernel_version(kernel_label)
    return sorted(
        cve for cve, vuln in VULNERABILITY_DB.items() if vuln.affects(version)
    )


def shared_vulnerabilities(kernel_a: str, kernel_b: str) -> List[str]:
    """CVEs affecting *both* kernels — the overlap the paper minimizes.

    >>> shared_vulnerabilities("linux-4.19.1", "linux-4.19.1")
    ['CVE-2018-18955', 'CVE-2019-13272']
    >>> shared_vulnerabilities("linux-4.19.1", "linux-5.10.0")
    []
    """
    return sorted(
        set(vulnerabilities_of(kernel_a)) & set(vulnerabilities_of(kernel_b))
    )

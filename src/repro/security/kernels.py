"""Kernel versions and the vulnerability database.

Kernel labels look like ``"linux-4.19.1"``. A :class:`Vulnerability` names
the half-open version interval it affects (introduced ≤ v < fixed), which is
how real CVE applicability is published.

The database ships the paper's exploit — CVE-2018-18955, the user-namespace
subuid mapping privilege escalation fixed in 4.19.2 — plus a few other
well-known local privilege escalations so diversification analyses have
something to chew on. The set is illustrative, not exhaustive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

KernelVersion = Tuple[int, ...]


def parse_kernel_version(label: str) -> KernelVersion:
    """Parse ``"linux-4.19.1"`` → ``(4, 19, 1)``.

    >>> parse_kernel_version("linux-4.19.1")
    (4, 19, 1)
    >>> parse_kernel_version("5.10")
    (5, 10)
    """
    text = label.split("-", 1)[1] if label.startswith("linux-") else label
    try:
        return tuple(int(part) for part in text.split("."))
    except ValueError as exc:
        raise ValueError(f"cannot parse kernel version {label!r}") from exc


@dataclass(frozen=True)
class Vulnerability:
    """One CVE with its affected version interval.

    Attributes
    ----------
    cve:
        Identifier, e.g. ``"CVE-2018-18955"``.
    introduced:
        First affected version (inclusive).
    fixed:
        First fixed version (exclusive).
    description:
        Human-readable summary.
    """

    cve: str
    introduced: KernelVersion
    fixed: KernelVersion
    description: str

    def affects(self, version: KernelVersion) -> bool:
        """Whether ``version`` falls inside [introduced, fixed)."""
        return self.introduced <= version < self.fixed


CVE_2018_18955 = Vulnerability(
    cve="CVE-2018-18955",
    introduced=(4, 15),
    fixed=(4, 19, 2),
    description=(
        "map_write() in user namespaces mishandles nested id maps, allowing "
        "a namespaced root to escalate to full root (exploit-db 47164 — the "
        "paper's attack)."
    ),
)

VULNERABILITY_DB: Dict[str, Vulnerability] = {
    v.cve: v
    for v in [
        CVE_2018_18955,
        Vulnerability(
            cve="CVE-2017-16995",
            introduced=(4, 4),
            fixed=(4, 14, 17),
            description="eBPF verifier sign-extension LPE.",
        ),
        Vulnerability(
            cve="CVE-2019-13272",
            introduced=(4, 10),
            fixed=(5, 1, 17),
            description="ptrace_link credential mishandling LPE.",
        ),
        Vulnerability(
            cve="CVE-2021-4034",
            introduced=(0,),
            fixed=(0,),
            description="PwnKit (pkexec, userspace) — placeholder entry that "
            "affects no kernel version; present to exercise negative paths.",
        ),
        Vulnerability(
            cve="CVE-2022-0847",
            introduced=(5, 8),
            fixed=(5, 16, 11),
            description="Dirty Pipe arbitrary file overwrite LPE.",
        ),
    ]
}


def is_vulnerable(kernel_label: str, cve: str) -> bool:
    """Whether the kernel named by ``kernel_label`` is affected by ``cve``.

    Unknown CVEs raise ``KeyError`` — silently treating an unknown exploit
    as harmless would be the wrong default in a security model. Non-Linux
    stacks (e.g. the ``unikraft-*`` unikernels of the paper's §IV outlook)
    are never affected by the database's Linux-kernel CVEs: a Linux LPE
    exploit simply has no code to land on.

    >>> is_vulnerable("linux-4.19.1", "CVE-2018-18955")
    True
    >>> is_vulnerable("linux-5.10.0", "CVE-2018-18955")
    False
    >>> is_vulnerable("unikraft-0.16", "CVE-2018-18955")
    False
    """
    vulnerability = VULNERABILITY_DB[cve]
    if not kernel_label.startswith("linux"):
        return False
    return vulnerability.affects(parse_kernel_version(kernel_label))

"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event kernel that the whole
reproduction runs on: an event queue with integer-nanosecond simulated time
(:mod:`repro.sim.kernel`), periodic/one-shot process helpers
(:mod:`repro.sim.process`), named deterministic random-number streams
(:mod:`repro.sim.rng`), time-unit helpers (:mod:`repro.sim.timebase`) and a
structured trace log (:mod:`repro.sim.trace`).

All simulated timestamps are integers in nanoseconds, which keeps arithmetic
exact and runs reproducible across platforms.
"""

from repro.sim.kernel import EventHandle, Simulator
from repro.sim.process import PeriodicTask
from repro.sim.rng import RngRegistry
from repro.sim.timebase import (
    HOURS,
    MICROSECONDS,
    MILLISECONDS,
    MINUTES,
    NANOSECONDS,
    SECONDS,
    format_hms,
    from_seconds,
    to_seconds,
)
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "EventHandle",
    "Simulator",
    "PeriodicTask",
    "RngRegistry",
    "TraceLog",
    "TraceRecord",
    "NANOSECONDS",
    "MICROSECONDS",
    "MILLISECONDS",
    "SECONDS",
    "MINUTES",
    "HOURS",
    "from_seconds",
    "to_seconds",
    "format_hms",
]

"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped events. Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the kernel dispatches them
in nondecreasing time order. Ties are broken by insertion order, which makes
runs fully deterministic for a fixed seed.

Time is integer nanoseconds; see :mod:`repro.sim.timebase`.

Hot-path design
---------------
The heap stores plain ``(time, seq, handle, callback, args)`` tuples rather
than comparable handle objects: tuple comparison happens in C and, because
``seq`` is unique, ordering never falls through to the third element. Three
scheduling flavours share that one queue shape:

* :meth:`Simulator.post` / :meth:`Simulator.post_at` — fire-and-forget.
  No :class:`EventHandle` is allocated (``handle`` is ``None``); the bulk of
  all events (packet deliveries, timestamp callbacks) use this path.
* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — cancellable.
  The callback lives on the returned :class:`EventHandle` so ``cancel()``
  can drop the references immediately.
* :meth:`Simulator.schedule_periodic` — a first-class repeating timer. One
  handle is reused across every tick; each re-arm pushes only a fresh
  tuple, never a new handle, and consumes exactly one sequence number after
  the callback returns — the same order an equivalent self-rescheduling
  callback would, so dispatch order (and tie-breaking) is bit-compatible.

Cancelled entries stay in the heap until popped (lazy deletion keeps
``cancel`` O(1)), but when more than half of a non-trivial heap is dead the
kernel compacts it in place, so mass cancellation in long holdover or
link-failure runs cannot grow the queue unboundedly.
"""

from __future__ import annotations

import heapq
import weakref
from typing import Any, Callable, List, Optional, Tuple

# Scheduling runs once per event; skip the module-attribute hop per call.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Below this queue length compaction is never attempted; rebuilding tiny
#: heaps costs more than the dead entries they carry.
_COMPACT_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised on kernel misuse, e.g. scheduling into the past."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    The kernel never removes cancelled entries from the heap eagerly;
    cancellation just marks the handle and the dispatcher skips it. This is
    the standard lazy-deletion trick and keeps ``cancel`` O(1). The handle
    keeps a back-reference to its simulator while queued so cancellation can
    maintain the kernel's live-event counter without a heap scan.

    A handle with nonzero ``interval`` is a repeating timer: after each
    dispatch the kernel re-arms the same handle ``interval`` ns later until
    it is cancelled.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "interval", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
        interval: int = 0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        self.interval = interval
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once.

        For a periodic handle this stops the timer permanently; re-arming
        requires a new :meth:`Simulator.schedule_periodic` call.
        """
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._live -= 1
                self._sim = None
                sim._maybe_compact()
        self.callback = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        kind = f", every={self.interval}" if self.interval else ""
        return f"EventHandle(t={self.time}, seq={self.seq}{kind}, {state})"


class Simulator:
    """Deterministic discrete-event simulator with integer-nanosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1_000, fired.append, "a")
    >>> _ = sim.schedule(500, fired.append, "b")
    >>> sim.run()
    2
    >>> fired
    ['b', 'a']
    >>> sim.now
    1000
    """

    def __init__(self, start_time: int = 0) -> None:
        self.now: int = start_time
        # Heap of (time, seq, handle | None, callback | None, args | None).
        self._queue: List[tuple] = []
        self._seq: int = 0
        self._dispatched: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False
        # Observability (attach_metrics): None means fully disabled — the
        # scheduling paths then pay one short-circuited None check each.
        self._metrics = None
        self._queue_hwm: int = 0
        # Fast-forward support: jittered periodic tasks register here so
        # fast_forward() can retime their nominal schedules coherently
        # (weak refs — registration must not pin task lifetimes).
        self._tasks: "weakref.WeakSet" = weakref.WeakSet()
        self.fastforward_spans: int = 0
        self.fastforward_ns: int = 0

    def reset(self, start_time: int = 0) -> None:
        """Return the kernel to a pristine post-construction state.

        Cancels every queued event (so outstanding :class:`EventHandle`
        references become inert) and rewinds time and the counters. Worker
        processes that reuse one :class:`Simulator` across tasks call this
        between runs; the kernel holds no OS resources (no threads, locks,
        or file handles), so a reset instance is also safe to use after a
        ``fork``/``spawn`` into a child process.
        """
        # Detach the queue before cancelling: cancel() may trigger
        # compaction, which must not race the iteration.
        entries = self._queue
        self._queue = []
        for entry in entries:
            handle = entry[2]
            if handle is not None:
                handle.cancel()
        self.now = start_time
        self._seq = 0
        self._dispatched = 0
        self._live = 0
        self._running = False
        self._stopped = False
        self._queue_hwm = 0
        self._tasks = weakref.WeakSet()
        self.fastforward_spans = 0
        self.fastforward_ns = 0

    def register_task(self, task: Any) -> None:
        """Register a periodic task for fast-forward retiming (weakly held).

        Anything exposing ``fast_forward_key(horizon)`` /
        ``fast_forward(horizon)`` (see :class:`repro.sim.process.PeriodicTask`)
        may register; unregistration is automatic on garbage collection.
        """
        self._tasks.add(task)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} ns; current time is {self.now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, sim=self)
        _heappush(self._queue, (time, seq, handle, None, None))
        self._live += 1
        if self._metrics is not None and self._live > self._queue_hwm:
            self._queue_hwm = self._live
        return handle

    def post(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget event ``delay`` ns from now.

        Identical dispatch semantics to :meth:`schedule` (same queue, same
        tie-breaking) but returns no handle and allocates no
        :class:`EventHandle` — the low-allocation path for events nobody
        ever cancels, which is most of them.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (time, seq, None, callback, args))
        self._live += 1
        if self._metrics is not None and self._live > self._queue_hwm:
            self._queue_hwm = self._live

    def post_at(self, time: int, callback: Callable[..., None], *args: Any) -> None:
        """Absolute-time variant of :meth:`post`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} ns; current time is {self.now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        _heappush(self._queue, (time, seq, None, callback, args))
        self._live += 1
        if self._metrics is not None and self._live > self._queue_hwm:
            self._queue_hwm = self._live

    def schedule_periodic(
        self,
        interval: int,
        callback: Callable[..., None],
        *args: Any,
        start: Optional[int] = None,
    ) -> EventHandle:
        """Run ``callback(*args)`` every ``interval`` ns until cancelled.

        The first dispatch happens at absolute time ``start`` (default: one
        interval from now); each subsequent one exactly ``interval`` ns
        after the previous. The returned handle is reused for every tick —
        re-arming allocates no new handle and pushes only a heap tuple.

        Determinism: the re-arm consumes one sequence number *after* the
        callback returns, exactly where an equivalent self-rescheduling
        callback (``def tick(): work(); sim.schedule(interval, tick)``)
        would consume it, so dispatch order and tie-breaking are identical
        to the hand-rolled pattern this replaces.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        first = self.now + interval if start is None else start
        if first < self.now:
            raise SimulationError(
                f"cannot schedule at {first} ns; current time is {self.now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(first, seq, callback, args, sim=self, interval=interval)
        _heappush(self._queue, (first, seq, handle, None, None))
        self._live += 1
        if self._metrics is not None and self._live > self._queue_hwm:
            self._queue_hwm = self._live
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _dispatch(self, entry: tuple) -> None:
        """Fire one live heap entry (caller has already skipped dead ones)."""
        handle = entry[2]
        self.now = entry[0]
        self._live -= 1
        self._dispatched += 1
        if handle is None:
            entry[3](*entry[4])
            return
        callback = handle.callback
        args = handle.args
        interval = handle.interval
        # While the callback runs the event is no longer queued: a cancel()
        # from inside must not double-decrement the live counter.
        handle._sim = None
        if not interval:
            handle.callback = None
            handle.args = ()
            callback(*args)
            return
        callback(*args)
        if not handle.cancelled:
            # Re-arm the same handle; consume the next seq *after* the
            # callback so ties resolve exactly like a self-rescheduling
            # callback's would.
            seq = self._seq
            self._seq = seq + 1
            time = handle.time + interval
            handle.time = time
            handle.seq = seq
            handle._sim = self
            self._live += 1
            _heappush(self._queue, (time, seq, handle, None, None))

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        queue = self._queue
        pop = _heappop
        while queue:
            entry = pop(queue)
            handle = entry[2]
            if handle is not None and handle.cancelled:
                continue
            self._dispatch(entry)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` dispatched).

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        fast = 0
        self._stopped = False
        queue = self._queue
        pop = _heappop
        dispatch = self._dispatch
        while not self._stopped:
            if max_events is not None and dispatched >= max_events:
                break
            while queue:
                entry = pop(queue)
                handle = entry[2]
                if handle is None:
                    # Fire-and-forget fast path, inlined: most events are
                    # posts and the extra call per event is measurable. The
                    # live/dispatched counters are settled in bulk after the
                    # loop (nothing inside the model reads them mid-run; the
                    # compaction heuristic only sees a conservatively high
                    # live count).
                    self.now = entry[0]
                    fast += 1
                    entry[3](*entry[4])
                elif handle.cancelled:
                    continue
                else:
                    self._live -= fast
                    self._dispatched += fast
                    fast = 0
                    dispatch(entry)
                dispatched += 1
                break
            else:
                break
        self._live -= fast
        self._dispatched += fast
        return dispatched

    def run_until(self, time: int) -> int:
        """Run every event with timestamp ``<= time``; advance now to ``time``.

        Events scheduled beyond ``time`` remain queued. Returns the number of
        events dispatched.
        """
        if time < self.now:
            raise SimulationError(
                f"run_until({time}) is in the past (now={self.now})"
            )
        before = self._dispatched
        fast = 0
        self._stopped = False
        queue = self._queue
        pop = _heappop
        pushback = _heappush
        dispatch = self._dispatch
        while queue and not self._stopped:
            # Pop unconditionally and push the head back at the horizon:
            # one boundary push instead of a peek on every iteration.
            head = pop(queue)
            if head[0] > time:
                pushback(queue, head)
                break
            handle = head[2]
            if handle is None:
                # Fire-and-forget fast path, inlined: most events are posts
                # and the extra call per event is measurable at this volume.
                # The live/dispatched counters are settled in bulk after the
                # loop (nothing inside the model reads them mid-run; the
                # compaction heuristic only sees a conservatively high live
                # count).
                self.now = head[0]
                fast += 1
                head[3](*head[4])
            elif handle.cancelled:
                continue
            else:
                self._live -= fast
                self._dispatched += fast
                fast = 0
                dispatch(head)
        self._live -= fast
        self._dispatched += fast
        if not self._stopped and time > self.now:
            self.now = time
        return self._dispatched - before

    def stop(self) -> None:
        """Ask a running :meth:`run`/:meth:`run_until` loop to return."""
        self._stopped = True

    def fast_forward(self, to_time: int) -> int:
        """Retime all periodic work to at/after ``to_time`` without firing it.

        The adaptive-fidelity engine's primitive: every repeating timer
        (``schedule_periodic`` handles and registered jittered
        :class:`~repro.sim.process.PeriodicTask` objects) whose next fire
        lands before ``to_time`` is advanced by a whole number of its own
        periods so its phase is preserved; one-shot events are left
        untouched. ``now`` does not move — the caller follows up with
        :meth:`run_until` to sweep whatever remains in the window, then
        applies the analytic state update for the skipped span.

        Returns the number of timers retimed. Callers own the semantic
        question of whether skipping is sound (quiescence); the kernel only
        guarantees the retiming is phase-exact and deterministic.
        """
        if to_time < self.now:
            raise SimulationError(
                f"fast_forward({to_time}) is in the past (now={self.now})"
            )
        queue = self._queue
        keep: List[tuple] = []
        retimed: List[tuple] = []
        for entry in queue:
            handle = entry[2]
            if handle is not None and handle.cancelled:
                continue  # shed dead entries while rebuilding anyway
            if (
                handle is not None
                and handle.interval > 0
                and entry[0] < to_time
            ):
                retimed.append(entry)
            else:
                keep.append(entry)
        # Old (time, seq) order keeps seq assignment — and thus any future
        # tie-breaking at the new times — deterministic.
        retimed.sort()
        for entry in retimed:
            handle = entry[2]
            interval = handle.interval
            # ceil((to_time - t) / interval) whole periods, integer math.
            periods = -((handle.time - to_time) // interval)
            handle.time += periods * interval
            seq = self._seq
            self._seq = seq + 1
            handle.seq = seq
            keep.append((handle.time, seq, handle, None, None))
        queue[:] = keep
        heapq.heapify(queue)
        # Jittered tasks re-arm themselves with one-shot events the loop
        # above cannot retime; each task knows its own nominal schedule.
        pending = []
        for task in self._tasks:
            key = task.fast_forward_key(to_time)
            if key is not None:
                pending.append((key, task))
        pending.sort(key=lambda kt: kt[0])
        for _key, task in pending:
            task.fast_forward(to_time)
        self.fastforward_spans += 1
        self.fastforward_ns += to_time - self.now
        return len(retimed) + len(pending)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[tuple]:
        queue = self._queue
        while queue:
            handle = queue[0][2]
            if handle is not None and handle.cancelled:
                _heappop(queue)
                continue
            return queue[0]
        return None

    def _maybe_compact(self) -> None:
        """Rebuild the heap in place once most of it is cancelled entries.

        Lazy deletion leaves dead tuples in the queue until they surface at
        the top; workloads that mass-cancel (holdover, link failure, VM
        teardown) would otherwise retain them — and their tuples — for the
        rest of the run. Compaction preserves dispatch order exactly:
        ``(time, seq)`` is a strict total order, so heapify reproduces the
        same pop sequence regardless of internal layout.
        """
        queue = self._queue
        if len(queue) < _COMPACT_MIN_QUEUE or 2 * self._live >= len(queue):
            return
        # In-place slice assignment keeps the list identity stable: the run
        # loops hold a local alias to this exact list object.
        queue[:] = [
            entry
            for entry in queue
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(queue)

    def attach_metrics(self, registry) -> None:
        """Enable kernel observability against ``registry``.

        Only the queue high-water mark costs anything while attached (one
        extra comparison per scheduled event); everything else is read from
        counters the kernel maintains anyway and published on demand by
        :meth:`publish_metrics`. Metrics never influence dispatch order, so
        attaching a registry leaves runs (and traces) bit-identical.
        """
        self._metrics = registry
        self._queue_hwm = self._live

    def publish_metrics(self) -> None:
        """Export the kernel's counters as gauges (no-op when detached).

        The high-water mark is tracked against the push-side ``_live``
        counter, which the inlined run loops settle in bulk — it is exact
        for the queue growth that matters and conservatively high by at
        most the events already dispatched within the current burst.
        """
        registry = self._metrics
        if registry is None:
            return
        registry.gauge("kernel.events_dispatched").set(self._dispatched)
        registry.gauge("kernel.queue_depth_hwm").set(self._queue_hwm)
        registry.gauge("kernel.pending_events").set(self._live)
        registry.gauge("kernel.sim_now_ns").set(self.now)
        # Only adaptive-fidelity runs carry fast-forward spans; full-fidelity
        # runs keep their historical metric set.
        if self.fastforward_spans:
            registry.gauge("kernel.fastforward_spans").set(self.fastforward_spans)
            registry.gauge("kernel.fastforward_ns").set(self.fastforward_ns)

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): maintained as a counter incremented on push and decremented on
        dispatch/cancel, rather than scanning the heap (which made every
        ``repr``/monitor probe O(n) in queue depth).
        """
        return self._live

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched since construction."""
        return self._dispatched

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle."""
        entry = self._peek()
        return entry[0] if entry is not None else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now}, pending={self.pending_events}, "
            f"dispatched={self._dispatched})"
        )

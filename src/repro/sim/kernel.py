"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped events. Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the kernel dispatches them
in nondecreasing time order. Ties are broken by insertion order, which makes
runs fully deterministic for a fixed seed.

Time is integer nanoseconds; see :mod:`repro.sim.timebase`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on kernel misuse, e.g. scheduling into the past."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    The kernel never removes cancelled entries from the heap eagerly;
    cancellation just marks the handle and the dispatcher skips it. This is
    the standard lazy-deletion trick and keeps ``cancel`` O(1). The handle
    keeps a back-reference to its simulator while queued so cancellation can
    maintain the kernel's live-event counter without a heap scan.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._live -= 1
                self._sim = None
        self.callback = None
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator with integer-nanosecond time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1_000, fired.append, "a")
    >>> _ = sim.schedule(500, fired.append, "b")
    >>> sim.run()
    2
    >>> fired
    ['b', 'a']
    >>> sim.now
    1000
    """

    def __init__(self, start_time: int = 0) -> None:
        self.now: int = start_time
        self._queue: List[EventHandle] = []
        self._seq: int = 0
        self._dispatched: int = 0
        self._live: int = 0
        self._running = False
        self._stopped = False

    def reset(self, start_time: int = 0) -> None:
        """Return the kernel to a pristine post-construction state.

        Cancels every queued event (so outstanding :class:`EventHandle`
        references become inert) and rewinds time and the counters. Worker
        processes that reuse one :class:`Simulator` across tasks call this
        between runs; the kernel holds no OS resources (no threads, locks,
        or file handles), so a reset instance is also safe to use after a
        ``fork``/``spawn`` into a child process.
        """
        for handle in self._queue:
            handle.cancel()
        self._queue.clear()
        self.now = start_time
        self._seq = 0
        self._dispatched = 0
        self._live = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} ns; current time is {self.now} ns"
            )
        handle = EventHandle(time, self._seq, callback, args, sim=self)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        self._live += 1
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = handle.time
            callback, args = handle.callback, handle.args
            handle.callback = None
            handle.args = ()
            handle._sim = None  # a late cancel() must not double-decrement
            self._live -= 1
            assert callback is not None
            callback(*args)
            self._dispatched += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` dispatched).

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and dispatched >= max_events:
                break
            if not self.step():
                break
            dispatched += 1
        return dispatched

    def run_until(self, time: int) -> int:
        """Run every event with timestamp ``<= time``; advance now to ``time``.

        Events scheduled beyond ``time`` remain queued. Returns the number of
        events dispatched.
        """
        if time < self.now:
            raise SimulationError(
                f"run_until({time}) is in the past (now={self.now})"
            )
        dispatched = 0
        self._stopped = False
        while not self._stopped:
            handle = self._peek()
            if handle is None or handle.time > time:
                break
            self.step()
            dispatched += 1
        if not self._stopped:
            self.now = max(self.now, time)
        return dispatched

    def stop(self) -> None:
        """Ask a running :meth:`run`/:meth:`run_until` loop to return."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _peek(self) -> Optional[EventHandle]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): maintained as a counter incremented on push and decremented on
        dispatch/cancel, rather than scanning the heap (which made every
        ``repr``/monitor probe O(n) in queue depth).
        """
        return self._live

    @property
    def dispatched_events(self) -> int:
        """Total number of events dispatched since construction."""
        return self._dispatched

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if idle."""
        handle = self._peek()
        return handle.time if handle is not None else None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now}, pending={self.pending_events}, "
            f"dispatched={self._dispatched})"
        )

"""Periodic and one-shot simulated processes.

:class:`PeriodicTask` models services that tick at a fixed nominal period —
the hypervisor monitor (125 ms), phc2sys, the measurement VM's 1 Hz probes,
grandmaster Sync transmission — with optional per-tick jitter and a start
phase. Tasks can be stopped and restarted, which the VM lifecycle uses when a
fail-silent fault kills a VM and it later reboots.

Jitter-free tasks ride the kernel's first-class repeating timer
(:meth:`~repro.sim.kernel.Simulator.schedule_periodic`), which reuses one
:class:`EventHandle` across every tick instead of allocating a fresh handle
and heap entry per re-arm. Jittered tasks keep the self-rescheduling path
because each tick's fire time needs a fresh uniform draw. Both paths consume
sequence numbers and RNG values identically to the historical
self-rescheduling implementation, so dispatch order is unchanged.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.kernel import EventHandle, Simulator


class PeriodicTask:
    """Run ``action()`` every ``period`` ns of simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.
    period:
        Nominal period in nanoseconds; must be positive.
    action:
        Zero-argument callback invoked per tick.
    phase:
        Delay before the first tick, default one full period.
    jitter:
        If nonzero, each tick is displaced by a uniform draw from
        ``[0, jitter]`` ns using ``rng`` (scheduling noise of a real OS task).
    rng:
        Random stream for jitter; required when ``jitter > 0``.
    name:
        Diagnostic label.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        action: Callable[[], None],
        phase: Optional[int] = None,
        jitter: int = 0,
        rng: Optional[random.Random] = None,
        name: str = "periodic",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0:
            raise ValueError(f"jitter must be nonnegative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng stream")
        self.sim = sim
        self.period = period
        self.action = action
        self.phase = period if phase is None else phase
        self.jitter = jitter
        self.rng = rng
        self.name = name
        self.ticks = 0
        self._handle: Optional[EventHandle] = None
        self._next_nominal: Optional[int] = None
        # Jittered tasks re-arm via one-shot events the kernel cannot retime
        # by itself; register so fast_forward() can delegate back here.
        sim.register_task(self)

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the task; first tick fires ``phase`` ns from now."""
        if self.running:
            raise RuntimeError(f"task {self.name!r} already running")
        if self.jitter == 0:
            # Kernel-managed repeating timer: one reused handle, one heap
            # tuple per tick, seq consumed after the action — identical
            # ordering to the self-rescheduling path below.
            self._next_nominal = None
            self._handle = self.sim.schedule_periodic(
                self.period, self._tick_periodic, start=self.sim.now + self.phase
            )
            return
        self._next_nominal = self.sim.now + self.phase
        self._arm()

    def stop(self) -> None:
        """Cancel the pending tick; the task can be started again later."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        self._next_nominal = None

    @property
    def running(self) -> bool:
        """Whether a tick is currently armed."""
        return self._handle is not None and not self._handle.cancelled

    # ------------------------------------------------------------------
    def _tick_periodic(self) -> None:
        """Kernel-timer tick: bookkeeping only, the kernel re-arms."""
        self.ticks += 1
        self.action()

    def _arm(self) -> None:
        assert self._next_nominal is not None
        fire_at = self._next_nominal
        if self.jitter > 0:
            assert self.rng is not None
            fire_at += self.rng.randint(0, self.jitter)
        fire_at = max(fire_at, self.sim.now)
        self._handle = self.sim.schedule_at(fire_at, self._tick)

    def _tick(self) -> None:
        self._handle = None
        self.ticks += 1
        # Advance the nominal schedule before running the action so the
        # action may stop() or restart the task without racing the re-arm.
        assert self._next_nominal is not None
        self._next_nominal += self.period
        next_nominal = self._next_nominal
        self.action()
        # The action may have stopped us; only re-arm if still on schedule.
        if self._next_nominal == next_nominal and self._handle is None:
            self._arm()

    # ------------------------------------------------------------------
    # Fast-forward protocol (see Simulator.fast_forward)
    # ------------------------------------------------------------------
    def fast_forward_key(self, horizon: int):
        """Deterministic retime ordering key, or ``None`` if not affected.

        Only running jittered tasks with a pending tick before ``horizon``
        participate; jitter-free tasks ride ``schedule_periodic`` handles
        the kernel retimes directly.
        """
        handle = self._handle
        if (
            self._next_nominal is None
            or handle is None
            or handle.cancelled
            or handle.time >= horizon
        ):
            return None
        return (handle.time, handle.seq)

    def fast_forward(self, horizon: int) -> None:
        """Skip whole periods so the next tick lands at/after ``horizon``.

        Phase-exact: the nominal schedule advances by an integer number of
        periods, then one fresh jitter draw arms the next tick — the same
        single draw a tick at the new nominal time would have consumed.
        """
        assert self._next_nominal is not None and self._handle is not None
        periods = -((self._next_nominal - horizon) // self.period)
        if periods > 0:
            self._next_nominal += periods * self.period
        self._handle.cancel()
        self._handle = None
        self._arm()

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"PeriodicTask({self.name!r}, period={self.period}, {state})"

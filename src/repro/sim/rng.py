"""Named deterministic random-number streams.

Distributed-systems simulations need *decoupled* randomness: adding one more
random draw in the NIC-jitter model must not perturb the fault-injection
schedule of an otherwise identical run. We therefore give every stochastic
component its own ``random.Random`` stream, derived from the master seed and
the component's name via SHA-256, instead of sharing one global generator.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """Factory for named, reproducible ``random.Random`` streams.

    Two registries with the same master seed hand out identical streams for
    identical names, regardless of creation order:

    >>> a = RngRegistry(42).stream("nic.jitter").random()
    >>> b = RngRegistry(42).stream("nic.jitter").random()
    >>> a == b
    True
    >>> RngRegistry(42).stream("faults").random() == a
    False
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object,
        so state advances across call sites sharing a name.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.master_seed}/{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent child registry (e.g. per experiment arm)."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork/{salt}".encode("utf-8")
        ).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return (
            f"RngRegistry(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )

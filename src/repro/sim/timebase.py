"""Time-unit constants and helpers.

The simulator represents time as integer nanoseconds. These constants make
call sites read naturally (``5 * MILLISECONDS``) and the helpers convert to
and from floating-point seconds only at the edges (configuration input and
reporting output), never inside protocol arithmetic.
"""

from __future__ import annotations

NANOSECONDS = 1
MICROSECONDS = 1_000
MILLISECONDS = 1_000_000
SECONDS = 1_000_000_000
MINUTES = 60 * SECONDS
HOURS = 60 * MINUTES


def from_seconds(seconds: float) -> int:
    """Convert floating-point seconds to integer nanoseconds (rounded)."""
    return round(seconds * SECONDS)


def to_seconds(nanoseconds: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return nanoseconds / SECONDS


def from_ppm(ppm: float) -> float:
    """Convert parts-per-million to a dimensionless fraction."""
    return ppm * 1e-6


def to_ppm(fraction: float) -> float:
    """Convert a dimensionless fraction to parts-per-million."""
    return fraction * 1e6


def from_ppb(ppb: float) -> float:
    """Convert parts-per-billion to a dimensionless fraction."""
    return ppb * 1e-9


def to_ppb(fraction: float) -> float:
    """Convert a dimensionless fraction to parts-per-billion."""
    return fraction * 1e9


def format_hms(nanoseconds: int) -> str:
    """Render a simulated timestamp as ``HH:MM:SS`` (paper-style runtime).

    >>> format_hms(3 * HOURS + 21 * MINUTES + 42 * SECONDS)
    '03:21:42'
    """
    total_seconds = nanoseconds // SECONDS
    hours, remainder = divmod(total_seconds, 3600)
    minutes, seconds = divmod(remainder, 60)
    return f"{hours:02d}:{minutes:02d}:{seconds:02d}"


def parse_hms(text: str) -> int:
    """Parse ``HH:MM:SS`` (or ``MM:SS``) into integer nanoseconds.

    >>> parse_hms("00:21:42") == 21 * MINUTES + 42 * SECONDS
    True
    """
    parts = [int(p) for p in text.split(":")]
    if len(parts) == 2:
        minutes, seconds = parts
        hours = 0
    elif len(parts) == 3:
        hours, minutes, seconds = parts
    else:
        raise ValueError(f"cannot parse time-of-run {text!r}; want HH:MM:SS")
    if not (0 <= minutes < 60 and 0 <= seconds < 60):
        raise ValueError(f"minutes/seconds out of range in {text!r}")
    return hours * HOURS + minutes * MINUTES + seconds * SECONDS

"""Structured simulation trace log.

Components append :class:`TraceRecord` entries (time, category, source, plus
free-form fields) rather than printing. Experiments and the Fig. 5 timeline
extraction query the log by category/source/time-window after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.sim.timebase import format_hms


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry.

    Attributes
    ----------
    time:
        Simulated timestamp in nanoseconds.
    category:
        Machine-matchable kind, e.g. ``"fault.fail_silent"``,
        ``"hypervisor.takeover"``, ``"ptp4l.tx_timeout"``.
    source:
        Emitting component, e.g. ``"c2_1"`` or ``"dev3"``.
    fields:
        Category-specific payload.
    """

    time: int
    category: str
    source: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{format_hms(self.time)}] {self.category} {self.source} {extras}"


class TraceLog:
    """Append-only, queryable record of simulation events."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def emit(
        self, time: int, category: str, source: str, **fields: Any
    ) -> TraceRecord:
        """Append a record and return it."""
        record = TraceRecord(time=time, category=category, source=source, fields=fields)
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def query(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
        prefix: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Return records matching every provided filter.

        ``category`` matches exactly; ``prefix`` matches a category prefix
        (``prefix="fault."`` catches all fault kinds). ``start``/``end`` bound
        the half-open window ``[start, end)``.
        """
        out: List[TraceRecord] = []
        for record in self._records:
            if category is not None and record.category != category:
                continue
            if prefix is not None and not record.category.startswith(prefix):
                continue
            if source is not None and record.source != source:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time >= end:
                continue
            out.append(record)
        return out

    def count(self, category: Optional[str] = None, prefix: Optional[str] = None) -> int:
        """Count records matching a category or category prefix."""
        return len(self.query(category=category, prefix=prefix))

    def categories(self) -> List[str]:
        """Sorted list of distinct categories seen so far."""
        return sorted({record.category for record in self._records})

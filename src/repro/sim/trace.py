"""Structured simulation trace log.

Components append :class:`TraceRecord` entries (time, category, source, plus
free-form fields) rather than printing. Experiments and the Fig. 5 timeline
extraction query the log by category/source/time-window after the run.

The log maintains per-category indexes and counters at ``emit`` time, so
``query(category=...)`` walks only matching records (O(matches)) and
``count(...)`` is O(1) per category — the hypervisor monitor and the figure
extractors call these *during* long runs, where a full-log scan per call
was quadratic overall. Hot loops whose records are not needed for a given
study can be dropped at the source with :meth:`TraceLog.disable_prefix`,
which skips the :class:`TraceRecord` allocation entirely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.timebase import format_hms


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace entry.

    Attributes
    ----------
    time:
        Simulated timestamp in nanoseconds.
    category:
        Machine-matchable kind, e.g. ``"fault.fail_silent"``,
        ``"hypervisor.takeover"``, ``"ptp4l.tx_timeout"``.
    source:
        Emitting component, e.g. ``"c2_1"`` or ``"dev3"``.
    fields:
        Category-specific payload.
    """

    time: int
    category: str
    source: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        # Debug dumps render the same records repeatedly; cache the string
        # so the per-call field sort happens once per record. Records are
        # frozen and their payload is never mutated after emit.
        cached = self.__dict__.get("_rendered")
        if cached is None:
            extras = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
            cached = f"[{format_hms(self.time)}] {self.category} {self.source} {extras}"
            object.__setattr__(self, "_rendered", cached)
        return cached


class TraceLog:
    """Append-only, queryable record of simulation events."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        #: category -> positions into ``_records`` (ascending = emit order).
        self._index: Dict[str, List[int]] = {}
        #: category -> record count; mirrors ``_index`` but survives as the
        #: O(1) backing store for :meth:`count`.
        self._counts: Dict[str, int] = {}
        #: Category prefixes dropped at emit (no record is allocated).
        self._disabled: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self, time: int, category: str, source: str, **fields: Any
    ) -> Optional[TraceRecord]:
        """Append a record and return it.

        Returns ``None`` — without allocating a :class:`TraceRecord` — when
        ``category`` matches a disabled prefix (see :meth:`disable_prefix`).
        """
        if self._disabled:
            for prefix in self._disabled:
                if category.startswith(prefix):
                    return None
        records = self._records
        record = TraceRecord(time=time, category=category, source=source, fields=fields)
        positions = self._index.get(category)
        if positions is None:
            self._index[category] = [len(records)]
            self._counts[category] = 1
        else:
            positions.append(len(records))
            self._counts[category] += 1
        records.append(record)
        return record

    def disable_prefix(self, prefix: str) -> None:
        """Drop future records whose category starts with ``prefix``.

        A filter for hot-loop categories a study does not consume; disabled
        emits cost one tuple scan and no allocation. Already-recorded
        entries are unaffected.
        """
        if prefix and prefix not in self._disabled:
            self._disabled = self._disabled + (prefix,)

    def enable_prefix(self, prefix: str) -> None:
        """Remove a prefix previously passed to :meth:`disable_prefix`."""
        self._disabled = tuple(p for p in self._disabled if p != prefix)

    @property
    def disabled_prefixes(self) -> Tuple[str, ...]:
        """Category prefixes currently dropped at emit."""
        return self._disabled

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def _candidate_positions(
        self, category: Optional[str], prefix: Optional[str]
    ) -> Optional[Iterator[int]]:
        """Emit-ordered positions matching the category/prefix filters.

        ``None`` means "every record" (no category filter given).
        """
        if category is not None:
            if prefix is not None and not category.startswith(prefix):
                return iter(())
            return iter(self._index.get(category, ()))
        if prefix is not None:
            lists = [
                positions
                for cat, positions in self._index.items()
                if cat.startswith(prefix)
            ]
            if not lists:
                return iter(())
            if len(lists) == 1:
                return iter(lists[0])
            # Per-category position lists are ascending; merging them
            # restores global emit order in O(matches · log k).
            return heapq.merge(*lists)
        return None

    def query(
        self,
        category: Optional[str] = None,
        source: Optional[str] = None,
        start: Optional[int] = None,
        end: Optional[int] = None,
        prefix: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Return records matching every provided filter.

        ``category`` matches exactly; ``prefix`` matches a category prefix
        (``prefix="fault."`` catches all fault kinds). ``start``/``end`` bound
        the half-open window ``[start, end)``. Results are in emit order.
        """
        records = self._records
        positions = self._candidate_positions(category, prefix)
        candidates: Iterator[TraceRecord] = (
            iter(records) if positions is None
            else (records[i] for i in positions)
        )
        if source is None and start is None and end is None:
            return list(candidates)
        out: List[TraceRecord] = []
        for record in candidates:
            if source is not None and record.source != source:
                continue
            if start is not None and record.time < start:
                continue
            if end is not None and record.time >= end:
                continue
            out.append(record)
        return out

    def count(self, category: Optional[str] = None, prefix: Optional[str] = None) -> int:
        """Count records matching a category or category prefix.

        O(1) for an exact category, O(#categories) for a prefix — the
        per-category counters are maintained at emit time, so no record
        list is materialized.
        """
        if category is not None:
            if prefix is not None and not category.startswith(prefix):
                return 0
            return self._counts.get(category, 0)
        if prefix is not None:
            return sum(
                count
                for cat, count in self._counts.items()
                if cat.startswith(prefix)
            )
        return len(self._records)

    def categories(self) -> List[str]:
        """Sorted list of distinct categories seen so far."""
        return sorted(self._counts)

"""Resumable submit → schedule → collect study pipeline (ROADMAP item 2).

Every experiment runner — ``run_monte_carlo``, the ten ``sweep_*``
studies, the envelope sweep, and the chaos/campaign studies — compiles its
arms into a frozen, fingerprinted :class:`Study` of content-addressed
:class:`Job`\\ s, schedules them with :func:`run_study` (dedupe against the
``.repro_cache/`` job-result store, serial or :class:`WorkerPool`
execution, an atomic on-disk :class:`StudyLedger` journal), and collects
results in submission order into its historical result type — so fixed
seeds stay byte-identical while any study becomes idempotent,
deduplicated, and resumable after a worker or host kill.

CLI: ``repro study run|status|resume`` (see :mod:`repro.studies.specs`
for the JSON study-spec format) and ``repro cache stats|prune``.
"""

from repro.studies.core import Job, Study, StudyPlan
from repro.studies.ledger import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    JobEntry,
    LedgerCorruptError,
    LedgerMismatchError,
    StudyLedger,
)
from repro.studies.runner import StudyInterrupted, StudyRun, run_study
from repro.studies.specs import load_spec, plan_from_spec, validate_spec

__all__ = [
    "DONE",
    "FAILED",
    "PENDING",
    "QUARANTINED",
    "RUNNING",
    "Job",
    "JobEntry",
    "LedgerCorruptError",
    "LedgerMismatchError",
    "Study",
    "StudyInterrupted",
    "StudyLedger",
    "StudyPlan",
    "StudyRun",
    "load_spec",
    "plan_from_spec",
    "run_study",
    "validate_spec",
]

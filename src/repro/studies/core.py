"""Study core: frozen, fingerprinted sets of idempotent jobs.

A :class:`Job` is one schedulable unit of work — a module-level function
plus its arguments, identified by a *content-addressed key* (the same
SHA-256 configuration fingerprint the results cache uses). A
:class:`Study` is a frozen, ordered set of jobs compiled by an experiment
runner (Monte-Carlo seeds, sweep arms, envelope arms, chaos runs), with
the parent-side codecs needed to round-trip each job's result through the
``.repro_cache/`` job-result store.

The split is the submit → schedule → collect pipeline from ROADMAP item 2:

* **submit** — an experiment *compiles* its arms into a ``Study``
  (:func:`repro.experiments.montecarlo.run_monte_carlo` and friends all
  accept ``compile_only=True`` to expose their compiler);
* **schedule** — :func:`repro.studies.runner.run_study` dedupes against
  the content-addressed store and runs the remainder on the existing
  :class:`repro.parallel.WorkerPool`, journaling progress in a
  :class:`repro.studies.ledger.StudyLedger` so a killed study resumes by
  re-submitting only unfinished jobs;
* **collect** — the compiler's ``collect`` closure folds per-job results
  (in submission order, so parallel == serial byte-for-byte) back into
  the experiment's existing result type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.parallel import config_fingerprint

#: Bump when Job/Study identity semantics change; enters study fingerprints.
STUDY_SCHEMA_VERSION = 1


def _identity(value: Any) -> Any:
    """Default codec: the result already is its stored JSON form."""
    return value


@dataclass(frozen=True)
class Job:
    """One idempotent, deduplicated unit of work.

    ``fn`` must be a module-level (picklable) function so the job survives
    the ``spawn`` start method; ``key`` is the content-addressed identity
    of the job's *result* — two jobs with equal keys are interchangeable,
    which is what makes studies deduplicated and resumable.
    """

    #: Content-addressed result key (a ``config_fingerprint`` digest).
    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Human-readable arm label (``seed=42``, ``loss_rate=0.2``).
    label: str = ""
    #: Job family (``montecarlo`` / ``sweep`` / ``envelope`` / ``chaos``).
    kind: str = "job"
    seed: Optional[int] = None
    #: Whether ``fn`` accepts a ``metrics=`` keyword; the serial executor
    #: passes the study registry through so arms run fully instrumented.
    accepts_metrics: bool = False

    def run(self, metrics=None) -> Any:
        """Execute in-process (serial executor and worker chunks both)."""
        if metrics is not None and self.accepts_metrics:
            return self.fn(*self.args, metrics=metrics, **self.kwargs)
        return self.fn(*self.args, **self.kwargs)


@dataclass(frozen=True)
class Study:
    """A frozen, fingerprinted set of jobs plus parent-side result codecs.

    ``encode``/``decode`` round-trip one job result through the JSON
    job-result store (identity by default, for results that already are
    plain JSON values); ``summarize`` extracts the compact per-job info
    dict (verdict, headline figure) the ledger journals and progress lines
    show. Codecs never cross the process boundary — only :class:`Job` does.
    """

    name: str
    jobs: Tuple[Job, ...]
    encode: Callable[[Any], Any] = _identity
    decode: Callable[[Any], Any] = _identity
    summarize: Optional[Callable[[Any], Dict[str, Any]]] = None
    #: Prefix for the scheduler's timing instruments; preserves historical
    #: names (``montecarlo.arm_seconds``, ``sweep.chunk_seconds``).
    metrics_prefix: str = "study"

    def fingerprint(self) -> str:
        """Identity of the whole study: ordered job keys + name."""
        return config_fingerprint(
            "study", STUDY_SCHEMA_VERSION, self.name,
            tuple(job.key for job in self.jobs),
        )

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass
class StudyPlan:
    """A compiled study and its collector.

    ``collect`` folds a finished :class:`repro.studies.runner.StudyRun`
    back into the experiment's native result type (``MonteCarloResult``,
    ``List[SweepRow]``, ...); it requires a *complete* run.
    """

    study: Study
    collect: Callable[..., Any]

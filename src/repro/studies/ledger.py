"""The study ledger: on-disk per-job status journal for resumable studies.

One JSON document per study run (atomic tmp + rename on every flush, like
the results cache) recording the study identity, the original study spec
(so ``repro study resume`` can recompile the exact same job set), and one
entry per job: status (``pending`` / ``running`` / ``done`` / ``failed``),
attempt count, wall seconds, the compact result summary (verdict and
headline figures), and the job's content-addressed result key — which *is*
the manifest ref into the ``.repro_cache/`` job-result store.

Resume semantics: the ledger never stores results, only refs. A killed
study leaves ``done`` jobs in the cache under their keys; resuming
recompiles the study (fingerprints must match), re-reads finished jobs
from the store, and re-submits only unfinished ones. Jobs stuck in
``running`` (the worker died mid-arm) simply miss the cache and re-run.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.studies.core import Study

LEDGER_SCHEMA_VERSION = 1

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: A poisoned job: failed on every allowed attempt and parked with its
#: error so the study can finish with a partial verdict. A resume
#: re-submits quarantined jobs (they are "unfinished").
QUARANTINED = "quarantined"

_STATUSES = (PENDING, RUNNING, DONE, FAILED, QUARANTINED)


@dataclass
class JobEntry:
    """Ledger line for one job."""

    key: str
    label: str = ""
    kind: str = "job"
    seed: Optional[int] = None
    status: str = PENDING
    attempts: int = 0
    wall_s: Optional[float] = None
    #: Where the result came from: ``executed`` / ``cache`` / ``resume``.
    source: Optional[str] = None
    #: Compact result summary (``Study.summarize``): verdict, figures.
    info: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


class LedgerMismatchError(RuntimeError):
    """The ledger belongs to a different (or drifted) study."""


class LedgerCorruptError(RuntimeError):
    """The ledger file on disk is torn or corrupt (interrupted flush,
    bit rot). The embedded spec usually survives — recover with
    ``repro-sim study resume LEDGER --salvage``."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(
            f"ledger {path!r} is corrupt ({reason}); finished jobs are "
            "still in the result store — rebuild the journal with "
            f"`study resume {path} --salvage`"
        )
        self.path = path
        self.reason = reason


class StudyLedger:
    """Ordered job journal with atomic persistence.

    ``path=None`` keeps the ledger purely in memory (library callers that
    only want bookkeeping); ``save()`` is then a no-op.
    """

    def __init__(
        self,
        path: Optional[str],
        study_name: str,
        fingerprint: str,
        spec: Optional[Dict[str, Any]] = None,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.path = path
        self.study_name = study_name
        self.fingerprint = fingerprint
        self.spec = spec
        self.cache_dir = cache_dir
        self.created_at = time.time()
        self.updated_at = self.created_at
        self.entries: Dict[str, JobEntry] = {}
        self.order: List[str] = []
        self.stats: Dict[str, Any] = {}
        self._faults = None

    def attach_faults(self, injector) -> None:
        """Attach (or with ``None``, detach) a fault injector; the hook in
        :meth:`save` is a single ``is not None`` check when detached."""
        self._faults = injector

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_study(
        cls,
        study: Study,
        path: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        cache_dir: Optional[str] = None,
    ) -> "StudyLedger":
        """A fresh all-pending ledger for ``study``.

        If ``path`` already holds a ledger for the *same* study
        fingerprint, its entries are adopted instead (so ``study run``
        pointed at an existing ledger continues rather than restarts);
        a ledger for a different study raises :class:`LedgerMismatchError`.
        """
        if path is not None and os.path.exists(path):
            ledger = cls.load(path)
            if ledger.fingerprint != study.fingerprint():
                raise LedgerMismatchError(
                    f"ledger {path!r} records study "
                    f"{ledger.fingerprint[:12]} but the compiled study is "
                    f"{study.fingerprint()[:12]}; delete the ledger or fix "
                    "the spec"
                )
            if spec is not None:
                ledger.spec = spec
            if cache_dir is not None:
                ledger.cache_dir = cache_dir
            return ledger
        ledger = cls(path, study.name, study.fingerprint(), spec=spec,
                     cache_dir=cache_dir)
        for job in study.jobs:
            ledger.entries[job.key] = JobEntry(
                key=job.key, label=job.label, kind=job.kind, seed=job.seed
            )
            ledger.order.append(job.key)
        return ledger

    @classmethod
    def load(cls, path: str, faults=None) -> "StudyLedger":
        """Parse the on-disk journal.

        A torn or corrupt file raises :class:`LedgerCorruptError` (naming
        the salvage command) instead of leaking a raw
        ``JSONDecodeError``; a missing file still raises
        ``FileNotFoundError``. ``faults`` optionally injects
        ``ledger.load`` faults before the read.
        """
        if faults is not None:
            point = faults.pre_op("ledger.load")
            if point is not None:
                faults.corrupt(point, path)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            raise
        except (ValueError, UnicodeDecodeError, OSError) as exc:
            raise LedgerCorruptError(path, f"unreadable: {exc}") from exc
        if not isinstance(doc, dict):
            raise LedgerCorruptError(path, "not a JSON object")
        version = doc.get("schema_version")
        if version != LEDGER_SCHEMA_VERSION:
            raise LedgerMismatchError(
                f"ledger {path!r} has schema {version!r}, expected "
                f"{LEDGER_SCHEMA_VERSION}"
            )
        try:
            ledger = cls(
                path,
                doc["study"],
                doc["fingerprint"],
                spec=doc.get("spec"),
                cache_dir=doc.get("cache_dir"),
            )
            ledger.created_at = doc.get("created_at", ledger.created_at)
            ledger.updated_at = doc.get("updated_at", ledger.updated_at)
            ledger.stats = dict(doc.get("stats", {}))
            for key in doc.get("order", []):
                entry_doc = doc["jobs"][key]
                ledger.entries[key] = JobEntry(**entry_doc)
                ledger.order.append(key)
        except (KeyError, TypeError) as exc:
            raise LedgerCorruptError(
                path, f"missing or malformed field: {exc}"
            ) from exc
        return ledger

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def mark(self, key: str, status: str, save: bool = True, **fields: Any) -> None:
        """Transition one job and (by default) flush the journal."""
        if status not in _STATUSES:
            raise ValueError(f"unknown status {status!r}")
        entry = self.entries[key]
        entry.status = status
        if status == RUNNING:
            entry.attempts += 1
        for name, value in fields.items():
            setattr(entry, name, value)
        if save:
            self.save()

    def mark_many(self, keys: List[str], status: str, **fields: Any) -> None:
        """Transition a batch (one flush), e.g. a dispatched worker chunk."""
        for key in keys:
            self.mark(key, status, save=False, **fields)
        self.save()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for entry in self.entries.values():
            counts[entry.status] = counts.get(entry.status, 0) + 1
        return counts

    def unfinished(self) -> List[str]:
        """Keys not ``done`` — what a resume re-submits."""
        return [key for key in self.order
                if self.entries[key].status != DONE]

    @property
    def complete(self) -> bool:
        return all(e.status == DONE for e in self.entries.values())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "study": self.study_name,
            "fingerprint": self.fingerprint,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "cache_dir": self.cache_dir,
            "spec": self.spec,
            "stats": dict(self.stats),
            "order": list(self.order),
            "jobs": {key: asdict(self.entries[key]) for key in self.order},
        }

    def save(self) -> None:
        """Atomic flush (tmp + rename); in-memory ledgers are a no-op."""
        if self.path is None:
            return
        fault_point = None
        if self._faults is not None:
            fault_point = self._faults.pre_op("ledger.flush")
        self.updated_at = time.time()
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(self.to_dict(), fh, indent=1)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        if fault_point is not None:
            self._faults.corrupt(fault_point, self.path)

    def describe(self) -> str:
        """Status block for ``repro study status``."""
        counts = self.counts()
        lines = [
            f"study {self.study_name!r} ({self.fingerprint[:12]}), "
            f"{len(self.order)} jobs: "
            + " ".join(f"{s}={counts[s]}" for s in _STATUSES if counts[s]),
        ]
        resilience = {
            k: self.stats[k]
            for k in ("retries", "backoff_s", "quarantined",
                      "cache_quarantined", "pool_degraded")
            if self.stats.get(k)
        }
        if resilience:
            lines.append(
                "  last run: "
                + " ".join(f"{k}={v}" for k, v in resilience.items())
            )
        for key in self.order:
            entry = self.entries[key]
            info = entry.info or {}
            verdict = info.get("verdict")
            detail = f" verdict={verdict}" if verdict else ""
            wall = f" {entry.wall_s:.1f}s" if entry.wall_s is not None else ""
            src = f" ({entry.source})" if entry.source else ""
            err = f" error={entry.error.splitlines()[-1]}" if entry.error else ""
            lines.append(
                f"  [{entry.status:>7}] {entry.label or entry.key[:12]}"
                f"{detail}{wall}{src}{err}"
            )
        return "\n".join(lines)

"""The study scheduler: dedupe, execute, journal, collect.

``run_study`` is the single submit → schedule → collect engine every
experiment runner now rides (Monte-Carlo, all sweeps, the envelope and
chaos/campaign studies):

1. **Dedupe** — each job's content-addressed key is looked up in the
   :class:`repro.parallel.ResultsCache` job-result store; hits are
   collected without running anything.
2. **Execute** — misses run serially in-process (fully instrumented when
   a metrics registry is attached) or sharded across the existing
   :class:`repro.parallel.WorkerPool` in ``default_chunk_size`` chunks.
   Every fresh result is written to the store and journaled in the
   :class:`repro.studies.ledger.StudyLedger` *immediately*, so a killed
   study loses at most the arms in flight.
3. **Collect** — results are returned keyed by job in submission order;
   the compiler's ``collect`` closure folds them into the experiment's
   native result type, byte-identical to the historical serial runners.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.parallel import TaskSpec, WorkerPool, default_chunk_size
from repro.resilience.retry import RetryPolicy
from repro.studies.core import Job, Study
from repro.studies.ledger import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    StudyLedger,
)


class StudyInterrupted(KeyboardInterrupt):
    """The study stopped early (Ctrl-C or ``max_jobs``); ledger is flushed.

    Subclasses :class:`KeyboardInterrupt` so an interactive interrupt still
    unwinds like one; the partially-populated :class:`StudyRun` rides on
    ``.run`` for callers that want to report progress before exiting.
    """

    def __init__(self, run: "StudyRun") -> None:
        super().__init__(f"study {run.study.name!r} interrupted")
        self.run = run


@dataclass
class StudyRun:
    """Mutable outcome of one ``run_study`` call."""

    study: Study
    #: Collected results by job key (cache hits decoded, fresh raw).
    results: Dict[str, Any] = field(default_factory=dict)
    #: Keys actually computed during *this* call (the resume tests assert
    #: finished jobs never re-enter this list).
    executed: List[str] = field(default_factory=list)
    #: Keys satisfied from the content-addressed store.
    cached: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    #: Poisoned jobs parked by ``on_error="quarantine"`` — the study
    #: finished around them, but they are *not* done (a resume retries
    #: them) and the run never reports ``complete``.
    quarantined: List[str] = field(default_factory=list)
    errors: Dict[str, BaseException] = field(default_factory=dict)
    #: True when ``max_jobs`` stopped the run before every job finished.
    interrupted: bool = False
    #: Crash/timeout/flaky-job retries granted during this run.
    retries: int = 0
    #: Total backoff seconds scheduled for those retries.
    backoff_s: float = 0.0
    #: True when the WorkerPool fell back to inline execution.
    pool_degraded: bool = False
    ledger: Optional[StudyLedger] = None

    @property
    def complete(self) -> bool:
        return (not self.failed and not self.quarantined
                and len(self.results) == len(self.study.jobs))

    def collected(self) -> List[Any]:
        """Per-job results in submission order (requires a complete run)."""
        return [self.results[job.key] for job in self.study.jobs]


def _run_job_chunk(jobs: List[Job]) -> List[Any]:
    """Worker task: run a chunk of jobs in order. Module-level so it
    pickles under ``spawn``; only compact results cross back."""
    return [job.run() for job in jobs]


def _wall_buckets():
    from repro.experiments.fault_injection import _WALL_S_BUCKETS

    return _WALL_S_BUCKETS


def run_study(
    study: Study,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    cache=None,
    metrics=None,
    ledger: Optional[StudyLedger] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    max_jobs: Optional[int] = None,
    on_error: str = "raise",
    faults=None,
    retry_policy: Optional[RetryPolicy] = None,
) -> StudyRun:
    """Schedule a compiled study; return the (possibly partial) run.

    Parameters
    ----------
    executor, max_workers, task_timeout:
        Same semantics as the historical runners: ``"serial"`` in-process,
        ``"process"`` via :class:`WorkerPool` with per-chunk timeout and
        retry-once-on-crash.
    cache:
        The content-addressed job-result store. Hits skip arms entirely;
        fresh results are stored under the job key the moment they land.
    metrics:
        Optional registry. Serial arms run fully instrumented; process
        studies record per-chunk wall times, and cache hit/miss/disabled
        gauges are exported either way.
    ledger:
        Optional :class:`StudyLedger`; every status transition is flushed
        atomically, making the study resumable after a kill.
    progress:
        Callback receiving one dict per completed job
        (``{"index", "total", "label", "status", "source", "wall_s",
        "info", "error"}``) — the CLI's streaming per-job lines.
    max_jobs:
        Stop after this many *fresh* executions (cache hits are free) and
        mark the run ``interrupted`` — the deliberate-interrupt hook the
        resume tests and the CI smoke use.
    on_error:
        ``"raise"`` (library default) re-raises the first job error after
        flushing the ledger — matching the historical fail-fast runners.
        ``"continue"`` marks the job ``failed`` and keeps going, so one
        bad arm cannot sink a multi-hour study. ``"quarantine"`` parks a
        job that failed every allowed attempt as ``quarantined`` in the
        ledger (error attached) and keeps going — the study completes
        with a partial verdict; the run never reports ``complete``, and
        a resume retries quarantined jobs.
    faults:
        Optional :class:`repro.resilience.FaultInjector`; attached to
        the cache, ledger, and pool for the duration of the run (pass
        ``None`` to guarantee a clean run on shared objects).
    retry_policy:
        Optional :class:`repro.resilience.RetryPolicy` governing both
        the WorkerPool (crash/timeout retries, default retry-once) and
        the serial executor (task-exception retries for flaky/injected
        failures; historical default: one attempt, no retry).
    """
    if executor not in ("serial", "process"):
        raise ValueError(f"unknown executor {executor!r}")
    if on_error not in ("raise", "continue", "quarantine"):
        raise ValueError(f"unknown on_error {on_error!r}")
    run = StudyRun(study=study, ledger=ledger)
    if cache is not None:
        attach = getattr(cache, "attach_faults", None)
        if attach is not None:
            attach(faults)
    if ledger is not None:
        ledger.attach_faults(faults)
    if cache is not None and metrics is not None:
        attach = getattr(cache, "attach_metrics", None)
        if attach is not None:
            attach(metrics)
    total = len(study.jobs)
    emitted = 0

    def emit(job: Job, status: str, source: str, wall_s=None,
             info=None, error=None) -> None:
        nonlocal emitted
        emitted += 1
        if progress is not None:
            progress({
                "index": emitted, "total": total, "key": job.key,
                "label": job.label, "kind": job.kind, "status": status,
                "source": source, "wall_s": wall_s, "info": info,
                "error": error,
            })

    def record_done(job: Job, result: Any, source: str, wall_s=None) -> None:
        run.results[job.key] = result
        info = study.summarize(result) if study.summarize else None
        if ledger is not None:
            ledger.mark(job.key, DONE, source=source, wall_s=wall_s,
                        info=info)
        emit(job, DONE, source, wall_s=wall_s, info=info)

    # ------------------------------------------------------------------
    # Dedupe: satisfy what the job-result store already holds.
    # ------------------------------------------------------------------
    to_run: List[Job] = []
    for job in study.jobs:
        payload = cache.get(job.key) if cache is not None else None
        if payload is not None:
            run.cached.append(job.key)
            record_done(job, study.decode(payload), "cache")
        else:
            to_run.append(job)

    if max_jobs is not None and len(to_run) > max_jobs:
        to_run = to_run[:max_jobs]
        run.interrupted = True

    def store(job: Job, result: Any) -> None:
        run.results[job.key] = result
        run.executed.append(job.key)
        if cache is not None:
            cache.put(job.key, study.encode(result))

    # ------------------------------------------------------------------
    # Execute the remainder.
    # ------------------------------------------------------------------
    try:
        if to_run and executor == "process":
            _run_process(study, to_run, run, max_workers, task_timeout,
                         metrics, ledger, store, record_done, emit, on_error,
                         faults, retry_policy)
        elif to_run:
            _run_serial(study, to_run, run, metrics, ledger, store,
                        record_done, emit, on_error, faults, retry_policy)
    except KeyboardInterrupt:
        run.interrupted = True
        _finalize(run, cache, metrics, ledger)
        raise StudyInterrupted(run) from None

    _finalize(run, cache, metrics, ledger)
    return run


_NOT_DONE = object()  # sentinel: a job may legitimately return None


def _run_serial(study, to_run, run, metrics, ledger, store, record_done,
                emit, on_error, faults, retry_policy) -> None:
    arm_hist = None
    if metrics is not None:
        arm_hist = metrics.histogram(
            f"{study.metrics_prefix}.arm_seconds", edges=_wall_buckets()
        )
    policy = retry_policy or RetryPolicy(max_attempts=1)
    for position, job in enumerate(to_run):
        if ledger is not None:
            ledger.mark(job.key, RUNNING)
        arm_start = time.perf_counter()
        result = _NOT_DONE
        attempt = 0
        while result is _NOT_DONE:
            try:
                if faults is not None:
                    faults.pre_op("job.fn")
                result = job.run(metrics=metrics)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                attempt += 1
                if attempt < policy.max_attempts:
                    # A flaky (or injected-probabilistic) failure may
                    # heal on retry; a deterministic job reproduces the
                    # same bytes, so retrying never changes science.
                    delay = policy.delay_s(position, attempt)
                    run.retries += 1
                    run.backoff_s += delay
                    if delay > 0:
                        time.sleep(delay)
                    if ledger is not None:
                        ledger.mark(job.key, RUNNING)  # counts the attempt
                    continue
                _record_failure(run, job, exc, ledger, emit,
                                quarantine=(on_error == "quarantine"))
                if on_error == "raise":
                    raise
                break
        if result is _NOT_DONE:
            continue  # failed/quarantined; already recorded
        wall = time.perf_counter() - arm_start
        if arm_hist is not None:
            arm_hist.observe(wall)
        store(job, result)
        record_done(job, result, "executed", wall_s=wall)


def _run_process(study, to_run, run, max_workers, task_timeout, metrics,
                 ledger, store, record_done, emit, on_error, faults,
                 retry_policy) -> None:
    workers = max_workers or WorkerPool().max_workers
    chunk = default_chunk_size(len(to_run), workers)
    chunks: List[List[Job]] = [
        to_run[i:i + chunk] for i in range(0, len(to_run), chunk)
    ]
    pool = WorkerPool(max_workers=workers, task_timeout=task_timeout,
                      retry_policy=retry_policy)
    pool.attach_faults(faults)
    if ledger is not None:
        ledger.mark_many([j.key for c in chunks for j in c], RUNNING)

    def on_chunk_done(index: int, results: List[Any]) -> None:
        # Parent-side, invoked the moment a chunk lands: persist and
        # journal immediately so a later kill loses only in-flight arms.
        for job, result in zip(chunks[index], results):
            store(job, result)
            record_done(job, result, "executed")

    _, errors = pool.map_partial(
        [TaskSpec(fn=_run_job_chunk, args=(c,)) for c in chunks],
        on_result=on_chunk_done,
    )
    run.retries += pool.retry_count
    run.backoff_s += pool.backoff_total_s
    run.pool_degraded = run.pool_degraded or pool.degraded
    if metrics is not None:
        chunk_hist = metrics.histogram(
            f"{study.metrics_prefix}.chunk_seconds", edges=_wall_buckets()
        )
        for seconds in pool.task_seconds:
            chunk_hist.observe(seconds)
    if errors:
        for index in sorted(errors):
            for job in chunks[index]:
                if job.key not in run.results:
                    _record_failure(run, job, errors[index], ledger, emit,
                                    quarantine=(on_error == "quarantine"))
        if on_error == "raise":
            raise errors[min(errors)]


def _record_failure(run, job, exc, ledger, emit, quarantine=False) -> None:
    message = f"{type(exc).__name__}: {exc}"
    status = QUARANTINED if quarantine else FAILED
    (run.quarantined if quarantine else run.failed).append(job.key)
    run.errors[job.key] = exc
    if ledger is not None:
        ledger.mark(job.key, status, error=message)
    emit(job, status, "executed", error=message)


def _finalize(run: StudyRun, cache, metrics, ledger) -> None:
    """Export cache gauges, persist store stats, flush the ledger."""
    if metrics is not None and cache is not None:
        lookups = cache.hits + cache.misses
        metrics.gauge("cache.hits").set(cache.hits)
        metrics.gauge("cache.misses").set(cache.misses)
        metrics.gauge("cache.hit_rate").set(
            cache.hits / lookups if lookups else 0.0
        )
        metrics.gauge("cache.disabled").set(int(cache.disabled))
    if metrics is not None:
        # Run-level resilience counters (the cache's own
        # ``cache.quarantined`` counter increments live in get()).
        if run.retries:
            metrics.counter("pool.retries").inc(run.retries)
        metrics.gauge("pool.backoff_seconds").set(run.backoff_s)
        metrics.gauge("pool.degraded").set(int(run.pool_degraded))
        if run.quarantined:
            metrics.counter("study.jobs_quarantined").inc(
                len(run.quarantined)
            )
    if cache is not None:
        write_stats = getattr(cache, "write_stats", None)
        if write_stats is not None:
            write_stats()
    if ledger is not None:
        ledger.stats = {
            "executed": len(run.executed),
            "cached": len(run.cached),
            "failed": len(run.failed),
            "quarantined": len(run.quarantined),
            "retries": run.retries,
            "backoff_s": run.backoff_s,
            "pool_degraded": run.pool_degraded,
            "interrupted": run.interrupted,
            "cache_disabled": bool(cache is not None and cache.disabled),
            "cache_quarantined": int(
                getattr(cache, "quarantined", 0) if cache is not None else 0
            ),
        }
        ledger.save()

"""JSON study specs: declarative inputs for ``repro-sim study run``.

A spec is a small JSON document naming a study *kind* plus its knobs; it
compiles — through the exact same compiler the library entry points use —
into a :class:`repro.studies.StudyPlan`, so a spec-driven CLI study is
byte-identical to the equivalent ``run_monte_carlo`` / ``sweep_*`` /
``sweep_envelope`` / ``run_chaos_study`` call. The spec is embedded in the
study ledger verbatim, which is what makes ``repro study resume LEDGER``
self-contained: the ledger alone recompiles the job set, and the
fingerprint check proves it is the *same* job set.

Kinds and their fields (all durations in seconds of simulated time):

``montecarlo``
    ``seeds`` (list) or ``base_seed``+``runs``; ``hours``; ``scenario``.
``sweep``
    ``study`` (one of the canned axes: domains, interval, aggregation,
    threshold, topology, hopcount, faultbudget, lossrate, attackbudget);
    ``values`` (optional axis override); ``seed``; ``duration_s``;
    ``warmup_records``; ``fidelity``; ``scenario``.
``envelope``
    ``scenarios`` (list); ``seed``; ``duration_s``; ``attack_check``;
    ``attack_colluders``; ``fidelity``.
``chaos``
    ``seeds`` (list); ``duration_s``; ``scenario``; ``fidelity``; and the
    impairment — ``loss`` (+ ``loss_start_s``) and/or ``colluders``
    (+ ``margin``, ``attack_start_s``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.sim.timebase import SECONDS
from repro.studies.core import StudyPlan

SPEC_SCHEMA_VERSION = 1

KINDS = ("montecarlo", "sweep", "envelope", "chaos")

#: Canned sweep axes whose ``values`` parameter goes by another name.
_SWEEP_VALUES_PARAM = {
    "interval": "values_ms",
    "threshold": "values_us",
}


def load_spec(path: str) -> Dict[str, Any]:
    """Read and validate a study-spec JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    return validate_spec(spec)


def validate_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Shape-check a spec document; returns it unchanged on success."""
    if not isinstance(spec, dict):
        raise ValueError("study spec must be a JSON object")
    version = spec.get("schema_version", SPEC_SCHEMA_VERSION)
    if version != SPEC_SCHEMA_VERSION:
        raise ValueError(
            f"study spec schema {version!r} unsupported "
            f"(expected {SPEC_SCHEMA_VERSION})"
        )
    kind = spec.get("kind")
    if kind not in KINDS:
        raise ValueError(
            f"unknown study kind {kind!r} (expected one of {', '.join(KINDS)})"
        )
    return spec


def spec_name(spec: Dict[str, Any]) -> str:
    """Display name: explicit ``name`` or a kind-derived default."""
    if spec.get("name"):
        return str(spec["name"])
    if spec["kind"] == "sweep":
        return f"sweep:{spec.get('study', '?')}"
    return str(spec["kind"])


def _duration_ns(spec: Dict[str, Any], default_s: float) -> int:
    return round(float(spec.get("duration_s", default_s)) * SECONDS)


def _plan_montecarlo(spec: Dict[str, Any]) -> StudyPlan:
    from repro.experiments.fault_injection import (
        FaultInjectionExperimentConfig,
    )
    from repro.experiments.montecarlo import compile_monte_carlo

    seeds = spec.get("seeds")
    if seeds is None:
        base_seed = int(spec.get("base_seed", 100))
        seeds = list(range(base_seed, base_seed + int(spec.get("runs", 5))))
    base_config = None
    if spec.get("scenario"):
        from repro.scenarios import resolve_scenario

        base_config = FaultInjectionExperimentConfig(
            scenario=resolve_scenario(spec["scenario"])
        )
    return compile_monte_carlo(
        [int(seed) for seed in seeds],
        base_config=base_config,
        hours=float(spec.get("hours", 0.1)),
    )


def _plan_sweep(spec: Dict[str, Any]) -> StudyPlan:
    from repro.experiments import sweeps as sw

    runners = {
        "domains": sw.sweep_domain_count,
        "interval": sw.sweep_sync_interval,
        "aggregation": sw.sweep_aggregation,
        "threshold": sw.sweep_validity_threshold,
        "topology": sw.sweep_topology,
        "hopcount": sw.sweep_hop_count,
        "faultbudget": sw.sweep_fault_budget,
        "lossrate": sw.sweep_loss_rate,
        "attackbudget": sw.sweep_attack_budget,
    }
    study = spec.get("study")
    if study not in runners:
        raise ValueError(
            f"unknown sweep study {study!r} "
            f"(expected one of {', '.join(sorted(runners))})"
        )
    default_s = 900.0 if study == "attackbudget" else 120.0
    kwargs: Dict[str, Any] = {
        "seed": int(spec.get("seed", 9)),
        "duration": _duration_ns(spec, default_s),
        "scenario": spec.get("scenario"),
        "fidelity": spec.get("fidelity", "full"),
        "compile_only": True,
    }
    if "warmup_records" in spec:
        kwargs["warmup_records"] = int(spec["warmup_records"])
    if "values" in spec:
        values = spec["values"]
        if study == "faultbudget":
            # (f, M) pairs arrive as JSON arrays; the axis wants tuples.
            values = [tuple(v) for v in values]
        kwargs[_SWEEP_VALUES_PARAM.get(study, "values")] = values
    return runners[study](**kwargs)


def _plan_envelope(spec: Dict[str, Any]) -> StudyPlan:
    from repro.experiments.sweeps import ENVELOPE_SCENARIOS, sweep_envelope

    kwargs: Dict[str, Any] = {
        "scenarios": tuple(spec.get("scenarios", ENVELOPE_SCENARIOS)),
        "seed": int(spec.get("seed", 9)),
        "duration": _duration_ns(spec, 120.0),
        "attack_check": bool(spec.get("attack_check", True)),
        "attack_colluders": int(spec.get("attack_colluders", 2)),
        "compile_only": True,
    }
    if "warmup_records" in spec:
        kwargs["warmup_records"] = int(spec["warmup_records"])
    if spec.get("fidelity"):
        kwargs["fidelity"] = spec["fidelity"]
    return sweep_envelope(**kwargs)


def _plan_chaos(spec: Dict[str, Any]) -> StudyPlan:
    from repro.experiments.chaos import (
        ChaosExperimentConfig,
        run_chaos_study,
    )

    scenario = None
    if spec.get("scenario"):
        from repro.scenarios import resolve_scenario

        scenario = resolve_scenario(spec["scenario"])
    plan = None
    if spec.get("loss") is not None:
        from repro.chaos.plan import single_loss_plan

        plan = single_loss_plan(
            float(spec["loss"]),
            start=round(float(spec.get("loss_start_s", 60.0)) * SECONDS),
        )
    campaign = None
    if spec.get("colluders"):
        from repro.experiments.testbed import TestbedConfig
        from repro.security.campaigns import (
            colluder_campaign,
            default_gm_names,
        )

        seeds = spec.get("seeds", [1])
        base = (
            scenario.testbed_config(seed=int(seeds[0]))
            if scenario is not None
            else TestbedConfig(seed=int(seeds[0]))
        )
        gm_names = default_gm_names(
            base.n_devices,
            n_domains=(scenario.effective_domains
                       if scenario is not None else None),
            gm_placement=base.gm_placement,
        )
        campaign = colluder_campaign(
            int(spec["colluders"]),
            gm_names,
            margin=float(spec.get("margin", 0.8)),
            start=round(float(spec.get("attack_start_s", 60.0)) * SECONDS),
        )
    configs = [
        ChaosExperimentConfig(
            duration=_duration_ns(spec, 480.0),
            seed=int(seed),
            scenario=scenario,
            plan=plan,
            campaign=campaign,
            fidelity=spec.get("fidelity", "full"),
        )
        for seed in spec.get("seeds", [1])
    ]
    return run_chaos_study(configs, compile_only=True)


_PLANNERS = {
    "montecarlo": _plan_montecarlo,
    "sweep": _plan_sweep,
    "envelope": _plan_envelope,
    "chaos": _plan_chaos,
}


def plan_from_spec(spec: Dict[str, Any]) -> StudyPlan:
    """Compile a validated spec into its :class:`StudyPlan`."""
    spec = validate_spec(spec)
    return _PLANNERS[spec["kind"]](spec)


def run_payload(spec: Dict[str, Any], plan: StudyPlan, run) -> Dict[str, Any]:
    """JSON-able outcome of a (possibly partial) spec-driven run.

    A complete run collects through the compiler — the rows/outcomes are
    exactly what the library entry point would have returned — while a
    partial or failed run degrades to per-job ledger-style statuses, so
    ``study run`` output is always well-formed.
    """
    study = plan.study
    payload: Dict[str, Any] = {
        "kind": spec["kind"],
        "name": spec_name(spec),
        "fingerprint": study.fingerprint(),
        "jobs": len(study.jobs),
        "executed": len(run.executed),
        "cached": len(run.cached),
        "failed": len(run.failed),
        "quarantined": len(run.quarantined),
        "retries": run.retries,
        "backoff_s": run.backoff_s,
        "interrupted": run.interrupted,
        "complete": run.complete,
    }
    if run.quarantined and run.results and plan.study.summarize:
        # The partial verdict a quarantined study still delivers: the
        # worst per-job verdict over the jobs that did finish.
        verdicts = [
            (plan.study.summarize(result) or {}).get("verdict")
            for result in run.results.values()
        ]
        verdicts = [v for v in verdicts if v]
        if verdicts:
            order = {"FAIL": 0, "DEGRADED": 1, "PASS": 2}
            payload["partial_verdict"] = min(
                verdicts, key=lambda v: order.get(v, 0)
            )
            payload["partial_over_jobs"] = len(run.results)
    if run.complete:
        result = plan.collect(run)
        if spec["kind"] == "montecarlo":
            payload["result"] = {
                "bounded_rate": result.bounded_rate,
                "verdict": result.verdict,
                "mean_of_means_ns": result.mean_of_means(),
                "worst_max_ns": result.worst_max(),
                "outcomes": [
                    study.encode(outcome) for outcome in result.outcomes
                ],
            }
        else:
            payload["result"] = {"rows": [row.as_dict() for row in result]}
            if spec["kind"] == "envelope":
                from repro.experiments.sweeps import envelope_verdict

                payload["result"]["verdict"] = envelope_verdict(result)
    else:
        payload["errors"] = {
            key: f"{type(exc).__name__}: {exc}"
            for key, exc in run.errors.items()
        }
    return payload


def render_run(spec: Dict[str, Any], plan: StudyPlan, run) -> str:
    """Human-readable outcome block for ``study run`` / ``resume``."""
    study = plan.study
    quarantined = (f", {len(run.quarantined)} quarantined"
                   if run.quarantined else "")
    retried = f", {run.retries} retries" if run.retries else ""
    head = (
        f"study {spec_name(spec)!r} ({study.fingerprint()[:12]}): "
        f"{len(run.results)}/{len(study.jobs)} done "
        f"({len(run.executed)} executed, {len(run.cached)} cached, "
        f"{len(run.failed)} failed{quarantined}{retried})"
    )
    if not run.complete:
        if run.quarantined:
            state = (f"{len(run.quarantined)} jobs quarantined "
                     "(poisoned; errors in the ledger)")
        elif run.interrupted:
            state = "interrupted"
        else:
            state = "incomplete"
        return f"{head} — {state}; resume with 'study resume LEDGER'"
    result = plan.collect(run)
    if spec["kind"] == "montecarlo":
        return head + "\n" + result.to_text()
    if spec["kind"] == "sweep":
        from repro.experiments.sweeps import render_rows

        return head + "\n" + render_rows(result)
    if spec["kind"] == "envelope":
        from repro.analysis.report import render_envelope
        from repro.experiments.sweeps import envelope_verdict

        return (head + "\n" + render_envelope(result)
                + f"\nenvelope verdict: {envelope_verdict(result)}")
    lines = [head]
    for row in result:
        lines.append(
            f"  {row.label}: verdict={row.verdict} probes={row.probes} "
            f"max={row.max_precision_ns:.0f}ns "
            f"({'within' if row.bounded else 'VIOLATES'} "
            f"bound={row.bound_ns:.0f}ns)"
        )
    return "\n".join(lines)


def collect_from_ledger(ledger) -> Optional[List[str]]:
    """Convenience: unfinished keys of a loaded ledger (None if complete)."""
    unfinished = ledger.unfinished()
    return unfinished or None

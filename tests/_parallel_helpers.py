"""Module-level task functions for the WorkerPool tests.

Worker tasks must be picklable under the ``spawn`` start method, so they
live here (a plain module, not a test file) rather than as closures inside
the tests.
"""

import os
import time


def square(x):
    return x * x


def slow_square(x, delay):
    time.sleep(delay)
    return x * x


def raise_value_error(message):
    raise ValueError(message)


def crash(code=13):
    """Die without reporting a result — simulates a segfault/OOM-kill."""
    os._exit(code)


def crash_once_then(marker_path, value):
    """Crash on the first attempt, succeed on the retry.

    Uses a filesystem marker because worker processes share no memory.
    """
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        os._exit(23)
    return value


def hang_once_then(marker_path, value, hang_seconds=60.0):
    """Wedge on the first attempt, succeed on the retry."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        time.sleep(hang_seconds)
    return value

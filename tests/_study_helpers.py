"""Module-level job functions for the study-pipeline tests.

Jobs dispatched to the process executor must pickle under the ``spawn``
start method, so these live in a plain module rather than as closures
inside the tests (same pattern as ``_parallel_helpers``).
"""

import os
import time


def double(x):
    return 2 * x


def double_with_metrics(x, metrics=None):
    if metrics is not None:
        metrics.counter("helper.calls").inc()
    return 2 * x


def slow_double(x, delay=0.0):
    time.sleep(delay)
    return 2 * x


def boom(x):
    raise RuntimeError(f"boom on {x}")


def interrupt(x):
    raise KeyboardInterrupt


def crash_once_then_double(marker_path, x):
    """Die without a result on the first attempt (pool retry path)."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w"):
            pass
        os._exit(31)
    return 2 * x


def crash_always(x):
    os._exit(37)

"""Test-tier plumbing: the ``slow``/``fast`` marker split.

The tier-1 command (``python -m pytest -x -q``) excludes ``slow`` tests by
default via the ``-m "not slow"`` in ``addopts`` (pyproject.toml). Two ways
to run the full suite:

* ``python -m pytest --runslow`` — clears the default marker filter.
* ``python -m pytest -m "slow or not slow"`` — a later ``-m`` overrides
  the one from ``addopts``.

Every test not marked ``slow`` is automatically tagged ``fast``, so the
fast tier can also be selected explicitly with ``-m fast``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run the slow tier too (clears the default -m 'not slow')",
    )


def pytest_configure(config):
    if config.getoption("--runslow") and config.option.markexpr == "not slow":
        config.option.markexpr = ""


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.fast)

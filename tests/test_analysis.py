"""Unit tests for aggregation, histogram, timeline, and report rendering."""

import pytest

from repro.analysis.aggregate import aggregate_series
from repro.analysis.histogram import histogram
from repro.analysis.report import render_histogram, render_series, render_timeline
from repro.analysis.timeline import extract_timeline
from repro.sim.timebase import MINUTES, SECONDS
from repro.sim.trace import TraceLog


class TestAggregate:
    def test_bucketing_average_min_max(self):
        series = [(i * SECONDS, float(i % 5)) for i in range(300)]
        buckets = aggregate_series(series, bucket=120 * SECONDS)
        assert len(buckets) == 3
        b = buckets[0]
        assert b.count == 120
        assert b.minimum == 0.0 and b.maximum == 4.0
        assert b.mean == pytest.approx(2.0)

    def test_gap_produces_no_bucket(self):
        series = [(0, 1.0), (500 * SECONDS, 2.0)]
        buckets = aggregate_series(series, bucket=120 * SECONDS)
        assert len(buckets) == 2
        assert buckets[0].start == 0
        assert buckets[1].start == 480 * SECONDS

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            aggregate_series([], bucket=0)

    def test_empty_series(self):
        assert aggregate_series([]) == []


class TestHistogram:
    def test_annotation_stats_cover_all_values(self):
        values = [100.0] * 99 + [10_080.0]
        h = histogram(values, bins=10, range_max=1000.0)
        assert h.maximum == 10_080.0
        assert h.n == 100
        # The outlier lands in the last bin rather than vanishing.
        assert h.counts[-1] == 1
        assert sum(h.counts) == 100

    def test_paper_like_annotation_format(self):
        h = histogram([322.0, 322.0], bins=4, range_max=1000.0)
        text = h.describe()
        assert "avg = 322ns" in text and "std = 0ns" in text

    def test_mean_and_std(self):
        h = histogram([0.0, 10.0], bins=2, range_max=10.0)
        assert h.mean == 5.0
        assert h.std == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)


class TestTimeline:
    def build_trace(self):
        trace = TraceLog()
        trace.emit(10 * MINUTES, "fault.fail_silent", "c2_1", reason="injected-gm")
        trace.emit(12 * MINUTES, "fault.fail_silent", "c3_2", reason="injected-redundant")
        trace.emit(12 * MINUTES + 30 * SECONDS, "hypervisor.takeover", "c3_1")
        trace.emit(15 * MINUTES, "ptp4l.tx_timeout", "c1_1")
        trace.emit(90 * MINUTES, "fault.fail_silent", "c1_1")  # outside window
        return trace

    GM_DOMAINS = {"c1_1": 1, "c2_1": 2, "c3_1": 3, "c4_1": 4}

    def test_extraction_classifies_and_windows(self):
        timeline = extract_timeline(
            self.build_trace(), start=0, end=60 * MINUTES,
            gm_domain_of=self.GM_DOMAINS,
        )
        counts = timeline.counts()
        assert counts == {
            "gm_failure": 1, "vm_failure": 1, "takeover": 1, "transient": 1
        }
        gm = timeline.of_kind("gm_failure")[0]
        assert gm.source == "c2_1" and gm.domain == 2
        vm = timeline.of_kind("vm_failure")[0]
        assert vm.domain is None

    def test_events_sorted_by_time(self):
        timeline = extract_timeline(
            self.build_trace(), 0, 60 * MINUTES, self.GM_DOMAINS
        )
        times = [e.time for e in timeline.events]
        assert times == sorted(times)


class TestReportRendering:
    def test_series_rendering_flags_violations(self):
        buckets = aggregate_series(
            [(0, 100.0), (SECONDS, 50_000.0)], bucket=120 * SECONDS
        )
        text = render_series(buckets, bound=12_636.0, bound_with_error=13_949.0)
        assert "VIOLATION" in text
        assert "Π" in text

    def test_series_rendering_without_bound(self):
        buckets = aggregate_series([(0, 100.0)], bucket=120 * SECONDS)
        text = render_series(buckets)
        assert "VIOLATION" not in text

    def test_histogram_rendering(self):
        h = histogram([10.0, 20.0, 500.0], bins=5, range_max=1000.0)
        text = render_histogram(h)
        assert "avg =" in text and "#" in text

    def test_timeline_rendering(self):
        trace = TraceLog()
        trace.emit(10 * MINUTES, "fault.fail_silent", "c2_1")
        trace.emit(11 * MINUTES, "hypervisor.takeover", "c2_2")
        timeline = extract_timeline(trace, 0, 60 * MINUTES, {"c2_1": 2})
        text = render_timeline(timeline)
        assert "▼" in text and "★" in text and "dom2" in text
        assert "totals:" in text

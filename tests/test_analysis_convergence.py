"""Tests for convergence-time analysis."""

import pytest

from repro.analysis.convergence import analyze_convergence
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.sim.timebase import MINUTES, SECONDS
from repro.sim.trace import TraceLog


class TestSyntheticTraces:
    def test_cold_start_extraction(self):
        trace = TraceLog()
        trace.emit(20 * SECONDS, "fta.ft_mode_entered", "c1_1.fta")
        trace.emit(25 * SECONDS, "fta.ft_mode_entered", "c1_2.fta")
        report = analyze_convergence(trace)
        assert report.cold_start_ns == {
            "c1_1": 20 * SECONDS, "c1_2": 25 * SECONDS
        }
        assert report.slowest_cold_start == 25 * SECONDS
        assert report.reintegration_ns == []
        assert report.mean_reintegration is None

    def test_reintegration_measured_from_reboot(self):
        trace = TraceLog()
        trace.emit(20 * SECONDS, "fta.ft_mode_entered", "c1_1.fta")
        trace.emit(5 * MINUTES, "vm.rebooted", "c1_1")
        trace.emit(5 * MINUTES + 40 * SECONDS, "fta.ft_mode_entered", "c1_1.fta")
        report = analyze_convergence(trace)
        assert report.cold_start_ns == {"c1_1": 20 * SECONDS}
        assert report.reintegration_ns == [40 * SECONDS]
        assert report.worst_reintegration == 40 * SECONDS

    def test_empty_trace(self):
        report = analyze_convergence(TraceLog())
        assert report.slowest_cold_start is None
        assert report.worst_reintegration is None


@pytest.mark.slow
class TestOnRealRun:
    def test_full_testbed_convergence_times(self):
        tb = Testbed(TestbedConfig(seed=51))
        tb.run_until(2 * MINUTES)
        vm = tb.vms["c3_2"]
        vm.fail_silent()  # 30 s boot
        tb.run_until(tb.sim.now + 4 * MINUTES)
        report = analyze_convergence(tb.trace)
        # Every VM cold-started into FT operation...
        assert set(report.cold_start_ns) == set(tb.vms)
        assert report.slowest_cold_start < 60 * SECONDS
        # ...and the rebooted VM re-integrated within a couple of minutes.
        assert len(report.reintegration_ns) == 1
        assert report.reintegration_ns[0] < 3 * MINUTES

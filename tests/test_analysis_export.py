"""Tests for the CSV/JSONL exporters."""

import csv
import json

from repro.analysis.aggregate import aggregate_series
from repro.analysis.export import (
    write_buckets_csv,
    write_experiment_bundle,
    write_histogram_csv,
    write_series_csv,
    write_timeline_csv,
    write_trace_jsonl,
)
from repro.analysis.histogram import histogram
from repro.analysis.timeline import extract_timeline
from repro.sim.timebase import MINUTES, SECONDS
from repro.sim.trace import TraceLog


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestCsvWriters:
    def test_series(self, tmp_path):
        path = tmp_path / "series.csv"
        n = write_series_csv(path, [(0, 100.0), (SECONDS, 200.5)])
        rows = read_csv(path)
        assert n == 2
        assert rows[0] == ["time_ns", "precision_ns"]
        assert rows[1] == ["0", "100.000"]
        assert rows[2] == [str(SECONDS), "200.500"]

    def test_buckets(self, tmp_path):
        buckets = aggregate_series([(0, 1.0), (1, 3.0)], bucket=120 * SECONDS)
        path = tmp_path / "buckets.csv"
        assert write_buckets_csv(path, buckets) == 1
        rows = read_csv(path)
        assert rows[1][2] == "2"  # count
        assert rows[1][3] == "2.000"  # mean

    def test_histogram(self, tmp_path):
        h = histogram([10.0, 20.0, 900.0], bins=10, range_max=1000.0)
        path = tmp_path / "hist.csv"
        assert write_histogram_csv(path, h) == 10
        rows = read_csv(path)
        assert sum(int(r[2]) for r in rows[1:]) == 3

    def test_timeline(self, tmp_path):
        trace = TraceLog()
        trace.emit(5 * MINUTES, "fault.fail_silent", "c2_1")
        trace.emit(6 * MINUTES, "hypervisor.takeover", "c2_2")
        timeline = extract_timeline(trace, 0, 10 * MINUTES, {"c2_1": 2})
        path = tmp_path / "timeline.csv"
        assert write_timeline_csv(path, timeline) == 2
        rows = read_csv(path)
        assert rows[1][1] == "gm_failure"
        assert rows[1][3] == "2"
        assert rows[2][1] == "takeover"
        assert rows[2][3] == ""


class TestTraceJsonl:
    def test_full_dump_and_filter(self, tmp_path):
        trace = TraceLog()
        trace.emit(1, "fault.fail_silent", "a", reason="x")
        trace.emit(2, "ptp4l.tx_timeout", "b")
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(path, trace) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["category"] == "fault.fail_silent"
        assert lines[0]["reason"] == "x"
        assert write_trace_jsonl(path, trace, prefix="fault.") == 1


class TestBundle:
    def test_fault_injection_bundle(self, tmp_path):
        from repro.experiments.fault_injection import (
            FaultInjectionExperimentConfig,
            run_fault_injection_experiment,
        )

        result = run_fault_injection_experiment(
            FaultInjectionExperimentConfig(seed=4).scaled(0.05)
        )
        written = write_experiment_bundle(tmp_path / "out", result)
        assert set(written) == {
            "series.csv", "buckets.csv", "histogram.csv",
            "timeline.csv", "summary.txt",
        }
        assert (tmp_path / "out" / "summary.txt").read_text().startswith(
            "fault injection experiment"
        )
        assert written["series.csv"] > 0

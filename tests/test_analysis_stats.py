"""Tests for the clock-stability statistics."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    allan_deviation,
    allan_deviation_curve,
    longest_run_below,
    percentile,
    tail_summary,
)


class TestAllanDeviation:
    def test_linear_ramp_is_zero(self):
        phase = [2.5 * i for i in range(64)]
        assert allan_deviation(phase, 1.0, m=1) == 0.0
        assert allan_deviation(phase, 1.0, m=8) == 0.0

    def test_white_phase_noise_scales_down_with_tau(self):
        rng = random.Random(5)
        phase = [rng.gauss(0, 10.0) for _ in range(4096)]
        short = allan_deviation(phase, 1.0, m=1)
        long = allan_deviation(phase, 1.0, m=16)
        # White PM: ADEV ~ tau^-1; expect a strong decrease.
        assert long < short / 4

    def test_known_small_case(self):
        # x = [0, 1, 0]: single second difference = 0 - 2 + 0 = -2
        # avar = 4 / (2 * 1 * 1) = 2 -> adev = sqrt(2)
        assert allan_deviation([0.0, 1.0, 0.0], 1.0, m=1) == pytest.approx(
            math.sqrt(2.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            allan_deviation([1.0, 2.0], 1.0, m=1)  # too short
        with pytest.raises(ValueError):
            allan_deviation([1.0, 2.0, 3.0], 1.0, m=0)

    def test_curve_octave_spacing(self):
        phase = [float(i % 7) for i in range(200)]
        curve = allan_deviation_curve(phase, 0.5)
        taus = [tau for tau, _ in curve]
        assert taus[0] == 0.5
        for a, b in zip(taus, taus[1:]):
            assert b == 2 * a

    def test_curve_too_short(self):
        with pytest.raises(ValueError):
            allan_deviation_curve([1.0, 2.0], 1.0)


class TestPercentiles:
    def test_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                    max_size=50),
           st.floats(0, 100))
    def test_percentile_within_range(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=2,
                    max_size=50))
    def test_percentiles_monotone(self, values):
        p10, p90 = percentile(values, 10), percentile(values, 90)
        assert p10 <= p90 or math.isclose(p10, p90)  # tolerate 1-ULP ties

    def test_tail_summary(self):
        values = [float(i) for i in range(1, 1001)]
        s = tail_summary(values)
        assert s.p50 == pytest.approx(500.5)
        assert s.p99 == pytest.approx(990.01, abs=0.2)
        assert s.maximum == 1000.0
        assert "p99" in s.describe()


class TestLongestRun:
    def test_basic_runs(self):
        series = [(0, 1.0), (10, 1.0), (20, 9.0), (30, 1.0), (50, 1.0)]
        assert longest_run_below(series, bound=5.0) == 20  # 30..50

    def test_all_below(self):
        series = [(0, 1.0), (100, 2.0)]
        assert longest_run_below(series, bound=5.0) == 100

    def test_all_above(self):
        series = [(0, 9.0), (100, 9.0)]
        assert longest_run_below(series, bound=5.0) == 0

    def test_empty(self):
        assert longest_run_below([], bound=1.0) == 0

"""Live BMCA integration: election, sync flow, and GM failover."""

import random

import pytest

from repro.clocks.oscillator import OscillatorModel
from repro.gptp.bmca import BmcaRunner, PriorityVector
from repro.gptp.domain import DomainConfig
from repro.gptp.instance import GptpStack, OffsetSample
from repro.network.link import Link, LinkModel
from repro.network.nic import Nic, NicModel
from repro.sim.kernel import Simulator
from repro.sim.timebase import SECONDS


class CollectingSink:
    def __init__(self):
        self.samples = []

    def handle_offset(self, sample: OffsetSample):
        self.samples.append(sample)


def vector(identity, priority1):
    return PriorityVector(
        priority1=priority1, clock_class=248, clock_accuracy=0x22,
        variance=100, priority2=128, gm_identity=identity, steps_removed=0,
    )


def build_pair(prio_a=100, prio_b=200, seed=71):
    """Two directly linked end stations, both running BMCA on domain 0."""
    sim = Simulator()
    model = NicModel(
        timestamp_jitter=0.0,
        oscillator=OscillatorModel(base_sigma_ppm=0.0, wander_step_ppm=0.0),
    )
    a = Nic(sim, "a", random.Random(seed), model)
    b = Nic(sim, "b", random.Random(seed + 1), model)
    Link(sim, a.port, b.port, LinkModel(base_delay=1000, jitter=0),
         random.Random(seed + 2))
    config = DomainConfig(number=0, gm_identity="<elected>")
    stacks, sinks, runners = {}, {}, {}
    for nic, prio in ((a, prio_a), (b, prio_b)):
        stack = GptpStack(sim, nic, random.Random(seed + 3))
        sink = CollectingSink()
        stack.add_instance(config, sink, is_gm=False)
        runner = BmcaRunner(sim, stack, domain=0,
                            own_vector=vector(nic.name, prio))
        stack.start()
        runner.start()
        stacks[nic.name] = stack
        sinks[nic.name] = sink
        runners[nic.name] = runner
    return sim, stacks, sinks, runners


class TestElection:
    def test_better_priority_wins(self):
        sim, stacks, sinks, runners = build_pair(prio_a=100, prio_b=200)
        sim.run_until(10 * SECONDS)
        assert runners["a"].is_grandmaster
        assert not runners["b"].is_grandmaster
        assert stacks["a"].instances[0].is_gm
        assert not stacks["b"].instances[0].is_gm

    def test_sync_flows_from_elected_gm(self):
        sim, stacks, sinks, runners = build_pair()
        sim.run_until(20 * SECONDS)
        # b (the loser) measures offsets against a's Syncs.
        offsets = [s for s in sinks["b"].samples if s.gm_identity == "a"]
        assert len(offsets) >= 50
        late = offsets[len(offsets) // 2:]
        assert max(abs(s.offset) for s in late) < 100

    def test_loser_does_not_transmit_sync(self):
        sim, stacks, sinks, runners = build_pair()
        sim.run_until(10 * SECONDS)
        assert stacks["b"].instances[0].sync_sent == 0

    def test_failover_when_gm_dies(self):
        sim, stacks, sinks, runners = build_pair()
        sim.run_until(10 * SECONDS)
        stacks["a"].stop()
        stacks["a"].nic.set_enabled(False)
        runners["a"].stop()
        # After announce_timeout intervals, b must promote itself.
        sim.run_until(20 * SECONDS)
        assert runners["b"].is_grandmaster
        assert stacks["b"].instances[0].is_gm
        assert stacks["b"].instances[0].sync_sent > 0
        assert runners["b"].role_changes >= 1

    def test_role_flap_count_stable_after_convergence(self):
        sim, stacks, sinks, runners = build_pair()
        sim.run_until(10 * SECONDS)
        changes = runners["a"].role_changes + runners["b"].role_changes
        sim.run_until(30 * SECONDS)
        assert runners["a"].role_changes + runners["b"].role_changes == changes


class TestSetMaster:
    def test_set_master_idempotent(self):
        sim, stacks, sinks, runners = build_pair()
        instance = stacks["a"].instances[0]
        sim.run_until(5 * SECONDS)
        was = instance.is_gm
        instance.set_master(was)  # no-op
        assert instance.is_gm == was

    def test_demotion_stops_sync_task(self):
        sim, stacks, sinks, runners = build_pair()
        sim.run_until(10 * SECONDS)
        # Detach the election entirely, otherwise incoming/periodic BMCA
        # events re-promote the instance.
        runners["a"].stop()
        stacks["a"].announce_handler = None
        instance = stacks["a"].instances[0]
        instance.set_master(False)
        sent = instance.sync_sent
        sim.run_until(15 * SECONDS)
        assert instance.sync_sent == sent

"""The closed-form bound predictor: shape, monotonicity, domination.

Three layers of evidence that :mod:`repro.analysis.bounds_theory` earns
its role as a grading threshold:

* the dataclass computes exactly the documented closed form (and its
  serialization round-trips, schema-versioned);
* the envelope is monotone in everything that should widen it — hop
  count, drift, fault hypothesis, delay-type adversarial budget — and
  indifferent to pure loss;
* on every clean registry scenario the prediction *dominates* the built
  system: predicted [d_min, d_max] brackets the surveyed latencies,
  the envelope exceeds the measured Π + γ, and the measured worst-case
  precision stays inside it, seed after seed.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bounds_theory import (
    BOUNDS_THEORY_SCHEMA_VERSION,
    TheoreticalBounds,
    attack_allowance,
    predict_bounds,
    predict_testbed_bounds,
)
from repro.core.convergence import drift_offset, precision_bound, u_factor
from repro.experiments.testbed import Testbed
from repro.scenarios import get_scenario
from repro.sim.timebase import MILLISECONDS, MINUTES, SECONDS


def _bounds(**overrides) -> TheoreticalBounds:
    base = dict(
        topology="mesh",
        n_devices=4,
        n_domains=4,
        f=1,
        min_hops=2,
        max_hops=3,
        d_min=3_300,
        d_max=8_400,
        drift_offset=drift_offset(5.0, 125 * MILLISECONDS),
        gamma=2_800.0,
        attack_allowance=0.0,
    )
    base.update(overrides)
    return TheoreticalBounds(**base)


# ----------------------------------------------------------------------
# Closed form and serialization
# ----------------------------------------------------------------------
class TestClosedForm:
    def test_matches_convergence_module(self):
        tb = _bounds()
        assert tb.reading_error == 8_400 - 3_300
        assert tb.u == u_factor(4, 1)
        assert tb.precision_bound == precision_bound(
            4, 1, tb.reading_error, tb.drift_offset
        )

    def test_envelope_is_widened_bound_plus_gamma(self):
        tb = _bounds(attack_allowance=1_000.0)
        expected = (
            u_factor(4, 1) * (tb.reading_error + 1_000.0 + tb.drift_offset)
            + tb.gamma
        )
        assert tb.envelope == pytest.approx(expected)

    def test_envelope_without_attack_exceeds_precision_bound_by_gamma(self):
        tb = _bounds()
        assert tb.envelope == pytest.approx(tb.precision_bound + tb.gamma)

    def test_round_trip(self):
        tb = _bounds(attack_allowance=500.0)
        again = TheoreticalBounds.from_dict(tb.to_dict())
        assert again == tb

    def test_from_dict_rejects_unknown_schema(self):
        doc = _bounds().to_dict()
        doc["schema_version"] = BOUNDS_THEORY_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            TheoreticalBounds.from_dict(doc)

    def test_describe_mentions_envelope(self):
        assert "envelope=" in _bounds().describe()


# ----------------------------------------------------------------------
# Monotonicity: everything that should widen the envelope does
# ----------------------------------------------------------------------
class TestMonotonicity:
    @given(extra=st.integers(1, 50_000))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_path_spread(self, extra):
        """More hop spread (larger d_max) → strictly larger envelope."""
        near = _bounds()
        far = dataclasses.replace(near, d_max=near.d_max + extra)
        assert far.envelope > near.envelope

    @given(
        ppm_lo=st.floats(0.1, 50.0),
        ppm_delta=st.floats(0.1, 50.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_drift(self, ppm_lo, ppm_delta):
        interval = 125 * MILLISECONDS
        slow = _bounds(
            drift_offset=drift_offset(ppm_lo, interval), max_drift_ppm=ppm_lo
        )
        fast = _bounds(
            drift_offset=drift_offset(ppm_lo + ppm_delta, interval),
            max_drift_ppm=ppm_lo + ppm_delta,
        )
        assert fast.envelope > slow.envelope

    @given(m=st.integers(7, 40), f=st.integers(0, 1))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_fault_hypothesis(self, m, f):
        """Budgeting for more Byzantine domains loosens the bound (u grows
        toward the M = 3f + 1 floor); both arms stay inside M >= 3f + 1."""
        assert m >= 3 * (f + 1) + 1
        lo = _bounds(n_domains=m, f=f)
        hi = _bounds(n_domains=m, f=f + 1)
        assert hi.envelope > lo.envelope

    @given(allowance=st.floats(1.0, 1e6))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_attack_allowance(self, allowance):
        clean = _bounds()
        attacked = dataclasses.replace(clean, attack_allowance=allowance)
        assert attacked.envelope > clean.envelope

    def test_hop_count_widens_predicted_envelope_on_daisy_chains(self):
        """Registry-independent: longer line topologies predict strictly
        wider envelopes (each device adds one trunk + one residence to the
        worst path)."""
        line = get_scenario("line")
        envelopes = []
        for n in (4, 5, 6, 7):
            spec = dataclasses.replace(
                line, name=f"line-{n}", n_devices=n, n_domains=None
            )
            envelopes.append(predict_bounds(spec).envelope)
        assert envelopes == sorted(envelopes)
        assert len(set(envelopes)) == len(envelopes)


# ----------------------------------------------------------------------
# Adversarial widening: delay moves the envelope, loss does not
# ----------------------------------------------------------------------
def _delay_attack_plan(extra_delay: int):
    """A one-stage delay attack on every link."""
    from repro.chaos.plan import ChaosPlan, ChaosStage

    return ChaosPlan(
        name="delay",
        stages=(
            ChaosStage(
                at=SECONDS,
                action="attack",
                attack="delay",
                links=("*",),
                extra_delay=extra_delay,
            ),
        ),
    )


class TestAttackAllowance:
    def test_no_plan_no_allowance(self):
        assert attack_allowance(None, 3) == 0.0

    def test_pure_loss_contributes_nothing(self):
        from repro.chaos.plan import single_loss_plan

        plan = single_loss_plan(0.3, start=10 * SECONDS)
        assert attack_allowance(plan, 5) == 0.0

    def test_delay_asymmetry_scales_with_path_length(self):
        from repro.chaos.plan import ChaosPlan, ChaosStage
        from repro.network.impairments import ImpairmentSpec

        plan = ChaosPlan(
            name="asym",
            stages=(
                ChaosStage(
                    at=SECONDS,
                    action="impair",
                    links=("*",),
                    impairment=ImpairmentSpec(delay_a_to_b=2_000),
                ),
            ),
        )
        assert attack_allowance(plan, 3) == 6_000.0
        assert attack_allowance(plan, 5) == 10_000.0

    def test_delay_attack_adds_extra_delay(self):
        assert attack_allowance(_delay_attack_plan(7_500), 3) == 7_500.0

    def test_loss_plus_delay_counts_only_the_delay(self):
        from repro.chaos.plan import merge_plans, single_loss_plan

        merged = merge_plans(
            single_loss_plan(0.2, start=SECONDS), _delay_attack_plan(4_000)
        )
        assert attack_allowance(merged, 4) == 4_000.0


# ----------------------------------------------------------------------
# Domination: prediction >= measurement on clean registry scenarios
# ----------------------------------------------------------------------
def _assert_prediction_dominates(scenario_name, seed, duration=2 * MINUTES,
                                 fidelity="full"):
    spec = get_scenario(scenario_name)
    tb = Testbed(spec.testbed_config(seed=seed), fidelity=fidelity)
    predicted_cold = predict_bounds(spec, seed=seed)
    tb.run_until(duration)
    bounds = tb.derive_bounds()
    predicted = bounds.predicted
    assert predicted is not None
    # Spec-level and testbed-level prediction agree: the closed form only
    # needs the scenario, not a built system.
    assert predicted_cold.to_dict() == predicted.to_dict()
    # The predicted latency window brackets the surveyed one ...
    assert predicted.d_min <= bounds.d_min
    assert predicted.d_max >= bounds.d_max
    assert predicted.gamma >= bounds.measurement_error
    # ... so the envelope dominates the measured threshold ...
    assert predicted.envelope >= bounds.bound_with_error
    # ... and the system actually performs inside it.
    records = tb.series.records[30:]
    assert records, "no steady-state records"
    assert max(r.precision for r in records) <= predicted.envelope


class TestPredictionDominatesMeasurement:
    @pytest.mark.parametrize("seed", [1, 21, 42])
    def test_paper_mesh4(self, seed):
        _assert_prediction_dominates("paper-mesh4", seed)

    @pytest.mark.parametrize("scenario", ["ring", "line", "star", "mesh8"])
    def test_small_registry_shapes(self, scenario):
        _assert_prediction_dominates(scenario, seed=1)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [21, 42])
    @pytest.mark.parametrize("scenario", ["ring", "line", "star", "mesh8"])
    def test_small_registry_shapes_more_seeds(self, scenario, seed):
        _assert_prediction_dominates(scenario, seed=seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [1, 21, 42])
    def test_torus_64(self, seed):
        _assert_prediction_dominates("torus-64", seed, fidelity="adaptive")


# ----------------------------------------------------------------------
# Acceptance: the envelope catches the PR-6 breaking-point adversary
# ----------------------------------------------------------------------
class TestEnvelopeCatchesCollusion:
    @pytest.mark.slow
    def test_k2_colluders_flagged_without_retuning(self):
        """k=2 > f=1 colluding GMs must cross the *predicted* envelope —
        the committed results/envelope_sweep.json acceptance arm, shrunk
        to a 5-minute window for the nightly tier."""
        from repro.experiments.sweeps import envelope_verdict, sweep_envelope
        from repro.monitoring.invariants import FAIL, PASS

        rows = sweep_envelope(
            scenarios=(),
            seed=9,
            attack_check=True,
            attack_colluders=2,
            attack_start=60 * SECONDS,
            attack_duration=5 * MINUTES,
        )
        (row,) = rows
        assert row.attack == "collude-k2"
        assert row.within is False
        assert row.verdict == FAIL
        assert row.max_precision_ns > row.envelope_ns
        assert envelope_verdict(rows) == PASS


# ----------------------------------------------------------------------
# Testbed plumbing
# ----------------------------------------------------------------------
class TestTestbedThreading:
    def test_derive_bounds_attaches_prediction(self):
        spec = get_scenario("paper-mesh4")
        tb = Testbed(spec.testbed_config(seed=1))
        tb.run_until(30 * SECONDS)
        bounds = tb.derive_bounds()
        assert bounds.predicted is not None
        assert bounds.predicted.to_dict() == predict_testbed_bounds(tb).to_dict()
        assert "envelope*" in bounds.describe()
        doc = bounds.to_dict()
        assert doc["predicted"]["envelope_ns"] == bounds.predicted.envelope

    def test_attack_plan_widens_testbed_prediction(self):
        spec = get_scenario("paper-mesh4")
        clean_cfg = spec.testbed_config(seed=1)
        attacked_cfg = dataclasses.replace(
            clean_cfg, chaos=_delay_attack_plan(12_000)
        )
        clean = predict_testbed_bounds(Testbed(clean_cfg))
        attacked = predict_testbed_bounds(Testbed(attacked_cfg))
        assert attacked.attack_allowance == 12_000.0
        assert attacked.envelope > clean.envelope

"""Chaos plans, orchestrator, and the chaos experiment."""

import dataclasses

import pytest

from repro.chaos import (
    ChaosOrchestrator,
    ChaosPlan,
    ChaosStage,
    dump_plan,
    load_plan,
    single_loss_plan,
)
from repro.experiments.chaos import ChaosExperimentConfig, run_chaos_experiment
from repro.experiments.testbed import Testbed, TestbedConfig
from repro.monitoring import DEGRADED, FAIL, PASS
from repro.network.impairments import ImpairmentSpec
from repro.scenarios import resolve_scenario
from repro.sim.timebase import MINUTES, SECONDS


LOSS = ImpairmentSpec(loss=0.5)


class TestPlanValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ChaosStage(at=0, action="explode", links=("*",))

    def test_link_action_needs_selectors(self):
        with pytest.raises(ValueError):
            ChaosStage(at=0, action="link_down")

    def test_impair_needs_spec(self):
        with pytest.raises(ValueError):
            ChaosStage(at=0, action="impair", links=("*",))

    def test_attack_needs_kind_and_victims(self):
        with pytest.raises(ValueError):
            ChaosStage(at=0, action="attack", attack="nonsense",
                       victims=("c1_1",))
        with pytest.raises(ValueError):
            ChaosStage(at=0, action="attack", attack="ramp")

    def test_plan_needs_name(self):
        with pytest.raises(ValueError):
            ChaosPlan(name="")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ChaosStage(at=-1, action="clear", links=("*",))


class TestPlanSerialization:
    def plan(self):
        return ChaosPlan(name="kitchen-sink", stages=(
            ChaosStage(at=10 * SECONDS, action="impair", links=("*",),
                       impairment=LOSS),
            ChaosStage(at=20 * SECONDS, action="link_down",
                       links=("sw1-sw3",)),
            ChaosStage(at=25 * SECONDS, action="link_up", links=("sw1-sw3",)),
            ChaosStage(at=30 * SECONDS, action="attack", attack="ramp",
                       victims=("c1_1",), step_per_update=-50),
            ChaosStage(at=40 * SECONDS, action="attack_stop"),
            ChaosStage(at=50 * SECONDS, action="clear", links=("*",)),
        ))

    def test_round_trip(self):
        plan = self.plan()
        assert ChaosPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        dump_plan(plan, path)
        assert load_plan(path) == plan

    def test_unsupported_schema_version_rejected(self):
        doc = self.plan().to_dict()
        doc["schema_version"] = 99
        with pytest.raises(ValueError):
            ChaosPlan.from_dict(doc)

    def test_unknown_stage_keys_rejected(self):
        with pytest.raises(ValueError):
            ChaosStage.from_dict({"at": 0, "action": "clear",
                                  "links": ["*"], "frobnicate": 1})

    def test_single_loss_plan_shape(self):
        plan = single_loss_plan(0.25, start=45 * SECONDS, end=90 * SECONDS)
        assert plan.name == "loss-0.25"
        assert [s.action for s in plan.stages] == ["impair", "clear"]
        assert plan.stages[0].impairment.loss == 0.25
        assert plan.stages[1].at == 90 * SECONDS

    def test_scenario_carries_plan_through_serialization(self):
        base = resolve_scenario("paper-mesh4")
        plan = single_loss_plan(0.1)
        spec = dataclasses.replace(base, chaos_plan=plan)
        doc = spec.to_dict()
        assert doc["chaos_plan"]["name"] == "loss-0.1"
        assert type(spec).from_dict(doc).chaos_plan == plan
        # A plan-free spec stays byte-compatible with pre-chaos specs.
        assert "chaos_plan" not in base.to_dict()

    def test_plan_changes_scenario_fingerprint(self):
        base = resolve_scenario("paper-mesh4")
        with_plan = dataclasses.replace(
            base, chaos_plan=single_loss_plan(0.1)
        )
        other_plan = dataclasses.replace(
            base, chaos_plan=single_loss_plan(0.2)
        )
        assert base.fingerprint() != with_plan.fingerprint()
        assert with_plan.fingerprint() != other_plan.fingerprint()


class TestOrchestrator:
    def orchestrator(self, plan=ChaosPlan(name="noop")):
        tb = Testbed(TestbedConfig(seed=5))
        orch = ChaosOrchestrator(
            tb.sim, tb.topology, plan, tb.rng, tb.vms, trace=tb.trace
        )
        return tb, orch

    def test_resolve_star_is_every_trunk(self):
        tb, orch = self.orchestrator()
        links = orch.resolve_links(("*",))
        assert len(links) == len(tb.topology.trunks) == 6

    def test_resolve_trunk_and_nic(self):
        tb, orch = self.orchestrator()
        (trunk,) = orch.resolve_links(("sw1-sw3",))
        assert trunk is tb.topology.trunk("sw1", "sw3")
        (access,) = orch.resolve_links(("nic:c2_1",))
        assert access is tb.topology.access_links["c2_1"]

    def test_resolve_device_takes_all_incident_links(self):
        tb, orch = self.orchestrator()
        links = orch.resolve_links(("device:1",))
        # 3 trunks of sw1 on the mesh, plus the access links of the NICs
        # homed on sw1.
        trunks = [l for l in links if l in tb.topology.trunks.values()]
        assert len(trunks) == 3
        assert len(links) > 3

    def test_resolve_dedups_overlapping_selectors(self):
        tb, orch = self.orchestrator()
        links = orch.resolve_links(("*", "sw1-sw2"))
        assert len(links) == 6

    def test_unknown_selectors_raise(self):
        tb, orch = self.orchestrator()
        with pytest.raises(KeyError):
            orch.resolve_links(("gibberish",))
        with pytest.raises(KeyError):
            orch.resolve_links(("device:9",))

    def test_stages_execute_and_restore(self):
        plan = ChaosPlan(name="cycle", stages=(
            ChaosStage(at=1 * SECONDS, action="impair", links=("sw1-sw2",),
                       impairment=LOSS),
            ChaosStage(at=2 * SECONDS, action="clear", links=("sw1-sw2",)),
            ChaosStage(at=3 * SECONDS, action="link_down", links=("sw3-sw4",)),
            ChaosStage(at=4 * SECONDS, action="link_up", links=("sw3-sw4",)),
        ))
        tb = Testbed(TestbedConfig(seed=5, chaos=plan))
        tb.run_until(int(1.5 * SECONDS))
        trunk = tb.topology.trunk("sw1", "sw2")
        assert trunk.impairment is not None
        tb.run_until(int(3.5 * SECONDS))
        assert trunk.impairment is None
        assert not tb.topology.trunk("sw3", "sw4").up
        tb.run_until(5 * SECONDS)
        assert tb.topology.trunk("sw3", "sw4").up
        assert tb.chaos.stages_executed == 4
        assert tb.chaos.summary()["plan"] == "cycle"
        assert tb.trace.count("chaos.stage") == 4

    def test_reimpair_same_spec_keeps_rng_stream(self):
        plan = ChaosPlan(name="flap-impair", stages=(
            ChaosStage(at=1 * SECONDS, action="impair", links=("sw1-sw2",),
                       impairment=LOSS),
            ChaosStage(at=2 * SECONDS, action="clear", links=("sw1-sw2",)),
            ChaosStage(at=3 * SECONDS, action="impair", links=("sw1-sw2",),
                       impairment=LOSS),
        ))
        tb = Testbed(TestbedConfig(seed=5, chaos=plan))
        tb.run_until(int(1.5 * SECONDS))
        first = tb.topology.trunk("sw1", "sw2").impairment
        tb.run_until(4 * SECONDS)
        assert tb.topology.trunk("sw1", "sw2").impairment is first

    def test_attack_stage_launches_and_stops(self):
        plan = ChaosPlan(name="attack", stages=(
            ChaosStage(at=1 * SECONDS, action="attack", attack="oscillate",
                       victims=("c1_1",), amplitude=5_000),
            ChaosStage(at=3 * SECONDS, action="attack_stop"),
        ))
        tb = Testbed(TestbedConfig(seed=5, chaos=plan))
        tb.run_until(2 * SECONDS)
        assert len(tb.chaos.attacks) == 1
        attack = tb.chaos.attacks[0]
        assert attack.ticks > 0
        assert tb.vms["c1_1"].compromised
        tb.run_until(4 * SECONDS)
        ticks_after_stop = attack.ticks
        tb.run_until(5 * SECONDS)
        assert attack.ticks == ticks_after_stop
        assert tb.chaos.summary()["attacks_launched"] == 1

    def test_double_start_rejected(self):
        tb, orch = self.orchestrator()
        orch.start()
        with pytest.raises(RuntimeError):
            orch.start()


@pytest.mark.slow
class TestChaosExperimentIntegration:
    def test_five_percent_loss_is_masked_with_zero_violations(self):
        # The architecture is designed for f=1 worth of bad time sources;
        # 5% uniform loss on every trunk must be absorbed with the online
        # monitor never firing and the precision bound holding throughout.
        plan = ChaosPlan(name="loss5", stages=(
            ChaosStage(at=30 * SECONDS, action="impair", links=("*",),
                       impairment=ImpairmentSpec(loss=0.05)),
        ))
        result = run_chaos_experiment(ChaosExperimentConfig(
            duration=4 * MINUTES, seed=3, plan=plan,
        ))
        assert result.verdict.status == PASS
        assert result.violations == []
        assert result.bounded
        cs = result.chaos_summary
        assert cs["dropped"] > 0
        assert cs["dropped"] / cs["seen"] == pytest.approx(0.05, abs=0.02)
        # Every impaired trunk saw real traffic and real loss.
        assert len(result.link_stats) == 6
        assert all(s["dropped"] > 0 for s in result.link_stats.values())

    def test_heavy_loss_on_one_device_degrades_but_does_not_fail(self):
        # 40% loss on every link incident to device 1 knocks that domain's
        # distribution out repeatedly: the monitor must flag consumed
        # resilience margin (DEGRADED) while the synctime bound still holds
        # (not FAIL) — the FTA masks what the network throws away.
        plan = ChaosPlan(name="dom1-heavy-loss", stages=(
            ChaosStage(at=40 * SECONDS, action="impair", links=("device:1",),
                       impairment=ImpairmentSpec(loss=0.4)),
        ))
        result = run_chaos_experiment(ChaosExperimentConfig(
            duration=3 * MINUTES, seed=7, plan=plan,
        ))
        assert result.verdict.status == DEGRADED
        assert result.verdict.status != FAIL
        assert result.bounded  # Π+γ held even while degraded
        first = result.verdict.first_violation
        assert first is not None
        assert first.invariant == "valid_floor"
        assert first.time >= 40 * SECONDS
        assert first.observed < first.bound
        # The violations came from the impaired device's own VMs.
        assert all(v.source.startswith(("c1_", "domain"))
                   for v in result.violations)

    def test_chaos_free_run_passes(self):
        result = run_chaos_experiment(ChaosExperimentConfig(
            duration=2 * MINUTES, seed=11,
        ))
        assert result.verdict.status == PASS
        assert result.chaos_summary == {}
        assert result.link_stats == {}
        assert result.bounded

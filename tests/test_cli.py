"""Tests for the repro-sim command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["survey"],
            ["cyber", "--policy", "diverse", "--scale", "0.1"],
            ["faults", "--hours", "0.2", "--compress"],
            ["baselines", "--minutes", "2"],
            ["vulnerabilities"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cyber", "--policy", "nope"])


class TestVulnerabilitiesCommand:
    def test_database_listing(self, capsys):
        assert main(["vulnerabilities"]) == 0
        out = capsys.readouterr().out
        assert "CVE-2018-18955" in out

    def test_kernel_query(self, capsys):
        assert main(["vulnerabilities", "--kernel", "linux-4.19.1"]) == 0
        assert "CVE-2018-18955" in capsys.readouterr().out

    def test_compare_json(self, capsys):
        code = main(
            ["vulnerabilities", "--compare", "linux-4.19.1", "linux-5.10.0",
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shared"] == []


class TestSurveyCommand:
    def test_survey_text(self, capsys):
        assert main(["survey", "--warmup", "5", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Π=" in out and "d_min=" in out

    def test_survey_json(self, capsys):
        assert main(["survey", "--warmup", "5", "--seed", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["precision_bound_ns"] > 0
        assert payload["d_max_ns"] > payload["d_min_ns"]


class TestExperimentCommands:
    def test_cyber_identical_exit_code_and_json(self, capsys):
        code = main(["cyber", "--policy", "identical", "--scale", "0.08",
                     "--seed", "3", "--json"])
        payload = json.loads(capsys.readouterr().out)
        # Exit 0 means the expected outcome (violation) occurred.
        assert code == 0
        assert payload["second_attack_violates"] is True
        assert payload["compromised"] == ["c4_1", "c1_1"]

    @pytest.mark.slow
    def test_faults_compressed_run(self, capsys):
        code = main(["faults", "--hours", "0.1", "--compress", "--seed", "4",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["bounded"] is True
        assert payload["violations"] == 0


class TestSweepCommand:
    def test_interval_sweep_text(self, capsys):
        assert main(["sweep", "interval", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out

    def test_aggregation_sweep_json(self, capsys):
        assert main(["sweep", "aggregation", "--duration", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["study"] == "aggregation"
        assert len(payload["rows"]) == 4

    def test_unknown_study_rejected(self):
        import pytest as _pytest
        with _pytest.raises(SystemExit):
            main(["sweep", "nonsense"])


class TestMonteCarloCommand:
    def test_small_study(self, capsys):
        code = main(["montecarlo", "--runs", "2", "--hours", "0.04", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["bounded_rate"] == 1.0
        assert len(payload["outcomes"]) == 2


class TestLinkFailCommand:
    @pytest.mark.slow
    def test_linkfail_json(self, capsys):
        code = main(["linkfail", "--seed", "12", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["recovered"] is True
        assert payload["violations"] == 0
        assert payload["silenced"]  # someone lost a domain during the outage

    def test_linkfail_measurement_trunk_rejected(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            main(["linkfail", "--trunk", "sw1", "sw2"])


class TestExportCommand:
    def test_export_bundle(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        code = main(["export", str(out), "--hours", "0.04", "--seed", "6",
                     "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["bounded"] is True
        assert (out / "series.csv").exists()
        assert (out / "summary.txt").exists()


class TestCampaignCommand:
    def test_parses(self):
        args = build_parser().parse_args(["campaign", "--colluders", "1"])
        assert callable(args.func)

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        assert main(["campaign"]) == 2
        assert main(["campaign", "--file", str(tmp_path / "c.json"),
                     "--colluders", "1"]) == 2
        capsys.readouterr()

    def test_zero_colluders_rejected(self, capsys):
        assert main(["campaign", "--colluders", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_single_colluder_is_masked(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(["campaign", "--colluders", "1", "--duration", "60",
                     "--start", "15", "--seed", "3",
                     "--metrics", str(metrics), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        info = payload["campaign"]
        assert info["campaign"] == "colluders-1"
        assert info["colluders"] == 1
        assert info["design_f"] == 1
        assert info["floor_m"] == 4
        manifest = json.loads(metrics.read_text())["manifest"]
        assert manifest["experiment"] == "campaign"
        assert manifest["extra"]["colluders"] == 1
        assert manifest["extra"]["floor_m"] == 4

    def test_campaign_file_round_trip(self, tmp_path, capsys):
        from repro.security.campaigns import (
            AttackCampaign,
            AttackStage,
            dump_campaign,
        )
        from repro.sim.timebase import SECONDS

        path = tmp_path / "campaign.json"
        dump_campaign(
            AttackCampaign(name="file-run", stages=(
                AttackStage(start=15 * SECONDS, kind="collude",
                            victims=("c4_1",)),
            )),
            path,
        )
        code = main(["campaign", "--file", str(path), "--duration", "60",
                     "--seed", "3", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["campaign"]["campaign"] == "file-run"
        assert payload["campaign"]["stages"] == 1


class TestEnvelopeSweepCommand:
    def test_single_scenario_smoke(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(["sweep", "envelope", "--scenario", "paper-mesh4",
                     "--sim-seconds", "60", "--no-cache",
                     "--metrics", str(metrics), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["study"] == "envelope"
        assert payload["verdict"] in ("PASS", "DEGRADED")
        (row,) = payload["rows"]
        assert row["scenario"] == "paper-mesh4"
        assert row["attack"] == ""
        assert row["within"] is True
        assert row["max_precision_ns"] <= row["envelope_ns"]
        manifest = json.loads(metrics.read_text())["manifest"]
        assert manifest["experiment"] == "sweep:envelope"
        assert manifest["extra"]["min_margin_ns"] == pytest.approx(
            row["margin_ns"]
        )

    def test_duration_flags_conflict(self, capsys):
        assert main(["sweep", "envelope", "--sim-seconds", "60",
                     "--duration", "60"]) == 2
        assert "--sim-seconds" in capsys.readouterr().err


class TestStudyCommand:
    def _spec(self, tmp_path, doc=None):
        spec = tmp_path / "study.json"
        spec.write_text(json.dumps(doc or {
            "kind": "montecarlo", "name": "cli-mc",
            "seeds": [1, 21], "hours": 0.02,
        }))
        return spec

    def test_run_interrupt_status_resume_cycle(self, tmp_path, capsys):
        spec = self._spec(tmp_path)
        cache_dir = str(tmp_path / "store")
        ledger = str(tmp_path / "study.ledger.json")

        # Interrupted run exits 3 and journals the kill point.
        code = main(["study", "run", str(spec), "--max-jobs", "1",
                     "--cache-dir", cache_dir, "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 3
        assert payload["interrupted"] is True
        assert payload["executed"] == 1
        assert "[1/2]" in captured.err          # streaming progress line
        assert payload["ledger"] == ledger

        # Status shows one done / one pending, exits nonzero (incomplete).
        assert main(["study", "status", ledger]) == 1
        out = capsys.readouterr().out
        assert "done=1" in out and "pending=1" in out

        # Resume finishes from the ledger: one cache hit, one fresh arm.
        code = main(["study", "resume", ledger,
                     "--cache-dir", cache_dir, "--json"])
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert code == 0
        assert payload["complete"] is True
        assert payload["cached"] == 1 and payload["executed"] == 1
        assert payload["result"]["bounded_rate"] == 1.0
        assert len(payload["result"]["outcomes"]) == 2
        assert main(["study", "status", ledger]) == 0
        capsys.readouterr()

    def test_run_sweep_spec(self, tmp_path, capsys):
        spec = self._spec(tmp_path, {
            "kind": "sweep", "study": "domains", "values": [4, 5],
            "duration_s": 30, "warmup_records": 5,
        })
        code = main(["study", "run", str(spec),
                     "--cache-dir", str(tmp_path / "store"), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        rows = payload["result"]["rows"]
        assert [r["value"] for r in rows] == [4, 5]
        assert all(r["parameter"] == "n_domains" for r in rows)

    def test_bad_spec_kind_rejected(self, tmp_path):
        spec = self._spec(tmp_path, {"kind": "nonsense"})
        with pytest.raises(ValueError, match="unknown study kind"):
            main(["study", "run", str(spec)])

    def test_resume_foreign_ledger_mismatch(self, tmp_path, capsys):
        from repro.studies import LedgerMismatchError

        spec = self._spec(tmp_path)
        cache_dir = str(tmp_path / "store")
        ledger = str(tmp_path / "study.ledger.json")
        main(["study", "run", str(spec), "--max-jobs", "0",
              "--cache-dir", cache_dir])
        capsys.readouterr()
        # Drifted spec (different seeds) against the same ledger file.
        spec.write_text(json.dumps({
            "kind": "montecarlo", "seeds": [7], "hours": 0.02,
        }))
        with pytest.raises(LedgerMismatchError):
            main(["study", "run", str(spec), "--ledger", ledger,
                  "--cache-dir", cache_dir])


class TestCacheCommand:
    def test_stats_and_prune_cycle(self, tmp_path, capsys):
        from repro.parallel import ResultsCache, config_fingerprint

        root = str(tmp_path / "store")
        cache = ResultsCache(root)
        for i in range(3):
            cache.put(config_fingerprint("cli", i), {"i": i})
        cache.get(config_fingerprint("cli", 0))
        cache.write_stats()

        assert main(["cache", "stats", "--cache-dir", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 3
        assert payload["last_run"]["hits"] == 1

        assert main(["cache", "prune", "--cache-dir", root,
                     "--max-bytes", "0", "--dry-run", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == 3 and payload["dry_run"] is True

        assert main(["cache", "prune", "--cache-dir", root,
                     "--older-than", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == 3
        assert main(["cache", "stats", "--cache-dir", root, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_prune_requires_criterion(self, capsys):
        assert main(["cache", "prune"]) == 2
        assert "--older-than" in capsys.readouterr().err


class TestAttackBudgetSweepCommand:
    def test_smoke_reports_breaking_point(self, capsys):
        # Attack start (60 s) is past this smoke duration, so every arm is
        # an unattacked baseline: the plumbing — rows, breaking point,
        # design floor — is what is under test here.
        code = main(["sweep", "attackbudget", "--duration", "20",
                     "--no-cache", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["study"] == "attackbudget"
        assert payload["rows"][0]["parameter"] == "colluders"
        assert [r["value"] for r in payload["rows"]] == [0, 1, 2, 3]
        bp = payload["breaking_point"]
        assert bp["design_f"] == 1
        assert bp["floor_m"] == 4

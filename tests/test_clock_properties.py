"""Property-based tests on the clock substrate invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.clocks.hardware_clock import HardwareClock
from repro.clocks.oscillator import Oscillator, OscillatorModel
from repro.sim.kernel import Simulator
from repro.sim.timebase import MILLISECONDS, SECONDS, from_ppm


@st.composite
def advance_plan(draw):
    """A list of time advances (ns) and optional adjustments."""
    steps = draw(st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=2 * SECONDS),      # dt
            st.integers(min_value=-50_000, max_value=50_000),     # step ns
            st.floats(min_value=-5e4, max_value=5e4),             # trim ppb
        ),
        min_size=1, max_size=20,
    ))
    return steps


class TestOscillatorProperties:
    @given(seed=st.integers(0, 10_000),
           dts=st.lists(st.integers(1, SECONDS), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_elapsed_time_monotone_and_rate_bounded(self, seed, dts):
        sim = Simulator()
        osc = Oscillator(sim, random.Random(seed), OscillatorModel())
        last = osc.read()
        total = 0
        for dt in dts:
            sim.schedule(dt, lambda: None)
            sim.run()
            total += dt
            cur = osc.read()
            assert cur >= last
            last = cur
        bound = total * from_ppm(5.0) + 1
        assert abs(last - total) <= bound

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_rate_error_never_exceeds_max(self, seed):
        sim = Simulator()
        osc = Oscillator(
            sim, random.Random(seed),
            OscillatorModel(base_sigma_ppm=50.0, wander_step_ppm=2.0,
                            wander_interval=10 * MILLISECONDS),
        )
        for _ in range(50):
            sim.schedule(37 * MILLISECONDS, lambda: None)
            sim.run()
            assert abs(osc.rate_error()) <= from_ppm(5.0) + 1e-12


class TestHardwareClockProperties:
    @given(seed=st.integers(0, 10_000), plan=advance_plan())
    @settings(max_examples=30, deadline=None)
    def test_steps_and_trims_never_break_monotonicity_between_adjustments(
        self, seed, plan
    ):
        """Between explicit steps, the clock must be nondecreasing."""
        sim = Simulator()
        osc = Oscillator(sim, random.Random(seed), OscillatorModel())
        clk = HardwareClock(osc)
        for dt, step, trim in plan:
            before = clk.time()
            sim.schedule(dt, lambda: None)
            sim.run()
            after_advance = clk.time()
            assert after_advance >= before  # time only moves forward
            clk.adjust_frequency(trim)      # trim alone must not jump value
            assert abs(clk.time() - after_advance) <= 2
            clk.step(step)                  # explicit step jumps by `step`
            assert abs(clk.time() - (after_advance + step)) <= 3

    @given(seed=st.integers(0, 1_000),
           trims=st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_trim_always_reports_last_applied(self, seed, trims):
        sim = Simulator()
        osc = Oscillator(sim, random.Random(seed), OscillatorModel())
        clk = HardwareClock(osc)
        for trim in trims:
            clk.adjust_frequency(trim)
        expected = max(-clk.MAX_TRIM_PPB, min(clk.MAX_TRIM_PPB, trims[-1]))
        assert abs(clk.frequency_ppb - expected) < 1e-6

"""Unit tests for oscillator, hardware clock and CLOCK_SYNCTIME models."""

import pytest

from repro.clocks.hardware_clock import HardwareClock
from repro.clocks.oscillator import Oscillator, OscillatorModel
from repro.clocks.synctime import SyncTimeClock, SyncTimeParams
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.timebase import SECONDS, from_ppm


def make_osc(seed=1, sim=None, **model_kwargs):
    sim = sim or Simulator()
    rng = RngRegistry(seed).stream("osc")
    return sim, Oscillator(sim, rng, OscillatorModel(**model_kwargs))


class TestOscillator:
    def test_elapsed_time_tracks_true_time_within_max_rate(self):
        sim, osc = make_osc()
        sim.schedule(10 * SECONDS, lambda: None)
        sim.run()
        elapsed = osc.read()
        true = 10 * SECONDS
        bound = true * from_ppm(5.0)
        assert abs(elapsed - true) <= bound + 1

    def test_rate_error_always_clamped(self):
        sim, osc = make_osc(base_sigma_ppm=50.0, wander_step_ppm=1.0)
        for i in range(1, 200):
            sim.schedule_at(i * 50_000_000, lambda: None)
        while sim.step():
            assert abs(osc.rate_error()) <= from_ppm(5.0) + 1e-12

    def test_monotonically_nondecreasing(self):
        sim, osc = make_osc()
        last = osc.read()
        for i in range(1, 100):
            sim.schedule_at(i * 1_000_000, lambda: None)
        while sim.step():
            cur = osc.read()
            assert cur >= last
            last = cur

    def test_two_oscillators_drift_apart(self):
        sim = Simulator()
        reg = RngRegistry(3)
        a = Oscillator(sim, reg.stream("a"), OscillatorModel())
        b = Oscillator(sim, reg.stream("b"), OscillatorModel())
        sim.schedule(100 * SECONDS, lambda: None)
        sim.run()
        # Distinct base offsets: readings must differ measurably (>=1ns).
        assert abs(a.read() - b.read()) > 1.0

    def test_read_without_time_advance_is_stable(self):
        sim, osc = make_osc()
        assert osc.read() == osc.read()


class TestHardwareClock:
    def test_tracks_oscillator_without_adjustment(self):
        sim, osc = make_osc(base_sigma_ppm=0.0, wander_step_ppm=0.0)
        clk = HardwareClock(osc, initial=1000)
        sim.schedule(SECONDS, lambda: None)
        sim.run()
        assert clk.time() == pytest.approx(1000 + SECONDS, abs=2)

    def test_step_jumps_value(self):
        sim, osc = make_osc()
        clk = HardwareClock(osc)
        clk.step(5_000)
        assert clk.time() == pytest.approx(5_000, abs=1)
        clk.step(-2_000)
        assert clk.time() == pytest.approx(3_000, abs=1)
        assert clk.steps == 2

    def test_frequency_trim_changes_rate(self):
        sim, osc = make_osc(base_sigma_ppm=0.0, wander_step_ppm=0.0)
        clk = HardwareClock(osc)
        clk.adjust_frequency(1000.0)  # +1 ppm
        sim.schedule(SECONDS, lambda: None)
        sim.run()
        # One second at +1ppm gains ~1000 ns.
        assert clk.time() == pytest.approx(SECONDS + 1000, abs=5)

    def test_trim_replaces_not_accumulates(self):
        sim, osc = make_osc(base_sigma_ppm=0.0, wander_step_ppm=0.0)
        clk = HardwareClock(osc)
        clk.adjust_frequency(500.0)
        clk.adjust_frequency(500.0)
        assert clk.frequency_ppb == pytest.approx(500.0)

    def test_trim_is_capped(self):
        sim, osc = make_osc()
        clk = HardwareClock(osc)
        clk.adjust_frequency(1e12)
        assert clk.frequency_ppb == HardwareClock.MAX_TRIM_PPB

    def test_rebase_preserves_continuity_across_adjustment(self):
        sim, osc = make_osc(base_sigma_ppm=0.0, wander_step_ppm=0.0)
        clk = HardwareClock(osc)
        sim.schedule(SECONDS, lambda: clk.adjust_frequency(2000.0))
        sim.schedule(SECONDS, lambda: None)
        sim.run()
        before = clk.time()
        # Adjusting frequency must not step the value.
        assert before == pytest.approx(SECONDS, abs=5)


class TestSyncTime:
    def test_read_before_publish_raises(self):
        sim, osc = make_osc()
        clock = SyncTimeClock(osc)
        with pytest.raises(RuntimeError):
            clock.now()

    def test_conversion_identity(self):
        sim, osc = make_osc(base_sigma_ppm=0.0, wander_step_ppm=0.0)
        clock = SyncTimeClock(osc)
        raw = clock.raw()
        clock.publish(SyncTimeParams(base=raw, offset=10_000.0, ratio=1.0, generation=1))
        assert clock.now() == pytest.approx(10_000.0, abs=1)

    def test_ratio_scales_elapsed_raw_time(self):
        sim, osc = make_osc(base_sigma_ppm=0.0, wander_step_ppm=0.0)
        clock = SyncTimeClock(osc)
        clock.publish(SyncTimeParams(base=clock.raw(), offset=0.0, ratio=2.0, generation=1))
        sim.schedule(SECONDS, lambda: None)
        sim.run()
        assert clock.now() == pytest.approx(2 * SECONDS, rel=1e-6)

    def test_republish_switches_parameters(self):
        sim, osc = make_osc()
        clock = SyncTimeClock(osc)
        clock.publish(SyncTimeParams(base=0.0, offset=0.0, ratio=1.0, generation=1))
        clock.publish(SyncTimeParams(base=0.0, offset=999.0, ratio=1.0, generation=2))
        assert clock.params.generation == 2
        assert clock.now() == pytest.approx(999.0 + clock.raw(), abs=1)
